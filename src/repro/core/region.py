"""The spatial-region protocol shared by the query paths.

Kept in a leaf module (no intra-``core`` imports) so both the
pointer-based traversal (:mod:`repro.core.lookup`) and the flattened
kernel (:mod:`repro.core.flat`) can depend on it without cycles.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.geometry import GeoPoint, Rect


@runtime_checkable
class Region(Protocol):
    """The spatial-region protocol: satisfied by both :class:`Rect` and
    :class:`~repro.geometry.Polygon`."""

    def intersects_rect(self, rect: Rect) -> bool: ...

    def contains_rect(self, rect: Rect) -> bool: ...

    def contains_point(self, p: GeoPoint) -> bool: ...


def region_bbox(region: Region) -> Rect:
    """Bounding box of a region (identity for rectangles)."""
    if isinstance(region, Rect):
        return region
    bbox = getattr(region, "bounding_box", None)
    if bbox is None:
        raise TypeError(f"region {region!r} exposes no bounding box")
    return bbox


def region_overlap_fraction(bbox: Rect, region: Region) -> float:
    """``Overlap(BB(i), A)`` — exact for rectangular regions; polygonal
    regions are approximated by their bounding box, which only skews
    sample-share weights (never correctness of membership tests)."""
    return bbox.overlap_fraction(region_bbox(region))
