"""Instrumentation.

The paper's evaluation is driven by internal statistics (Figure 3's
node-traversal counts, Figure 4's probe counts and processing latency).
Every query records a :class:`QueryStats`; the tree also accumulates a
:class:`TreeStats` total.  Processing latency is *derived* from the work
counters through :class:`ProcessingCostModel` so that runs are
deterministic and the latency axes of Figures 4 and 5 can be reproduced
without depending on host speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class QueryStats:
    """Work performed by a single query."""

    nodes_traversed: int = 0
    cached_nodes_accessed: int = 0
    slots_combined: int = 0
    readings_scanned: int = 0
    sensors_probed: int = 0
    probe_successes: int = 0
    probe_batches: int = 0
    maintenance_ops: int = 0
    collection_latency_seconds: float = 0.0
    # Flattened-kernel instrumentation.  These meter the spatial plan
    # cache and the vectorized classification, and deliberately do not
    # feed the cost model: the kernel changes *how fast* traversal runs,
    # never *what work* the query logically performs, so the modeled
    # latency counters above stay comparable across kernel on/off runs.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    nodes_pruned_vectorized: int = 0
    # Batch-executor instrumentation (same contract as the kernel
    # counters above: purely observational, never fed to the cost model).
    # ``probes_coalesced`` counts probe requests this query did not have
    # to issue because a peer in the same batch already contacted the
    # sensor; ``batch_shared_nodes`` counts node classifications this
    # query inherited from a batch peer's spatial plan.
    probes_coalesced: int = 0
    batch_shared_nodes: int = 0
    # Transport-dispatcher instrumentation (observational, like the two
    # groups above — the dispatcher changes how probes are *delivered*,
    # not the logical work a query performs).  ``probes_retried`` counts
    # extra wire contacts within this query's logical probes,
    # ``probes_timed_out`` the attempts abandoned at the collector
    # timeout, ``probes_deduped`` requests served from the in-flight /
    # recently-probed table without network traffic, and
    # ``probes_cooldown_skipped`` requests dropped because the sensor was
    # in failure cooldown.
    probes_retried: int = 0
    probes_timed_out: int = 0
    probes_deduped: int = 0
    probes_cooldown_skipped: int = 0
    # Sampling-guarantee instrumentation (observational).  The sampler
    # used to bury achieved-vs-requested inside its terminal records;
    # the federation's cross-shard REDISTRIBUTE needs both surfaced:
    # ``sample_target`` is the target size handed to layered sampling
    # (0 for exact lookups) and ``pool_exhausted_terminals`` counts
    # terminals whose in-region sensor pool could not cover the rounded
    # probe request — the *genuine* shortfall signal of Algorithm 2, as
    # opposed to rounding noise.
    sample_target: float = 0.0
    pool_exhausted_terminals: int = 0
    # Storage-engine instrumentation (observational, like the kernel /
    # batch / transport groups above): disk I/O the durable portal
    # performed while serving this query — pages read/written through
    # the pager and WAL records appended / group-commit fsyncs issued by
    # the slot-cache journaling.  All zero on an in-memory portal.
    page_reads: int = 0
    page_writes: int = 0
    wal_appends: int = 0
    wal_fsyncs: int = 0
    # Geoblock-planner instrumentation (observational, never fed to the
    # cost model — the grid changes *where* an answer is assembled from,
    # while the modeled work of assembling it stays in the counters
    # above).  ``polygon_cells_interior`` / ``polygon_cells_boundary``
    # count the rasterized cells a polygon query split into (interior
    # cells are grid/slot-cache candidates, boundary cells delegate to
    # clipped COLR sub-queries); ``window_cells_reused`` counts cells a
    # sliding analytic window carried over from its previous step
    # instead of recomputing.
    polygon_cells_interior: int = 0
    polygon_cells_boundary: int = 0
    window_cells_reused: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another stats record into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class TreeStats:
    """Cumulative work across a tree's lifetime, plus per-query history."""

    totals: QueryStats = field(default_factory=QueryStats)
    queries: int = 0

    def record(self, query_stats: QueryStats) -> None:
        self.totals.merge(query_stats)
        self.queries += 1

    def reset(self) -> None:
        self.totals = QueryStats()
        self.queries = 0


@dataclass(frozen=True, slots=True)
class ProcessingCostModel:
    """Converts work counters into a deterministic processing latency.

    The constants approximate the relative costs the paper's SQL Server
    implementation exhibits: node traversal is a join step, combining a
    cached slot is cheap, scanning a raw reading is cheaper still, and
    cache maintenance (trigger work) costs about as much as a traversal
    step.  Absolute values are calibrated so a typical cached COLR-Tree
    query lands in the tens of milliseconds, matching Figure 4iv's
    ≈40 ms observation.
    """

    per_node_traversal: float = 200e-6
    per_slot_combined: float = 20e-6
    per_reading_scanned: float = 4e-6
    per_maintenance_op: float = 40e-6
    per_probe_dispatch: float = 30e-6

    def processing_seconds(self, stats: QueryStats) -> float:
        """Simulated server-side processing latency of one query."""
        return (
            stats.nodes_traversed * self.per_node_traversal
            + stats.slots_combined * self.per_slot_combined
            + stats.readings_scanned * self.per_reading_scanned
            + stats.maintenance_ops * self.per_maintenance_op
            + stats.sensors_probed * self.per_probe_dispatch
        )

    def end_to_end_seconds(self, stats: QueryStats) -> float:
        """Processing latency plus the simulated collection latency."""
        return self.processing_seconds(stats) + stats.collection_latency_seconds
