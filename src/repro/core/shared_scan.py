"""Shared-traversal primitives for the batch query executor.

A portal tick carries many concurrent viewport queries against the same
tree (Section II's workload).  Executing them one by one repeats two
kinds of work that are identical across queries:

* the **spatial classification** — queries over the same viewport (the
  common case: many users watching the same hotspot) classify the same
  nodes against the same region; and
* the **sensor probes** — overlapping viewports request the same live
  sensors, and a sensor's reading at one instant is the same no matter
  which query asked for it.

This module provides the per-tree batch primitives the executor
(:mod:`repro.portal.batch`) composes:

:func:`shared_range_scan`
    runs every exact scan of a batch over one tree, resolving each
    region's spatial plan at most once *per batch* (even when the plan
    cache is disabled or the region is unhashable for the global cache)
    and metering reuse in ``QueryStats.batch_shared_nodes``.

:func:`coalesce_probes`
    merges the per-query probe lists into one deduplicated union in
    first-request order, assigning each sensor an *owner* — the first
    query that asked — so probe work and cache-maintenance ops are
    attributed exactly once.

The first scan of each distinct region goes through
``tree.spatial_plan`` unchanged (same plan-cache hits/misses, same
counters), which keeps a singleton batch bit-identical to the
sequential path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.lookup import QueryAnswer, Region, scan_with_plan
from repro.core.plancache import region_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tree import COLRTree

__all__ = ["ScanRequest", "coalesce_probes", "shared_range_scan"]


@dataclass(frozen=True, slots=True)
class ScanRequest:
    """One exact scan of a batch: a region plus its freshness bound.

    (``now`` is shared by the whole batch — a tick reads the clock
    once — so it is a :func:`shared_range_scan` argument, not a field.)
    """

    region: Region
    max_staleness: float


def shared_range_scan(
    tree: "COLRTree",
    requests: Sequence[ScanRequest],
    now: float,
) -> list[tuple[QueryAnswer, list[int]]]:
    """Run every request's traversal over one tree, sharing spatial
    plans within the batch.

    Returns one ``(answer, to_probe)`` pair per request, in request
    order — exactly what :func:`repro.core.lookup.range_scan` returns
    for each, except that a repeated region classifies nodes only once:
    later requests inherit the first request's plan and record
    ``batch_shared_nodes`` (the classifications they skipped) instead
    of a plan-cache hit.  First use of each region goes through
    ``tree.spatial_plan`` unchanged, so a batch of distinct regions is
    indistinguishable from sequential scans.
    """
    kernel = tree.kernel
    batch_plans: dict[object, object] = {}
    out: list[tuple[QueryAnswer, list[int]]] = []
    for request in requests:
        answer = QueryAnswer()
        plan = None
        key = None
        if kernel is not None:
            fingerprint = region_fingerprint(request.region)
            if fingerprint is not None:
                key = fingerprint
                plan = batch_plans.get(key)
        if plan is not None:
            # Inherited classification: meter what was skipped.  The
            # global plan cache is deliberately not consulted (nor
            # credited) — this hit exists only within the batch.
            answer.stats.batch_shared_nodes += kernel.n_nodes
            answer.stats.nodes_pruned_vectorized += plan.n_disjoint
        else:
            plan = tree.spatial_plan(request.region, None, answer.stats)
            if key is not None and plan is not None:
                batch_plans[key] = plan
        out.append(
            scan_with_plan(
                tree, request.region, now, request.max_staleness, plan, answer
            )
        )
    return out


def coalesce_probes(
    probe_lists: Sequence[Sequence[int]],
) -> tuple[list[int], dict[int, int]]:
    """Merge per-query probe lists into one deduplicated union.

    Returns ``(union, owner)``: ``union`` preserves first-request order
    (so a singleton batch probes in exactly the sequential order, and
    the network RNG draws line up), and ``owner[sensor_id]`` is the
    index of the first request that asked for the sensor.  The owner is
    charged the probe (``sensors_probed``/``probe_successes``) and the
    resulting cache maintenance; every later requester records the
    saved request as ``probes_coalesced`` and still receives the
    reading.
    """
    union: list[int] = []
    owner: dict[int, int] = {}
    for index, ids in enumerate(probe_lists):
        for sensor_id in ids:
            if sensor_id not in owner:
                owner[sensor_id] = index
                union.append(sensor_id)
    return union, owner
