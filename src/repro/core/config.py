"""Configuration of a COLR-Tree instance.

One dataclass holds every tunable so experiments can sweep parameters
(slot size for Figure 2, cache limit and sample size for Figures 5/6)
and so the evaluation's baseline configurations — plain R-tree
(``caching_enabled=False, sampling_enabled=False``) and hierarchical
cache (``sampling_enabled=False``) — are just configs of the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class COLRTreeConfig:
    """All tunables of a COLR-Tree.

    Levels are counted from the root: the root is level 0 (footnote 3 of
    the paper) and levels grow downward.

    Parameters
    ----------
    fanout:
        Target number of children per internal node (the ``k`` of the
        k-means clustering used during bulk build).
    leaf_capacity:
        Maximum sensors per leaf node.
    max_expiry_seconds:
        ``t_max`` — the maximum expiry duration any sensor publishes.
        The slot window must cover it.
    slot_seconds:
        ``Δ`` — the slot size.  ``m = ceil(t_max / Δ)`` slots are kept.
        Section IV-C's model picks the workload-optimal value.
    terminal_level:
        ``T`` — descent along a path terminates (and aggregates /
        samples are produced) only below this level; it corresponds to
        the map zoom level.
    oversample_level:
        ``O`` — the level at which the ``1/a`` availability scale-up is
        applied to still-descending paths.  Must be >= ``terminal_level``
        so the scale-up happens exactly once per root-to-probe path.
    caching_enabled:
        When false, slot caches are neither consulted nor populated
        (plain R-tree behaviour).
    aggregate_caching_enabled:
        Ablation switch: when false, only leaves cache (raw readings);
        internal nodes keep no aggregates.  Isolates the benefit of the
        slot-cache *tree* over plain reading caching.
    sampling_enabled:
        When false, range lookups probe every relevant sensor instead of
        running layered sampling.
    cache_capacity:
        Maximum number of raw readings cached across all leaves, or
        ``None`` for unlimited.  Figure 5 sweeps this as a fraction of
        the sensor population.
    default_sample_size:
        ``R`` used when a query does not carry a ``SAMPLESIZE`` clause.
    oversampling_enabled / redistribution_enabled:
        Ablation switches for the two robustness mechanisms of
        Algorithm 1 (on by default; Section V).
    reversible_aggregates:
        The paper's flagged future-work extension (Section VII-D):
        when a terminal's cached aggregate holds far more sensors than
        the sampling target, decompose it into the descendants' cached
        components and consume only enough of them to approach the
        target, reducing the cache-induced spatial bias (probe
        discretization error).  Off by default to match the paper's
        evaluated system.
    flat_kernel_enabled:
        When true (the default) the tree freezes its hierarchy into the
        flattened struct-of-arrays kernel (:mod:`repro.core.flat`) after
        bulk load and both query paths consume vectorized node
        classification instead of per-node geometry predicates.  The
        answers are bit-identical either way; the knob exists for
        differential testing and benchmarking against the legacy
        recursive traversal.
    plan_cache_enabled:
        When true (and the kernel is enabled) classification results are
        memoized in an LRU spatial plan cache
        (:mod:`repro.core.plancache`) keyed by region fingerprint and
        terminal level.  Safe because the spatial structure is immutable
        after bulk load; only temporal/slot-cache state stays per-query.
    plan_cache_size:
        Maximum number of cached spatial plans (LRU evicted).
    classify_tile_nodes:
        When set, the kernel's vectorized node classification runs tile
        by tile over chunks of this many nodes instead of one
        whole-array pass, keeping the working set CPU-cache-resident on
        large fleets.  Labels are bit-identical either way.  ``None``
        (the default) keeps the monolithic pass;
        :func:`repro.core.flat.auto_tile_nodes` derives an L2-sized
        value from ``/sys`` cache info.
    availability_refresh_seconds:
        How often per-node mean availability estimates are recomputed
        from the historical model.
    seed:
        Seed for the index's own RNG (random sensor selection and
        randomized rounding of fractional targets).
    """

    fanout: int = 8
    leaf_capacity: int = 32
    max_expiry_seconds: float = 600.0
    slot_seconds: float = 120.0
    terminal_level: int = 2
    oversample_level: int = 4
    caching_enabled: bool = True
    aggregate_caching_enabled: bool = True
    sampling_enabled: bool = True
    cache_capacity: int | None = None
    default_sample_size: int = 30
    oversampling_enabled: bool = True
    redistribution_enabled: bool = True
    reversible_aggregates: bool = False
    flat_kernel_enabled: bool = True
    plan_cache_enabled: bool = True
    plan_cache_size: int = 256
    classify_tile_nodes: int | None = None
    availability_refresh_seconds: float = 600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fanout < 2:
            raise ValueError("fanout must be at least 2")
        if self.leaf_capacity < 1:
            raise ValueError("leaf_capacity must be at least 1")
        if self.max_expiry_seconds <= 0:
            raise ValueError("max_expiry_seconds must be positive")
        if not 0 < self.slot_seconds <= self.max_expiry_seconds:
            raise ValueError("slot_seconds must be in (0, max_expiry_seconds]")
        if self.terminal_level < 0:
            raise ValueError("terminal_level must be non-negative")
        if self.oversample_level < self.terminal_level:
            raise ValueError(
                "oversample_level must be at or below terminal_level "
                "(>= terminal_level numerically) so each path is scaled once"
            )
        if self.cache_capacity is not None and self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative or None")
        if self.default_sample_size < 0:
            raise ValueError("default_sample_size must be non-negative")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be at least 1")
        if self.classify_tile_nodes is not None and self.classify_tile_nodes < 1:
            raise ValueError("classify_tile_nodes must be positive or None")

    @property
    def n_slots(self) -> int:
        """``m = ceil(t_max / Δ)`` — slots needed to cover every expiry."""
        full = int(self.max_expiry_seconds // self.slot_seconds)
        return full if full * self.slot_seconds >= self.max_expiry_seconds else full + 1

    # ------------------------------------------------------------------
    # Derived baseline configurations (Section VII's comparison systems)
    # ------------------------------------------------------------------
    def as_plain_rtree(self) -> "COLRTreeConfig":
        """The evaluation's "regular R-Tree": no caching, no sampling."""
        return replace(self, caching_enabled=False, sampling_enabled=False)

    def as_hierarchical_cache(self) -> "COLRTreeConfig":
        """The evaluation's "hierarchical cache": slot caches plus a
        standard R-tree range query (no sampling)."""
        return replace(self, caching_enabled=True, sampling_enabled=False)

    def with_slot_seconds(self, slot_seconds: float) -> "COLRTreeConfig":
        """A copy with a different slot size (Figure 2 sweeps)."""
        return replace(self, slot_seconds=slot_seconds)

    def with_cache_capacity(self, cache_capacity: int | None) -> "COLRTreeConfig":
        """A copy with a different cache limit (Figure 5/6 sweeps)."""
        return replace(self, cache_capacity=cache_capacity)
