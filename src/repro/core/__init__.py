"""The COLR-Tree itself: the paper's primary contribution.

The package splits the index into small, separately testable pieces:

``COLRTreeConfig``
    Every tunable of the index (fanout, slot size, threshold levels,
    cache limit, toggles for caching / sampling used by the baselines).
``AggregateSketch``
    The per-slot partial aggregate: count / sum / min / max maintained
    together, with decrement support where the aggregate allows it
    (Section IV-B's insert-vs-update discussion).
``SlotCache``
    The sliding, globally aligned slot cache (Section IV-A).
``COLRNode`` / ``build_colr_tree``
    The k-means-clustered hierarchy (Section III-C).
``COLRTree``
    The facade: bulk build, reading insertion with bottom-up aggregate
    propagation, cache-aware range lookup, and layered sampling.
``layered_sample``
    Algorithm 1 + Algorithm 2 (Section V).
``optimal_slot_size``
    The Section IV-C utility/cost model.
``FlatKernel`` / ``SpatialPlanCache``
    The flattened struct-of-arrays traversal kernel and the LRU plan
    cache memoizing per-region classification results.
"""

from repro.core.config import COLRTreeConfig
from repro.core.aggregates import AggregateSketch
from repro.core.slots import SlotCache, slot_of
from repro.core.node import COLRNode
from repro.core.build import build_colr_tree, kmeans_cluster
from repro.core.tree import COLRTree
from repro.core.explain import PlanTerminal, QueryPlan, explain_query
from repro.core.flat import CONTAINED, DISJOINT, PARTIAL, FlatKernel
from repro.core.lookup import QueryAnswer, TerminalRecord
from repro.core.plancache import SpatialPlan, SpatialPlanCache, region_fingerprint
from repro.core.sampling import layered_sample
from repro.core.slot_sizing import SlotSizeModel, optimal_slot_size
from repro.core.stats import QueryStats, TreeStats

__all__ = [
    "COLRTreeConfig",
    "AggregateSketch",
    "SlotCache",
    "slot_of",
    "COLRNode",
    "build_colr_tree",
    "kmeans_cluster",
    "COLRTree",
    "FlatKernel",
    "CONTAINED",
    "DISJOINT",
    "PARTIAL",
    "SpatialPlan",
    "SpatialPlanCache",
    "region_fingerprint",
    "PlanTerminal",
    "QueryAnswer",
    "QueryPlan",
    "TerminalRecord",
    "explain_query",
    "layered_sample",
    "SlotSizeModel",
    "optimal_slot_size",
    "QueryStats",
    "TreeStats",
]
