"""EXPLAIN for COLR-Tree queries: the plan, without the probes.

``explain_query`` walks the index read-only and reports what executing
the query *would* do: which access path runs, how much of the answer
the current cache state covers, the expected number of sensor probes,
and the per-terminal target allocation.  Expectations are computed
deterministically (no randomized rounding, no network), so EXPLAIN is
side-effect-free and repeatable — the operational tool a portal
operator uses to understand a slow or probe-heavy query before running
it.

When the tree carries a flattened kernel, EXPLAIN reads the same
memoized spatial plan (node classification, overlap fractions, leaf
membership) the executing query would, so explaining a query also
warms the plan cache entry that query will hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.flat import CONTAINED, DISJOINT
from repro.core.lookup import Region, region_overlap_fraction

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.flat import FlatKernel
    from repro.core.node import COLRNode
    from repro.core.plancache import SpatialPlan
    from repro.core.tree import COLRTree


@dataclass(frozen=True, slots=True)
class PlanTerminal:
    """One point of index access the plan would terminate at."""

    node_id: int
    level: int
    is_leaf: bool
    target: float
    cached_weight: int
    expected_probes: float


@dataclass
class QueryPlan:
    """The result of EXPLAIN."""

    access_path: str  # "layered_sampling" | "range_lookup"
    target_size: int
    relevant_sensors: int
    cached_weight: int
    expected_probes: float
    terminals: list[PlanTerminal] = field(default_factory=list)

    @property
    def cache_coverage(self) -> float:
        """Fraction of the needed answer servable from cache."""
        denominator = (
            min(self.target_size, self.relevant_sensors)
            if self.access_path == "layered_sampling"
            else self.relevant_sensors
        )
        if denominator <= 0:
            return 1.0
        return min(1.0, self.cached_weight / denominator)

    def format(self) -> str:
        lines = [
            f"access path:      {self.access_path}",
            f"relevant sensors: {self.relevant_sensors}",
            f"target size:      {self.target_size if self.access_path == 'layered_sampling' else 'exact'}",
            f"cache coverage:   {self.cache_coverage:.0%} ({self.cached_weight} readings)",
            f"expected probes:  {self.expected_probes:.1f}",
            f"terminals:        {len(self.terminals)}",
        ]
        for t in sorted(self.terminals, key=lambda t: -t.expected_probes)[:10]:
            kind = "leaf" if t.is_leaf else f"level-{t.level}"
            lines.append(
                f"  node {t.node_id} ({kind}): target {t.target:.2f}, "
                f"cached {t.cached_weight}, probes ~{t.expected_probes:.2f}"
            )
        return "\n".join(lines)


def explain_query(
    tree: "COLRTree",
    region: Region,
    now: float,
    max_staleness: float,
    sample_size: int | None = None,
    terminal_level: int | None = None,
) -> QueryPlan:
    """Produce the plan the given query would execute."""
    if max_staleness < 0:
        raise ValueError("max_staleness must be non-negative")
    if sample_size is None:
        sample_size = tree.config.default_sample_size
    sampled = tree.config.sampling_enabled and sample_size > 0
    t_level = (
        terminal_level if terminal_level is not None else tree.config.terminal_level
    )
    # Key the plan exactly as the executing query would, so EXPLAIN
    # warms the cache entry the real query will then hit.
    spatial = tree.spatial_plan(region, t_level if sampled else None)
    kernel = tree.kernel if spatial is not None else None
    relevant = _relevant_sensor_count(tree, region, kernel, spatial)
    if not sampled:
        return _explain_exact(tree, region, now, max_staleness, relevant, kernel, spatial)
    plan = QueryPlan(
        access_path="layered_sampling",
        target_size=sample_size,
        relevant_sensors=relevant,
        cached_weight=0,
        expected_probes=0.0,
    )
    _walk_sampled(
        tree, tree.root, region, now, max_staleness, float(sample_size), t_level,
        plan, kernel, spatial, 0 if kernel is not None else None,
    )
    plan.cached_weight = sum(t.cached_weight for t in plan.terminals)
    plan.expected_probes = sum(t.expected_probes for t in plan.terminals)
    return plan


def _relevant_sensor_count(
    tree: "COLRTree",
    region: Region,
    kernel: "FlatKernel | None" = None,
    plan: "SpatialPlan | None" = None,
) -> int:
    if kernel is not None and plan is not None:
        if plan._relevant_count is None:
            plan._relevant_count = _relevant_count_flat(tree, region, kernel, plan)
        return plan._relevant_count
    return _relevant_count_node(tree, tree.root, region)


def _relevant_count_flat(
    tree: "COLRTree", region: Region, kernel: "FlatKernel", plan: "SpatialPlan"
) -> int:
    labels = plan.labels_list
    child_start = kernel._child_start_list
    total = 0
    stack = [0]
    while stack:
        i = stack.pop()
        label = labels[i]
        if label == DISJOINT:
            continue
        node = kernel.nodes[i]
        if label == CONTAINED:
            total += node.weight
            continue
        if node.is_leaf:
            total += len(plan.leaf_matching(kernel, i, region))
            continue
        start = child_start[i]
        stack.extend(range(start, start + len(node.children)))
    return total


def _relevant_count_node(tree: "COLRTree", node: "COLRNode", region: Region) -> int:
    if not region.intersects_rect(node.bbox):
        return 0
    if region.contains_rect(node.bbox):
        return node.weight
    if node.is_leaf:
        return sum(1 for s in node.sensors if region.contains_point(s.location))
    return sum(_relevant_count_node(tree, c, region) for c in node.children)


def _explain_exact(
    tree: "COLRTree",
    region: Region,
    now: float,
    max_staleness: float,
    relevant: int,
    kernel: "FlatKernel | None" = None,
    spatial: "SpatialPlan | None" = None,
) -> QueryPlan:
    plan = QueryPlan(
        access_path="range_lookup",
        target_size=0,
        relevant_sensors=relevant,
        cached_weight=0,
        expected_probes=0.0,
    )
    _walk_exact(
        tree, tree.root, region, now, max_staleness, plan, kernel, spatial,
        0 if kernel is not None else None,
    )
    plan.cached_weight = sum(t.cached_weight for t in plan.terminals)
    plan.expected_probes = sum(t.expected_probes for t in plan.terminals)
    return plan


def _walk_exact(
    tree, node, region, now, max_staleness, plan, kernel=None, spatial=None, idx=None
) -> None:
    if spatial is not None and idx is not None:
        label = spatial.labels_list[idx]
        if label == DISJOINT:
            return
        fully_inside = label == CONTAINED
    else:
        if not region.intersects_rect(node.bbox):
            return
        fully_inside = region.contains_rect(node.bbox)
    caching = tree.config.caching_enabled
    if (
        caching
        and tree.config.aggregate_caching_enabled
        and fully_inside
        and not node.is_leaf
        and node.agg_cache is not None
    ):
        covered = node.agg_cache.usable_weight(now, max_staleness)
        if covered >= node.weight:
            plan.terminals.append(
                PlanTerminal(
                    node_id=node.node_id,
                    level=node.level,
                    is_leaf=False,
                    target=float(node.weight),
                    cached_weight=covered,
                    expected_probes=0.0,
                )
            )
            return
    if node.is_leaf:
        if fully_inside:
            matching = node.sensors
        elif spatial is not None and idx is not None:
            matching = spatial.leaf_matching(kernel, idx, region)
        else:
            matching = [s for s in node.sensors if region.contains_point(s.location)]
        if not matching:
            return
        cached_ids = (
            node.leaf_cache.fresh_sensor_ids(now, max_staleness)
            if caching and node.leaf_cache is not None
            else set()
        )
        served = sum(1 for s in matching if s.sensor_id in cached_ids)
        plan.terminals.append(
            PlanTerminal(
                node_id=node.node_id,
                level=node.level,
                is_leaf=True,
                target=float(len(matching)),
                cached_weight=served,
                expected_probes=float(len(matching) - served),
            )
        )
        return
    start = kernel._child_start_list[idx] if idx is not None else None
    for offset, child in enumerate(node.children):
        _walk_exact(
            tree, child, region, now, max_staleness, plan, kernel, spatial,
            start + offset if start is not None else None,
        )


def _walk_sampled(
    tree, node, region, now, max_staleness, r, t_level, plan,
    kernel=None, spatial=None, idx=None,
) -> None:
    """Deterministic mirror of Algorithm 1: expectations only."""
    config = tree.config
    if r <= 0:
        return
    if node.is_leaf:
        _plan_terminal(tree, node, region, now, max_staleness, r, plan)
        return
    weighted = []
    total = 0.0
    if spatial is not None and idx is not None:
        overlaps = spatial.overlaps(kernel, region)
        labels = spatial.labels_list
        start = kernel._child_start_list[idx]
        for offset, child in enumerate(node.children):
            child_idx = start + offset
            overlap = overlaps[child_idx]
            if overlap <= 0.0 and labels[child_idx] == DISJOINT:
                continue
            w = child.weight * max(overlap, 1e-12)
            weighted.append((child, w, child_idx))
            total += w
    else:
        for child in node.children:
            overlap = region_overlap_fraction(child.bbox, region)
            if overlap <= 0.0 and not region.intersects_rect(child.bbox):
                continue
            w = child.weight * max(overlap, 1e-12)
            weighted.append((child, w, None))
            total += w
    if total <= 0:
        return
    labels = spatial.labels_list if spatial is not None else None
    for child, w, child_idx in weighted:
        r_i = r * w / total
        if labels is not None and child_idx is not None:
            inside = labels[child_idx] == CONTAINED
        else:
            inside = region.contains_rect(child.bbox)
        if inside and node.level > t_level:
            _plan_terminal(tree, child, region, now, max_staleness, r_i, plan)
        else:
            if inside and config.caching_enabled:
                cached = child.cached_weight(now, max_staleness)
                if cached >= r_i:
                    plan.terminals.append(
                        PlanTerminal(
                            node_id=child.node_id,
                            level=child.level,
                            is_leaf=child.is_leaf,
                            target=r_i,
                            cached_weight=cached,
                            expected_probes=0.0,
                        )
                    )
                    continue
            _walk_sampled(
                tree, child, region, now, max_staleness, r_i, t_level, plan,
                kernel, spatial, child_idx,
            )


def _plan_terminal(tree, node, region, now, max_staleness, r_i, plan) -> None:
    config = tree.config
    cached = node.cached_weight(now, max_staleness) if config.caching_enabled else 0
    need = max(0.0, r_i - cached)
    if need > 0 and config.oversampling_enabled:
        need = need / tree.node_availability(node, now)
    pool = node.n_descendants - (cached if node.is_leaf else 0)
    expected = min(need, float(max(0, pool)))
    plan.terminals.append(
        PlanTerminal(
            node_id=node.node_id,
            level=node.level,
            is_leaf=node.is_leaf,
            target=r_i,
            cached_weight=min(cached, node.weight),
            expected_probes=expected,
        )
    )
