"""Layered sampling — Algorithm 1 and Algorithm 2 of the paper.

The one-pass sampling range lookup splits a user target sample size
``R`` down the tree: each relevant child receives a share proportional
to ``w_i * Overlap(BB(i), A)``.  Paths terminate in a *probe* at the
first node below the terminal threshold ``T`` whose bounding box lies
entirely inside the query region; before probing, the target is reduced
by the cached sensors available at the node (``|c_i|``) and scaled up by
``1/a_i`` (historical availability) to compensate for unavailable
sensors.  The scale-up happens exactly once per root-to-probe path: at
the probe point, or at level ``O`` for paths still descending — we carry
an explicit ``scaled`` flag per queue entry, which realizes the paper's
"exactly once" invariant without its level-comparison corner cases.

Shortfalls (``totalFetched < r``) are compensated by ``REDISTRIBUTE``:
the missing mass is spread over the nodes still queued, proportionally
to their current targets (Algorithm 2's intent).

Fractional targets are resolved with randomized rounding
(``floor(x) + Bernoulli(frac(x))``), which preserves the expected-size
invariant of Theorem 1 exactly.

When the tree carries a flattened kernel (:mod:`repro.core.flat`), the
spatial inputs of the algorithm — per-child overlap fractions, the
containment tests, and each terminal leaf's in-region sensor pool —
come from one vectorized classification (memoized in the spatial plan
cache) instead of per-node geometry calls.  The control flow, and
therefore the RNG draw sequence, is identical either way, so sampled
answers are bit-for-bit the same with the kernel on or off.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.flat import CONTAINED, DISJOINT
from repro.core.lookup import QueryAnswer, Region, TerminalRecord, region_overlap_fraction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.flat import FlatKernel
    from repro.core.node import COLRNode
    from repro.core.plancache import SpatialPlan
    from repro.core.tree import COLRTree


@dataclass
class _Entry:
    """A queued (target size, node) pair; ``scaled`` marks whether the
    1/a oversampling factor has been applied on this path (the node is
    in the proof's class S).  ``idx`` is the node's flattened-kernel
    index (``None`` on the legacy path)."""

    priority: float
    node: "COLRNode"
    scaled: bool
    idx: int | None = None


class _TargetQueue:
    """Max-priority queue over :class:`_Entry` supporting proportional
    redistribution over every live entry (Algorithm 2)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, _Entry]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: _Entry) -> None:
        heapq.heappush(self._heap, (-entry.priority, self._seq, entry))
        self._seq += 1

    def pop(self) -> _Entry:
        _, _, entry = heapq.heappop(self._heap)
        return entry

    def redistribute(self, shortfall: float) -> None:
        """Add ``shortfall`` across queued entries proportionally to
        their current targets, then restore the heap order."""
        if shortfall <= 0 or not self._heap:
            return
        total = sum(entry.priority for _, _, entry in self._heap)
        if total <= 0:
            return
        rebuilt: list[tuple[float, int, _Entry]] = []
        for _, seq, entry in self._heap:
            entry.priority += shortfall * entry.priority / total
            rebuilt.append((-entry.priority, seq, entry))
        heapq.heapify(rebuilt)
        self._heap = rebuilt


def layered_sample(
    tree: "COLRTree",
    region: Region,
    now: float,
    max_staleness: float,
    target_size: float,
    terminal_level: int | None = None,
) -> QueryAnswer:
    """Run Algorithm 1 against a built tree and return the sample.

    The returned :class:`QueryAnswer` holds the successfully probed
    readings plus every cached reading / aggregate folded in along the
    way, with per-terminal records for the Figure 6 metrics.

    ``terminal_level`` overrides the config's threshold ``T`` for this
    query — the paper adjusts it with the map's zoom level, producing
    one sample (or aggregate) per node at that level.
    """
    answer = QueryAnswer()
    if target_size <= 0:
        return answer
    answer.stats.sample_target = float(target_size)
    config = tree.config
    t_level = terminal_level if terminal_level is not None else config.terminal_level
    if t_level < 0:
        raise ValueError("terminal_level must be non-negative")
    # The oversampling level must stay at or below the terminal level so
    # the 1/a factor is applied exactly once per path.
    o_level = max(config.oversample_level, t_level)
    plan = tree.spatial_plan(region, t_level, answer.stats)
    kernel = tree.kernel if plan is not None else None
    labels = plan.labels_list if plan is not None else None
    queue = _TargetQueue()
    queue.push(
        _Entry(
            priority=float(target_size),
            node=tree.root,
            scaled=False,
            idx=0 if kernel is not None else None,
        )
    )
    rng = tree.rng

    while len(queue) > 0:
        entry = queue.pop()
        node = entry.node
        r = entry.priority
        answer.stats.nodes_traversed += 1
        if r <= 0:
            continue
        if node.is_leaf:
            fetched = _probe_node(
                tree, node, region, now, max_staleness, r, entry.scaled, answer, rng,
                kernel=kernel, plan=plan, idx=entry.idx,
            )
            if fetched < r and config.redistribution_enabled:
                queue.redistribute(r - fetched)
            continue

        shares = _child_shares(node, region, kernel=kernel, plan=plan, idx=entry.idx)
        if not shares:
            if config.redistribution_enabled:
                queue.redistribute(r)
            continue
        total_fetched = 0.0
        for child, share, child_idx in shares:
            answer.stats.nodes_traversed += 1
            r_i = r * share
            if labels is not None:
                inside = labels[child_idx] == CONTAINED
            else:
                inside = region.contains_rect(child.bbox)
            if inside and node.level > t_level:
                total_fetched += _probe_node(
                    tree, child, region, now, max_staleness, r_i, entry.scaled, answer,
                    rng, kernel=kernel, plan=plan, idx=child_idx,
                )
            else:
                child_scaled = entry.scaled
                if (
                    not child_scaled
                    and config.oversampling_enabled
                    and node.level >= o_level
                ):
                    r_i = r_i / tree.node_availability(child, now)
                    child_scaled = True
                if inside and config.caching_enabled:
                    # Cache-sufficiency check of the sensor-selection
                    # access method (Section VI-A): a fully-inside child
                    # whose usable cached weight covers its share is
                    # served from cache instead of descending.
                    answer.stats.cached_nodes_accessed += 1
                    cached_weight = child.cached_weight(now, max_staleness)
                    if cached_weight >= r_i and (
                        child.is_leaf or config.aggregate_caching_enabled
                    ):
                        served, _ = _collect_cached(
                            tree, child, region, now, max_staleness, answer, target=r_i
                        )
                        answer.terminals.append(
                            TerminalRecord(
                                node_id=child.node_id,
                                level=child.level,
                                target=max(0.0, r_i),
                                results=served,
                                used_cache=True,
                            )
                        )
                        total_fetched += served
                        continue
                if r_i < 1.0:
                    # A vanishing target does not justify a subtree
                    # descent: push a unit target with probability r_i.
                    # Expectation is preserved by construction, so the
                    # parent's budget is credited r_i either way —
                    # redistribution must only compensate *genuine*
                    # shortfalls (holes, failures), not rounding noise,
                    # which would otherwise rectify into inflation.
                    total_fetched += r_i
                    if rng.random() < r_i:
                        queue.push(
                            _Entry(
                                priority=1.0, node=child, scaled=child_scaled,
                                idx=child_idx,
                            )
                        )
                    continue
                total_fetched += r_i
                queue.push(
                    _Entry(
                        priority=r_i, node=child, scaled=child_scaled, idx=child_idx
                    )
                )
        if total_fetched < r and config.redistribution_enabled:
            queue.redistribute(r - total_fetched)
    return answer


def _child_shares(
    node: "COLRNode",
    region: Region,
    kernel: "FlatKernel | None" = None,
    plan: "SpatialPlan | None" = None,
    idx: int | None = None,
) -> list[tuple["COLRNode", float, int | None]]:
    """Overlap-weighted share of the parent's target for each relevant
    child (line 9 / 17 of Algorithm 1), as ``(child, share, child_idx)``
    tuples (``child_idx`` is ``None`` on the legacy path).

    With a kernel, overlap fractions come from one memoized vectorized
    pass and the relevance test reads the classification labels; the
    share arithmetic runs in the same sequential order either way, so
    the resulting floats are bit-identical.
    """
    weighted: list[tuple["COLRNode", float, int | None]] = []
    total = 0.0
    if kernel is not None and plan is not None and idx is not None:
        overlaps = plan.overlaps(kernel, region)
        labels = plan.labels_list
        start = kernel._child_start_list[idx]
        for offset, child in enumerate(node.children):
            child_idx = start + offset
            overlap = overlaps[child_idx]
            if overlap <= 0.0 and labels[child_idx] == DISJOINT:
                continue
            # A degenerate overlap fraction of 0 on a touching box still
            # deserves a vanishing share so redistribution can reach it.
            w = child.weight * max(overlap, 1e-12)
            weighted.append((child, w, child_idx))
            total += w
    else:
        for child in node.children:
            overlap = region_overlap_fraction(child.bbox, region)
            if overlap <= 0.0 and not region.intersects_rect(child.bbox):
                continue
            w = child.weight * max(overlap, 1e-12)
            weighted.append((child, w, None))
            total += w
    if total <= 0.0:
        return []
    return [(child, w / total, child_idx) for child, w, child_idx in weighted]


def _probe_node(
    tree: "COLRTree",
    node: "COLRNode",
    region: Region,
    now: float,
    max_staleness: float,
    r_i: float,
    scaled: bool,
    answer: QueryAnswer,
    rng: np.random.Generator,
    kernel: "FlatKernel | None" = None,
    plan: "SpatialPlan | None" = None,
    idx: int | None = None,
) -> float:
    """Terminal handling: use the node's cache, then probe randomly
    chosen descendant sensors to make up the remaining target.

    Returns the *fetched* amount credited against the parent's target
    (cached weight plus probes attempted), matching the pseudocode's
    ``totalFetched`` accounting.
    """
    config = tree.config
    target = max(0.0, r_i)
    cached_weight = 0
    cached_ids: set[int] = set()
    if config.caching_enabled:
        cached_weight, cached_ids = _collect_cached(
            tree, node, region, now, max_staleness, answer, target=target
        )
    need = target - cached_weight
    if not scaled and config.oversampling_enabled and need > 0:
        need = need / tree.node_availability(node, now)
    k = _randomized_round(max(0.0, need), rng)
    probed_ids = _choose_sensors(
        tree, node, region, cached_ids, k, rng, kernel=kernel, plan=plan, idx=idx
    )
    if probed_ids:
        readings = tree.probe_and_cache(
            probed_ids, now, answer.stats, max_staleness=max_staleness
        )
        answer.probed_readings.extend(readings)
    answer.terminals.append(
        TerminalRecord(
            node_id=node.node_id,
            level=node.level,
            target=target,
            results=cached_weight if cached_weight > 0 else len(probed_ids),
            used_cache=cached_weight > 0,
        )
    )
    # Both cache hits and probes count toward the parent's target.  When
    # the sensor pool covered the rounded request, credit the un-rounded
    # expectation so one-sided redistribution is not triggered by
    # rounding noise; only genuine shortfalls (thin subtrees, spatial
    # holes) leave a gap to redistribute.
    if len(probed_ids) < k:
        # Pool exhausted: a genuine shortfall, credited at face value.
        # Surfaced on the stats so the portal (and above it the
        # federation coordinator) can tell "this shard has no more
        # sensors to give" apart from transient probe failures.
        answer.stats.pool_exhausted_terminals += 1
        return float(cached_weight + len(probed_ids))
    return float(cached_weight) + max(0.0, need)


def _collect_cached(
    tree: "COLRTree",
    node: "COLRNode",
    region: Region,
    now: float,
    max_staleness: float,
    answer: QueryAnswer,
    target: float | None = None,
) -> tuple[int, set[int]]:
    """Fold the node's usable cached data into the answer.

    Internal nodes contribute aggregate sketches (their membership is
    opaque, which is the source of Figure 6's cache-induced bias); leaves
    contribute raw readings whose sensors are then excluded from
    probing.

    With ``reversible_aggregates`` enabled and a finite ``target``, an
    aggregate that over-delivers is decomposed into the descendants'
    cached components and only ~``target`` worth of them is consumed —
    the paper's suggested "reversible aggregation materialization".
    """
    if (
        target is not None
        and tree.config.reversible_aggregates
        and not node.is_leaf
        and tree.config.aggregate_caching_enabled
        and node.agg_cache is not None
        and node.agg_cache.usable_weight(now, max_staleness) > max(1.0, target)
    ):
        consumed, ids = _decompose_cached(
            tree, node, region, now, max_staleness, max(0.0, target), answer
        )
        return consumed, ids
    if node.is_leaf:
        if node.leaf_cache is None:
            return 0, set()
        answer.stats.cached_nodes_accessed += 1
        answer.stats.readings_scanned += len(node.leaf_cache)
        fresh = [
            r
            for r in node.leaf_cache.fresh_readings(now, max_staleness)
            if region.contains_point(tree.sensor(r.sensor_id).location)
        ]
        if not fresh:
            return 0, set()
        answer.cached_readings.extend(fresh)
        ids = {r.sensor_id for r in fresh}
        tree.touch_cached(node, ids, now)
        return len(fresh), ids
    if node.agg_cache is None or not tree.config.aggregate_caching_enabled:
        return 0, set()
    answer.stats.cached_nodes_accessed += 1
    sketches = node.agg_cache.usable_sketches(now, max_staleness)
    if not sketches:
        return 0, set()
    answer.cached_sketches.extend(s.copy() for s in sketches)
    answer.cached_sketch_nodes.extend(node.node_id for _ in sketches)
    answer.stats.slots_combined += len(sketches)
    return sum(s.count for s in sketches), set()


def _decompose_cached(
    tree: "COLRTree",
    node: "COLRNode",
    region: Region,
    now: float,
    max_staleness: float,
    target: float,
    answer: QueryAnswer,
) -> tuple[int, set[int]]:
    """Greedily consume ~``target`` worth of cached data from a subtree.

    Children whose whole cached weight fits the remaining budget are
    consumed as intact aggregates (cheap); the first child that would
    overshoot is recursed into; at leaves an exact subset of fresh
    readings closes the gap.  Returns the consumed weight and the leaf
    sensor ids it covers.
    """
    if node.is_leaf:
        if node.leaf_cache is None:
            return 0, set()
        answer.stats.cached_nodes_accessed += 1
        answer.stats.readings_scanned += len(node.leaf_cache)
        fresh = [
            r
            for r in node.leaf_cache.fresh_readings(now, max_staleness)
            if region.contains_point(tree.sensor(r.sensor_id).location)
        ]
        take = min(len(fresh), int(math.ceil(target)))
        chosen = fresh[:take]
        answer.cached_readings.extend(chosen)
        ids = {r.sensor_id for r in chosen}
        if ids:
            tree.touch_cached(node, ids, now)
        return len(chosen), ids
    answer.stats.cached_nodes_accessed += 1
    consumed = 0
    ids: set[int] = set()
    remaining = target
    # Visit heavier children first so most of the budget is served by
    # intact (cheap) aggregates and only one child is decomposed.
    children = sorted(
        node.children,
        key=lambda c: c.cached_weight(now, max_staleness),
        reverse=True,
    )
    for child in children:
        if remaining <= 0:
            break
        weight = child.cached_weight(now, max_staleness)
        if weight == 0:
            continue
        if weight <= remaining:
            got, child_ids = _collect_cached(
                tree, child, region, now, max_staleness, answer, target=None
            )
            consumed += got
            ids |= child_ids
            remaining -= got
        else:
            got, child_ids = _decompose_cached(
                tree, child, region, now, max_staleness, remaining, answer
            )
            consumed += got
            ids |= child_ids
            remaining -= got
    return consumed, ids


def _choose_sensors(
    tree: "COLRTree",
    node: "COLRNode",
    region: Region,
    exclude: set[int],
    k: int,
    rng: np.random.Generator,
    kernel: "FlatKernel | None" = None,
    plan: "SpatialPlan | None" = None,
    idx: int | None = None,
) -> list[int]:
    """Uniformly choose up to ``k`` distinct descendant sensors of a
    terminal node, excluding already-cached leaf sensors."""
    if k <= 0:
        return []
    if node.is_leaf:
        if plan is not None and kernel is not None and idx is not None:
            # Memoized in-region membership (same sensors, same order
            # as the legacy filter below).
            pool = [
                s.sensor_id
                for s in plan.leaf_matching(kernel, idx, region)
                if s.sensor_id not in exclude
            ]
        else:
            pool = [
                s.sensor_id
                for s in node.sensors
                if s.sensor_id not in exclude and region.contains_point(s.location)
            ]
    else:
        pool = [sid for sid in node.descendant_ids.tolist() if sid not in exclude]
    if not pool:
        return []
    if k >= len(pool):
        return pool
    chosen = rng.choice(len(pool), size=k, replace=False)
    return [pool[i] for i in chosen]


def _randomized_round(x: float, rng: np.random.Generator) -> int:
    """Round to an integer with expectation exactly ``x``."""
    base = int(x)
    frac = x - base
    if frac > 0 and rng.random() < frac:
        base += 1
    return base
