"""Optimal slot size: the utility/cost model of Section IV-C.

With ``t_max`` normalized to 1, a query with (normalized) time window
``T`` against slots of size ``Δ`` costs::

    cost(Δ) ~ floor(T/Δ) + ceil(T/Δ) * f + (T - floor(T/Δ) * Δ) * c

(combine usable slots, update the slots touched with freshly collected
data a fraction ``f`` of the time, and collect from sensors for the
window residue not covered by whole slots, at per-unit collection cost
``c`` relative to slot-processing cost).

The utility of ``Δ`` is the average time data remains usable in
aggregated form: with ``k = ceil(1/Δ)`` slots and ``n_i`` sensors whose
expiry falls in slot ``s_i``::

    utility(Δ) ~ Σ_i n_i * (i - 1) * Δ

The workload-optimal slot size maximizes ``utility / cost``.  Figure 2
evaluates this for a uniform expiry distribution (optimum Δ = 0.5), a
USGS-like long-expiry distribution (Δ ≈ 0.8) and a Weather-like
short-expiry distribution (Δ ≈ 0.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SlotSizeModel:
    """The Section IV-C analysis for one workload.

    Parameters
    ----------
    expiry_samples:
        Sensor expiry durations normalized into ``(0, 1]`` (divide by
        ``t_max``).
    query_window:
        ``T`` — the typical query freshness window, normalized the same
        way.  Derived from the query workload.
    update_fraction:
        ``f`` — the fraction of queries that collect fresh data for a
        touched slot (depends on query arrival rate vs expiry).
    collection_cost:
        ``c`` — the cost of collecting one window-unit of data from
        sensors, normalized to the cost of processing one slot.
    """

    expiry_samples: tuple[float, ...]
    query_window: float = 0.5
    update_fraction: float = 0.3
    collection_cost: float = 20.0

    def __post_init__(self) -> None:
        if not self.expiry_samples:
            raise ValueError("need at least one expiry sample")
        for e in self.expiry_samples:
            if not 0.0 < e <= 1.0:
                raise ValueError("expiry samples must be normalized into (0, 1]")
        if not 0.0 < self.query_window <= 1.0:
            raise ValueError("query_window must be in (0, 1]")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")
        if self.collection_cost < 0:
            raise ValueError("collection_cost must be non-negative")

    @classmethod
    def from_workload(
        cls,
        expiry_seconds: Sequence[float],
        t_max: float,
        query_window_seconds: float,
        update_fraction: float = 0.3,
        collection_cost: float = 20.0,
    ) -> "SlotSizeModel":
        """Build the model from raw (seconds) workload statistics."""
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        samples = tuple(min(1.0, max(1e-9, e / t_max)) for e in expiry_seconds)
        return cls(
            expiry_samples=samples,
            query_window=min(1.0, max(1e-9, query_window_seconds / t_max)),
            update_fraction=update_fraction,
            collection_cost=collection_cost,
        )

    # ------------------------------------------------------------------
    # The model
    # ------------------------------------------------------------------
    def cost(self, delta: float) -> float:
        """Per-query cost of slot size ``delta`` (paper's cost formula)."""
        _check_delta(delta)
        t = self.query_window
        whole = math.floor(t / delta)
        touched = math.ceil(t / delta)
        residue = t - whole * delta
        return whole + touched * self.update_fraction + residue * self.collection_cost

    def utility(self, delta: float) -> float:
        """Mean usable-lifetime of aggregated data under ``delta``."""
        _check_delta(delta)
        samples = np.asarray(self.expiry_samples)
        # Slot index i (1-based) of each expiry: expiry in ((i-1)Δ, iΔ].
        slots = np.ceil(samples / delta).astype(np.int64)
        slots = np.maximum(slots, 1)
        lifetimes = (slots - 1) * delta
        return float(lifetimes.mean())

    def ratio(self, delta: float) -> float:
        """The utility/cost objective Figure 2 plots."""
        return self.utility(delta) / self.cost(delta)

    def sweep(self, deltas: Sequence[float]) -> list[tuple[float, float]]:
        """``(Δ, utility/cost)`` pairs over a slot-size grid."""
        return [(d, self.ratio(d)) for d in deltas]


#: Figure 2 reference workload parameters, calibrated against the Live
#: Local query stream: users typically ask for the full freshness
#: horizon (T ≈ t_max), only a small fraction of arrivals refresh any
#: given slot, and collecting one window-unit from sensors costs about
#: five slot-processing units.  Under these parameters the model's
#: optima land at Δ = 0.2 / 0.5 / 0.8 for the Weather / Uniform / USGS
#: expiry profiles, matching the paper.
FIG2_WORKLOAD = {
    "query_window": 1.0,
    "update_fraction": 0.1,
    "collection_cost": 5.0,
}


def default_delta_grid(steps: int = 19) -> list[float]:
    """The Δ grid Figure 2 sweeps: 0.05 .. 0.95 by default."""
    if steps < 1:
        raise ValueError("steps must be positive")
    return [round((i + 1) / (steps + 1), 6) for i in range(steps)]


def optimal_slot_size(model: SlotSizeModel, deltas: Sequence[float] | None = None) -> float:
    """The Δ maximizing utility/cost over the given (or default) grid."""
    grid = list(deltas) if deltas is not None else default_delta_grid()
    if not grid:
        raise ValueError("empty slot-size grid")
    best_delta, best_ratio = grid[0], -math.inf
    for d in grid:
        r = model.ratio(d)
        if r > best_ratio:
            best_delta, best_ratio = d, r
    return best_delta


def _check_delta(delta: float) -> None:
    if not 0.0 < delta <= 1.0:
        raise ValueError("slot size must be normalized into (0, 1]")
