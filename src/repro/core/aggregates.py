"""Per-slot partial aggregates.

A slot in an internal node's cache holds an aggregate over the readings
(from descendant sensors) whose expiry falls in the slot's range.  The
paper's Section IV-B distinguishes aggregates that support *decrement*
(sum, count — an updated reading's old value can be subtracted) from
those that do not (min, max — removal may require recomputation).

``AggregateSketch`` maintains count / sum / min / max together so a
single cached object answers any of the standard aggregate functions.
Removal decrements count and sum exactly; when the removed value touches
the min or max, the sketch marks those *dirty* and the tree recomputes
them from the children's same-slot sketches — exactly the recomputation
path the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

_SUPPORTED = ("count", "sum", "avg", "min", "max")


@dataclass
class AggregateSketch:
    """Mergeable, partially decrementable multi-aggregate.

    ``oldest_timestamp`` tracks the minimum reading timestamp folded
    into the sketch; lookups use it to decide whether the cached
    aggregate provably satisfies a query's freshness bound.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    oldest_timestamp: float = math.inf
    minmax_dirty: bool = field(default=False)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, value: float, timestamp: float) -> None:
        """Fold one reading into the sketch (always incremental)."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if timestamp < self.oldest_timestamp:
            self.oldest_timestamp = timestamp

    def remove(self, value: float) -> None:
        """Subtract one previously added value.

        count/sum decrement exactly; min/max become *dirty* when the
        removed value may have defined them (the non-decrementable case
        of Section IV-B).  ``oldest_timestamp`` is left conservative
        (never increased), which only makes freshness checks stricter.
        """
        if self.count <= 0:
            raise ValueError("cannot remove from an empty sketch")
        self.count -= 1
        self.total -= value
        if self.count == 0:
            self.reset()
            return
        if value <= self.minimum or value >= self.maximum:
            self.minmax_dirty = True

    def merge(self, other: "AggregateSketch") -> None:
        """Fold another sketch into this one."""
        self.count += other.count
        self.total += other.total
        if other.count > 0:
            if other.minimum < self.minimum:
                self.minimum = other.minimum
            if other.maximum > self.maximum:
                self.maximum = other.maximum
            if other.oldest_timestamp < self.oldest_timestamp:
                self.oldest_timestamp = other.oldest_timestamp
            if other.minmax_dirty:
                self.minmax_dirty = True

    def reset(self) -> None:
        """Return to the empty state."""
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.oldest_timestamp = math.inf
        self.minmax_dirty = False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.count == 0

    @property
    def average(self) -> float:
        if self.count == 0:
            raise ValueError("average of an empty sketch is undefined")
        return self.total / self.count

    def result(self, function: str) -> float:
        """The value of one named aggregate function.

        Raises if ``min``/``max`` are requested while dirty — callers
        must recompute (``COLRTree`` does this transparently).
        """
        if function not in _SUPPORTED:
            raise ValueError(f"unsupported aggregate {function!r}; use one of {_SUPPORTED}")
        if self.count == 0:
            raise ValueError(f"{function} of an empty sketch is undefined")
        if function == "count":
            return float(self.count)
        if function == "sum":
            return self.total
        if function == "avg":
            return self.average
        if self.minmax_dirty:
            raise ValueError(f"{function} is dirty after a removal; recompute the sketch")
        return self.minimum if function == "min" else self.maximum

    def copy(self) -> "AggregateSketch":
        return AggregateSketch(
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
            oldest_timestamp=self.oldest_timestamp,
            minmax_dirty=self.minmax_dirty,
        )

    @classmethod
    def of(cls, values_and_timestamps: Iterable[tuple[float, float]]) -> "AggregateSketch":
        """Build a sketch from ``(value, timestamp)`` pairs."""
        sketch = cls()
        for value, timestamp in values_and_timestamps:
            sketch.add(value, timestamp)
        return sketch


def combine(sketches: Iterable[AggregateSketch]) -> AggregateSketch:
    """Merge any number of sketches into a fresh one."""
    out = AggregateSketch()
    for sketch in sketches:
        out.merge(sketch)
    return out
