"""Query answers and the non-sampled range lookup.

This module implements the classic top-down range lookup of Section
III-C plus the cache-read extensions of Section IV-B: traversal prunes
non-overlapping nodes, terminates early at internal nodes whose slot
cache fully covers the subtree for the query's freshness bound, and at
leaves serves fresh cached readings before probing the remainder.

Layered sampling — the other access path — lives in
:mod:`repro.core.sampling`; both paths return the same
:class:`QueryAnswer` type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.aggregates import AggregateSketch, combine
from repro.core.stats import QueryStats
from repro.geometry import GeoPoint, Rect
from repro.sensors.sensor import Reading, Sensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import COLRNode
    from repro.core.tree import COLRTree


@runtime_checkable
class Region(Protocol):
    """The spatial-region protocol: satisfied by both :class:`Rect` and
    :class:`~repro.geometry.Polygon`."""

    def intersects_rect(self, rect: Rect) -> bool: ...

    def contains_rect(self, rect: Rect) -> bool: ...

    def contains_point(self, p: GeoPoint) -> bool: ...


def region_bbox(region: Region) -> Rect:
    """Bounding box of a region (identity for rectangles)."""
    if isinstance(region, Rect):
        return region
    bbox = getattr(region, "bounding_box", None)
    if bbox is None:
        raise TypeError(f"region {region!r} exposes no bounding box")
    return bbox


def region_overlap_fraction(bbox: Rect, region: Region) -> float:
    """``Overlap(BB(i), A)`` — exact for rectangular regions; polygonal
    regions are approximated by their bounding box, which only skews
    sample-share weights (never correctness of membership tests)."""
    return bbox.overlap_fraction(region_bbox(region))


@dataclass(frozen=True, slots=True)
class TerminalRecord:
    """Per-terminal accounting used by Figure 6's probe discretization
    error: the pre-oversampling target assigned to a terminal point of
    index access, and the results it produced."""

    node_id: int
    level: int
    target: float
    results: int
    used_cache: bool


@dataclass
class QueryAnswer:
    """Everything a query produced.

    ``probed_readings`` came from live sensors this query; the cached
    components were served from slot caches.  Aggregate results combine
    all three sources.
    """

    probed_readings: list[Reading] = field(default_factory=list)
    cached_readings: list[Reading] = field(default_factory=list)
    cached_sketches: list[AggregateSketch] = field(default_factory=list)
    # Node id each cached sketch came from (parallel to cached_sketches);
    # the portal uses it to place aggregate groups on the map.
    cached_sketch_nodes: list[int] = field(default_factory=list)
    terminals: list[TerminalRecord] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def probed_count(self) -> int:
        return len(self.probed_readings)

    @property
    def result_weight(self) -> int:
        """Number of sensor readings represented in the answer,
        including those inside cached aggregates."""
        return (
            len(self.probed_readings)
            + len(self.cached_readings)
            + sum(s.count for s in self.cached_sketches)
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def combined_sketch(self) -> AggregateSketch:
        """One sketch over every reading and cached aggregate."""
        out = combine(self.cached_sketches)
        for reading in self.probed_readings:
            out.add(reading.value, reading.timestamp)
        for reading in self.cached_readings:
            out.add(reading.value, reading.timestamp)
        return out

    def estimate(self, function: str) -> float:
        """Aggregate result (``count`` / ``sum`` / ``avg`` / ``min`` /
        ``max``) over the answer."""
        return self.combined_sketch().result(function)


def range_lookup(
    tree: "COLRTree",
    region: Region,
    now: float,
    max_staleness: float,
) -> QueryAnswer:
    """Exact (non-sampled) range query.

    With caching disabled this is a standard R-tree range lookup that
    probes every matching sensor — the evaluation's "regular R-Tree"
    configuration.  With caching enabled it is the "hierarchical cache":
    traversal stops at internal nodes whose usable cached aggregates
    cover the whole subtree, and leaves serve fresh readings from cache
    before probing the remainder.
    """
    answer = QueryAnswer()
    to_probe: list[int] = []
    _descend(tree, tree.root, region, now, max_staleness, answer, to_probe)
    if to_probe:
        readings = tree.probe_and_cache(to_probe, now, answer.stats)
        answer.probed_readings.extend(readings)
    return answer


def _descend(
    tree: "COLRTree",
    node: "COLRNode",
    region: Region,
    now: float,
    max_staleness: float,
    answer: QueryAnswer,
    to_probe: list[int],
) -> None:
    answer.stats.nodes_traversed += 1
    if not region.intersects_rect(node.bbox):
        return
    fully_inside = region.contains_rect(node.bbox)

    if node.is_leaf:
        _leaf_lookup(tree, node, region, now, max_staleness, fully_inside, answer, to_probe)
        return

    if (
        tree.config.caching_enabled
        and tree.config.aggregate_caching_enabled
        and fully_inside
    ):
        cache = node.agg_cache
        if cache is not None:
            # The consultation itself is the metered cache access: the
            # hierarchical cache pays it at every fully-covered node it
            # meets, which is the extra cache-lookup work Figure 3's
            # nested plot charges it with.
            answer.stats.cached_nodes_accessed += 1
            sketches = cache.usable_sketches(now, max_staleness)
            covered = sum(s.count for s in sketches)
            if covered >= node.weight:
                # Early termination: the whole subtree is answerable
                # from this node's cached aggregates.
                answer.cached_sketches.extend(s.copy() for s in sketches)
                answer.cached_sketch_nodes.extend(node.node_id for _ in sketches)
                answer.stats.slots_combined += len(sketches)
                answer.terminals.append(
                    TerminalRecord(
                        node_id=node.node_id,
                        level=node.level,
                        target=float(node.weight),
                        results=covered,
                        used_cache=True,
                    )
                )
                return
    for child in node.children:
        _descend(tree, child, region, now, max_staleness, answer, to_probe)


def _leaf_lookup(
    tree: "COLRTree",
    leaf: "COLRNode",
    region: Region,
    now: float,
    max_staleness: float,
    fully_inside: bool,
    answer: QueryAnswer,
    to_probe: list[int],
) -> None:
    """Serve a leaf: cached fresh readings for matching sensors, probes
    for the rest."""
    matching: list[Sensor] = (
        leaf.sensors
        if fully_inside
        else [s for s in leaf.sensors if region.contains_point(s.location)]
    )
    if not matching:
        return
    served = 0
    cached_ids: set[int] = set()
    if tree.config.caching_enabled and leaf.leaf_cache is not None:
        answer.stats.cached_nodes_accessed += 1
        answer.stats.readings_scanned += len(leaf.leaf_cache)
        fresh = {
            r.sensor_id: r for r in leaf.leaf_cache.fresh_readings(now, max_staleness)
        }
        for sensor in matching:
            reading = fresh.get(sensor.sensor_id)
            if reading is not None:
                answer.cached_readings.append(reading)
                cached_ids.add(sensor.sensor_id)
                served += 1
        if cached_ids:
            tree.touch_cached(leaf, cached_ids, now)
    probe_ids = [s.sensor_id for s in matching if s.sensor_id not in cached_ids]
    to_probe.extend(probe_ids)
    answer.terminals.append(
        TerminalRecord(
            node_id=leaf.node_id,
            level=leaf.level,
            target=float(len(matching)),
            results=served + len(probe_ids),
            used_cache=bool(cached_ids),
        )
    )
