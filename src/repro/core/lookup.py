"""Query answers and the non-sampled range lookup.

This module implements the classic top-down range lookup of Section
III-C plus the cache-read extensions of Section IV-B: traversal prunes
non-overlapping nodes, terminates early at internal nodes whose slot
cache fully covers the subtree for the query's freshness bound, and at
leaves serves fresh cached readings before probing the remainder.

Two traversal engines produce identical answers:

* the legacy pointer-chasing recursion (``_descend``), kept as the
  differential-testing reference and for trees built with
  ``flat_kernel_enabled=False``; and
* the flattened-kernel paths, which consume a vectorized node
  classification (:mod:`repro.core.flat`) — optionally memoized in the
  spatial plan cache (:mod:`repro.core.plancache`) — instead of calling
  geometry predicates node by node.  When every slot cache is empty
  (cold tree, or caching disabled) the whole scan collapses to a few
  array operations plus terminal emission.

Layered sampling — the other access path — lives in
:mod:`repro.core.sampling`; both paths return the same
:class:`QueryAnswer` type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from repro.core.aggregates import AggregateSketch, combine
from repro.core.flat import CONTAINED, DISJOINT
from repro.core.region import Region, region_bbox, region_overlap_fraction
from repro.core.stats import QueryStats
from repro.geometry import Rect
from repro.sensors.sensor import Reading, Sensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.flat import FlatKernel
    from repro.core.node import COLRNode
    from repro.core.plancache import SpatialPlan
    from repro.core.tree import COLRTree

__all__ = [
    "QueryAnswer",
    "Region",
    "TerminalRecord",
    "range_lookup",
    "range_scan",
    "scan_with_plan",
    "region_bbox",
    "region_overlap_fraction",
]


class TerminalRecord(NamedTuple):
    """Per-terminal accounting used by Figure 6's probe discretization
    error: the pre-oversampling target assigned to a terminal point of
    index access, and the results it produced.

    A ``NamedTuple`` rather than a frozen dataclass: exact range scans
    emit one record per matching leaf, which makes construction cost a
    measurable slice of the vectorized scan's floor — tuple construction
    is several times cheaper than a frozen dataclass ``__init__``."""

    node_id: int
    level: int
    target: float
    results: int
    used_cache: bool


@dataclass
class QueryAnswer:
    """Everything a query produced.

    ``probed_readings`` came from live sensors this query; the cached
    components were served from slot caches.  Aggregate results combine
    all three sources.
    """

    probed_readings: list[Reading] = field(default_factory=list)
    cached_readings: list[Reading] = field(default_factory=list)
    cached_sketches: list[AggregateSketch] = field(default_factory=list)
    # Node id each cached sketch came from (parallel to cached_sketches);
    # the portal uses it to place aggregate groups on the map.
    cached_sketch_nodes: list[int] = field(default_factory=list)
    terminals: list[TerminalRecord] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def probed_count(self) -> int:
        return len(self.probed_readings)

    @property
    def result_weight(self) -> int:
        """Number of sensor readings represented in the answer,
        including those inside cached aggregates."""
        return (
            len(self.probed_readings)
            + len(self.cached_readings)
            + sum(s.count for s in self.cached_sketches)
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def combined_sketch(self) -> AggregateSketch:
        """One sketch over every reading and cached aggregate."""
        out = combine(self.cached_sketches)
        for reading in self.probed_readings:
            out.add(reading.value, reading.timestamp)
        for reading in self.cached_readings:
            out.add(reading.value, reading.timestamp)
        return out

    def estimate(self, function: str) -> float:
        """Aggregate result (``count`` / ``sum`` / ``avg`` / ``min`` /
        ``max``) over the answer."""
        return self.combined_sketch().result(function)


def range_lookup(
    tree: "COLRTree",
    region: Region,
    now: float,
    max_staleness: float,
    aggregate_termination: bool = True,
) -> QueryAnswer:
    """Exact (non-sampled) range query.

    With caching disabled this is a standard R-tree range lookup that
    probes every matching sensor — the evaluation's "regular R-Tree"
    configuration.  With caching enabled it is the "hierarchical cache":
    traversal stops at internal nodes whose usable cached aggregates
    cover the whole subtree, and leaves serve fresh readings from cache
    before probing the remainder.
    """
    answer, to_probe = range_scan(
        tree, region, now, max_staleness,
        aggregate_termination=aggregate_termination,
    )
    if to_probe:
        readings = tree.probe_and_cache(
            to_probe, now, answer.stats, max_staleness=max_staleness
        )
        answer.probed_readings.extend(readings)
    return answer


def range_scan(
    tree: "COLRTree",
    region: Region,
    now: float,
    max_staleness: float,
    aggregate_termination: bool = True,
) -> tuple[QueryAnswer, list[int]]:
    """The traversal half of :func:`range_lookup`: serve what the slot
    caches cover and return the sensor ids still needing live probes.

    Exposed separately so the traversal microbenchmark (and tests) can
    meter index work without paying for (identical) network probes.
    """
    answer = QueryAnswer()
    plan = tree.spatial_plan(region, None, answer.stats)
    return scan_with_plan(
        tree, region, now, max_staleness, plan, answer,
        aggregate_termination=aggregate_termination,
    )


def scan_with_plan(
    tree: "COLRTree",
    region: Region,
    now: float,
    max_staleness: float,
    plan: "SpatialPlan | None",
    answer: QueryAnswer,
    aggregate_termination: bool = True,
) -> tuple[QueryAnswer, list[int]]:
    """Traversal with an already-resolved spatial plan.

    The batch executor resolves plans itself (so queries sharing a
    region reuse one classification per batch) and injects them here;
    ``plan=None`` means the flattened kernel is off and traversal falls
    back to the recursive reference.  The caller owns the plan-lookup
    accounting — this function never touches the plan cache.

    ``aggregate_termination=False`` skips the sketch early-termination
    check at fully covered internal nodes (see ``COLRTree.query``).  On
    a tree with nothing cached the empty-cache fast path still runs —
    no sketch can exist there, so the answer content is identical
    either way (only the consultation counter it memoizes differs).
    """
    to_probe: list[int] = []
    if plan is None:
        _descend(
            tree, tree.root, region, now, max_staleness, answer, to_probe,
            aggregate_termination,
        )
        return answer, to_probe
    kernel = tree.kernel
    assert kernel is not None
    if not tree.config.caching_enabled or tree.cached_reading_count == 0:
        _scan_empty_cache(tree, kernel, plan, region, answer, to_probe)
    else:
        _descend_flat(
            tree, kernel, plan, region, now, max_staleness, answer, to_probe,
            aggregate_termination,
        )
    return answer, to_probe


# ----------------------------------------------------------------------
# Legacy pointer-based traversal (differential reference)
# ----------------------------------------------------------------------
def _descend(
    tree: "COLRTree",
    node: "COLRNode",
    region: Region,
    now: float,
    max_staleness: float,
    answer: QueryAnswer,
    to_probe: list[int],
    aggregate_termination: bool = True,
) -> None:
    answer.stats.nodes_traversed += 1
    if not region.intersects_rect(node.bbox):
        return
    fully_inside = region.contains_rect(node.bbox)

    if node.is_leaf:
        matching: list[Sensor] = (
            node.sensors
            if fully_inside
            else [s for s in node.sensors if region.contains_point(s.location)]
        )
        _serve_leaf(tree, node, matching, now, max_staleness, answer, to_probe)
        return

    if aggregate_termination and _try_aggregate_termination(
        tree, node, fully_inside, now, max_staleness, answer
    ):
        return
    for child in node.children:
        _descend(
            tree, child, region, now, max_staleness, answer, to_probe,
            aggregate_termination,
        )


# ----------------------------------------------------------------------
# Flattened-kernel traversal
# ----------------------------------------------------------------------
def _descend_flat(
    tree: "COLRTree",
    kernel: "FlatKernel",
    plan: "SpatialPlan",
    region: Region,
    now: float,
    max_staleness: float,
    answer: QueryAnswer,
    to_probe: list[int],
    aggregate_termination: bool = True,
) -> None:
    """Per-node traversal driven by precomputed classification labels.

    Visit order, counters and cache consultations replicate ``_descend``
    exactly; only the geometry predicates are replaced by label lookups.
    """
    labels = plan.labels_list
    child_start = kernel._child_start_list
    child_count = kernel._child_count_list
    is_leaf = kernel._is_leaf_list
    nodes = kernel.nodes
    stats = answer.stats
    stack = [0]
    while stack:
        i = stack.pop()
        stats.nodes_traversed += 1
        label = labels[i]
        if label == DISJOINT:
            continue
        node = nodes[i]
        fully_inside = label == CONTAINED
        if is_leaf[i]:
            matching = (
                node.sensors if fully_inside else plan.leaf_matching(kernel, i, region)
            )
            _serve_leaf(tree, node, matching, now, max_staleness, answer, to_probe)
            continue
        if aggregate_termination and _try_aggregate_termination(
            tree, node, fully_inside, now, max_staleness, answer
        ):
            continue
        start = child_start[i]
        # Children pushed in reverse so the pop order matches the
        # recursive child-list order (preorder parity).
        stack.extend(range(start + child_count[i] - 1, start - 1, -1))


def _scan_empty_cache(
    tree: "COLRTree",
    kernel: "FlatKernel",
    plan: "SpatialPlan",
    region: Region,
    answer: QueryAnswer,
    to_probe: list[int],
) -> None:
    """Fully vectorized scan for trees whose slot caches hold nothing
    (caching disabled, or simply nothing cached yet).

    With no cached readings anywhere, no aggregate termination can fire
    and no leaf can serve from cache, so the whole recursive outcome —
    visit counts, cache consultations, terminals, probe list — is a
    pure function of the classification.  It is computed with array
    operations once and memoized on the plan: a warm repeat costs two
    list copies and three counter bumps.
    """
    memo = plan._empty_scan
    if memo is None:
        labels = plan.labels
        visited = kernel.visited_mask(labels)
        nodes_traversed = int(visited.sum())
        caching = tree.config.caching_enabled
        cache_consults = 0
        if caching and tree.config.aggregate_caching_enabled:
            cache_consults = int(
                (visited & ~kernel.is_leaf & (labels == CONTAINED)).sum()
            )
        terminals: list[TerminalRecord] = []
        probe_ids: list[int] = []
        leaf_accesses = 0
        if isinstance(region, Rect):
            # Rectangular region: the whole leaf stage is a handful of
            # array ops, restricted to the preorder span between the
            # first and last candidate (visited, non-disjoint) leaf so
            # per-query cost scales with the answer's neighbourhood, not
            # the sensor population.  A candidate leaf's matching set is
            # exactly its in-rect sensors — for CONTAINED leaves the
            # rect covers the leaf bbox and hence every sensor, so one
            # point-in-rect test serves both label cases.
            pl = kernel.preorder_leaves
            candidate = visited[pl] & (labels[pl] != DISJOINT)
            cand_pos = np.flatnonzero(candidate)
            if len(cand_pos):
                first = int(cand_pos[0])
                last = int(cand_pos[-1])
                bounds = kernel.pre_leaf_bounds
                blo = int(bounds[first])
                bhi = int(bounds[last + 1])
                x = kernel.pre_sensor_x[blo:bhi]
                y = kernel.pre_sensor_y[blo:bhi]
                selected = (
                    (region.min_x <= x)
                    & (x <= region.max_x)
                    & (region.min_y <= y)
                    & (y <= region.max_y)
                ) & np.repeat(
                    candidate[first : last + 1],
                    kernel.pre_leaf_sizes[first : last + 1],
                )
                probe_ids = kernel.pre_sensor_ids[blo:bhi][selected].tolist()
                counts = np.add.reduceat(
                    selected, bounds[first : last + 1] - blo, dtype=np.int64
                )
                hit = np.flatnonzero(counts > 0)
                matched = counts[hit]
                hit += first
                # Field columns extracted with array indexing, records
                # built by ``tuple.__new__`` via ``_make`` — no
                # Python-level loop.
                terminals = list(
                    map(
                        TerminalRecord._make,
                        zip(
                            kernel._pre_leaf_node_ids[hit].tolist(),
                            kernel._pre_leaf_levels[hit].tolist(),
                            matched.astype(np.float64).tolist(),
                            matched.tolist(),
                            repeat(False),
                        ),
                    )
                )
            leaf_accesses = len(terminals)
        else:
            sensor_ids = kernel.sensor_ids
            visited_list = visited.tolist()
            labels_list = plan.labels_list
            for i in kernel.preorder_leaves.tolist():
                if not visited_list[i]:
                    continue
                label = labels_list[i]
                if label == DISJOINT:
                    continue
                node = kernel.nodes[i]
                if label == CONTAINED:
                    ids = sensor_ids[
                        kernel.leaf_start[i] : kernel.leaf_end[i]
                    ].tolist()
                else:
                    ids = [
                        s.sensor_id for s in plan.leaf_matching(kernel, i, region)
                    ]
                if not ids:
                    continue
                leaf_accesses += 1
                probe_ids.extend(ids)
                terminals.append(
                    TerminalRecord(
                        node_id=node.node_id,
                        level=node.level,
                        target=float(len(ids)),
                        results=len(ids),
                        used_cache=False,
                    )
                )
        if caching:
            cache_consults += leaf_accesses
        memo = (nodes_traversed, cache_consults, tuple(terminals), probe_ids)
        plan._empty_scan = memo
    nodes_traversed, cache_consults, terminals, probe_ids = memo
    answer.stats.nodes_traversed += nodes_traversed
    answer.stats.cached_nodes_accessed += cache_consults
    answer.terminals.extend(terminals)
    to_probe.extend(probe_ids)


# ----------------------------------------------------------------------
# Shared serve logic
# ----------------------------------------------------------------------
def _try_aggregate_termination(
    tree: "COLRTree",
    node: "COLRNode",
    fully_inside: bool,
    now: float,
    max_staleness: float,
    answer: QueryAnswer,
) -> bool:
    """Early termination at a fully covered internal node (Section
    IV-B).  Returns True when the subtree was answered from cache."""
    if not (
        tree.config.caching_enabled
        and tree.config.aggregate_caching_enabled
        and fully_inside
    ):
        return False
    cache = node.agg_cache
    if cache is None:
        return False
    # The consultation itself is the metered cache access: the
    # hierarchical cache pays it at every fully-covered node it
    # meets, which is the extra cache-lookup work Figure 3's
    # nested plot charges it with.
    answer.stats.cached_nodes_accessed += 1
    sketches = cache.usable_sketches(now, max_staleness)
    covered = sum(s.count for s in sketches)
    if covered < node.weight:
        return False
    # Early termination: the whole subtree is answerable from this
    # node's cached aggregates.
    answer.cached_sketches.extend(s.copy() for s in sketches)
    answer.cached_sketch_nodes.extend(node.node_id for _ in sketches)
    answer.stats.slots_combined += len(sketches)
    answer.terminals.append(
        TerminalRecord(
            node_id=node.node_id,
            level=node.level,
            target=float(node.weight),
            results=covered,
            used_cache=True,
        )
    )
    return True


def _serve_leaf(
    tree: "COLRTree",
    leaf: "COLRNode",
    matching: list[Sensor],
    now: float,
    max_staleness: float,
    answer: QueryAnswer,
    to_probe: list[int],
) -> None:
    """Serve a leaf's in-region sensors: cached fresh readings first,
    probes for the rest."""
    if not matching:
        return
    served = 0
    cached_ids: set[int] = set()
    if tree.config.caching_enabled and leaf.leaf_cache is not None:
        answer.stats.cached_nodes_accessed += 1
        answer.stats.readings_scanned += len(leaf.leaf_cache)
        fresh = {
            r.sensor_id: r for r in leaf.leaf_cache.fresh_readings(now, max_staleness)
        }
        for sensor in matching:
            reading = fresh.get(sensor.sensor_id)
            if reading is not None:
                answer.cached_readings.append(reading)
                cached_ids.add(sensor.sensor_id)
                served += 1
        if cached_ids:
            tree.touch_cached(leaf, cached_ids, now)
    probe_ids = [s.sensor_id for s in matching if s.sensor_id not in cached_ids]
    to_probe.extend(probe_ids)
    answer.terminals.append(
        TerminalRecord(
            node_id=leaf.node_id,
            level=leaf.level,
            target=float(len(matching)),
            results=served + len(probe_ids),
            used_cache=bool(cached_ids),
        )
    )
