"""Tree nodes.

A ``COLRNode`` is an R-tree node extended with the COLR-Tree extras:
a slot cache (raw readings at leaves, aggregate sketches at internal
nodes), a *weight* (number of descendant sensors — the ``w_i`` of
Algorithm 1), a flat array of descendant sensor ids so terminal nodes
can draw uniform random sensors in O(sample size), and a lazily
refreshed mean-availability estimate (the ``a_i`` of Algorithm 1).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.slots import LeafSlotCache, SlotCache
from repro.geometry import Rect
from repro.sensors.sensor import Sensor


class COLRNode:
    """One node of a COLR-Tree.

    Nodes are created by the bulk loader (:mod:`repro.core.build`); user
    code interacts with :class:`repro.core.tree.COLRTree` instead.
    """

    __slots__ = (
        "node_id",
        "level",
        "bbox",
        "children",
        "sensors",
        "parent",
        "weight",
        "descendant_ids",
        "leaf_cache",
        "agg_cache",
        "availability",
        "availability_refreshed_at",
    )

    def __init__(
        self,
        node_id: int,
        level: int,
        bbox: Rect,
        children: list["COLRNode"] | None = None,
        sensors: list[Sensor] | None = None,
    ) -> None:
        if (children is None) == (sensors is None):
            raise ValueError("a node is either internal (children) or a leaf (sensors)")
        self.node_id = node_id
        self.level = level
        self.bbox = bbox
        self.children: list[COLRNode] = children if children is not None else []
        self.sensors: list[Sensor] = sensors if sensors is not None else []
        self.parent: COLRNode | None = None
        if sensors is not None and not sensors:
            raise ValueError("a leaf must hold at least one sensor")
        if children is not None and not children:
            raise ValueError("an internal node must have at least one child")
        if self.is_leaf:
            self.weight = len(self.sensors)
            self.descendant_ids = np.array(
                sorted(s.sensor_id for s in self.sensors), dtype=np.int64
            )
        else:
            self.weight = sum(c.weight for c in self.children)
            self.descendant_ids = np.concatenate(
                [c.descendant_ids for c in self.children]
            )
            for child in self.children:
                child.parent = self
        # Slot caches are attached by the tree once Δ is known.
        self.leaf_cache: LeafSlotCache | None = None
        self.agg_cache: SlotCache | None = None
        # Mean historical availability of descendant sensors (a_i).
        self.availability: float = 1.0
        self.availability_refreshed_at: float = -np.inf

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def n_descendants(self) -> int:
        return int(self.descendant_ids.size)

    def iter_subtree(self) -> Iterator["COLRNode"]:
        """Depth-first iteration over this node and every descendant."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def iter_leaves(self) -> Iterator["COLRNode"]:
        """Depth-first iteration over the subtree's leaves."""
        for node in self.iter_subtree():
            if node.is_leaf:
                yield node

    def path_to_root(self) -> Iterator["COLRNode"]:
        """This node, then each ancestor up to (and including) the root."""
        node: COLRNode | None = self
        while node is not None:
            yield node
            node = node.parent

    def height(self) -> int:
        """Longest path from this node down to a leaf (leaf height 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(c.height() for c in self.children)

    # ------------------------------------------------------------------
    # Cache attachment
    # ------------------------------------------------------------------
    def attach_caches(self, slot_seconds: float) -> None:
        """Create the node's slot cache (type depends on leaf-ness)."""
        if self.is_leaf:
            self.leaf_cache = LeafSlotCache(slot_seconds)
        else:
            self.agg_cache = SlotCache(slot_seconds)

    def cached_weight(self, now: float, max_staleness: float) -> int:
        """``|c_i|``: the number of descendant sensors whose data is
        usable from this node's cache for a query at ``now``."""
        if self.is_leaf:
            if self.leaf_cache is None:
                return 0
            return len(self.leaf_cache.fresh_sensor_ids(now, max_staleness))
        if self.agg_cache is None:
            return 0
        return self.agg_cache.usable_weight(now, max_staleness)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.is_leaf else f"internal[{len(self.children)}]"
        return f"COLRNode(id={self.node_id}, level={self.level}, {kind}, w={self.weight})"
