"""Bulk loading: k-means-clustered hierarchy construction.

Section III-C: sensor locations rarely change, so the index is built in
batch "by iteratively computing sensor clusters with a k-means algorithm
to construct a hierarchy" and periodically rebuilt.  We implement that
as recursive bisecting k-means: each internal node partitions its
sensors into ``fanout`` spatial clusters (Lloyd's algorithm with
k-means++ seeding), recursing until a partition fits in a leaf.  The
recursion yields exactly the bottom-up containment hierarchy the paper's
query processing relies on, with near-uniform per-level weights (the
uniformity the Figure 3 analysis verifies).

Two alternative bulk loaders are provided for ablation benchmarks:
an STR (sort-tile-recursive) packer and a Hilbert-curve packer — the
Kamel–Faloutsos packed-R-tree lineage the paper cites as its other
inspiration.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.node import COLRNode
from repro.geometry import Rect
from repro.sensors.sensor import Sensor


def kmeans_cluster(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iters: int = 25,
) -> np.ndarray:
    """Cluster ``points`` (n, 2) into up to ``k`` groups with Lloyd's
    algorithm and k-means++ seeding.  Returns integer labels in
    ``[0, k)``; some labels may be unused when points coincide.
    """
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = min(k, n)
    if k == 1:
        return np.zeros(n, dtype=np.int64)
    centers = _kmeans_plus_plus(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iters):
        # Assign each point to its nearest center.
        d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = d2.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        # Recompute centers; re-seed empty clusters at the farthest point.
        for j in range(k):
            members = points[labels == j]
            if members.shape[0] > 0:
                centers[j] = members.mean(axis=0)
            else:
                farthest = d2.min(axis=1).argmax()
                centers[j] = points[farthest]
    return labels


def _kmeans_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers proportionally to
    squared distance from the chosen set."""
    n = points.shape[0]
    centers = np.empty((k, 2), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_d2 = ((points - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_d2.sum()
        if total <= 0.0:
            # All remaining points coincide with a center; any choice works.
            centers[j:] = points[int(rng.integers(n))]
            break
        probs = closest_d2 / total
        choice = int(rng.choice(n, p=probs))
        centers[j] = points[choice]
        d2 = ((points - centers[j]) ** 2).sum(axis=1)
        closest_d2 = np.minimum(closest_d2, d2)
    return centers


def build_colr_tree(
    sensors: Sequence[Sensor],
    fanout: int,
    leaf_capacity: int,
    seed: int = 0,
    method: str = "kmeans",
) -> COLRNode:
    """Build the node hierarchy over a sensor population.

    Parameters
    ----------
    sensors:
        The population; must be non-empty.
    fanout:
        Children per internal node (the clustering ``k``).
    leaf_capacity:
        Maximum sensors per leaf.
    seed:
        RNG seed for clustering.
    method:
        ``"kmeans"`` (the paper's builder) or ``"str"`` (packed R-tree
        ablation).

    Returns the root :class:`COLRNode`; levels are assigned root = 0.
    """
    if not sensors:
        raise ValueError("cannot build a tree over zero sensors")
    if method not in ("kmeans", "str", "hilbert"):
        raise ValueError(f"unknown build method {method!r}")
    rng = np.random.default_rng(seed)
    ids = _IdCounter()
    if method == "kmeans":
        root = _build_kmeans(list(sensors), fanout, leaf_capacity, rng, ids)
    elif method == "str":
        root = _build_str(list(sensors), fanout, leaf_capacity, ids)
    else:
        root = _build_hilbert(list(sensors), fanout, leaf_capacity, ids)
    _assign_levels(root)
    return root


class _IdCounter:
    def __init__(self) -> None:
        self.next = 0

    def take(self) -> int:
        value = self.next
        self.next += 1
        return value


def _locations(sensors: Sequence[Sensor]) -> np.ndarray:
    return np.array([[s.location.x, s.location.y] for s in sensors], dtype=np.float64)


def _leaf(sensors: list[Sensor], ids: _IdCounter) -> COLRNode:
    bbox = Rect.from_points(s.location for s in sensors)
    return COLRNode(node_id=ids.take(), level=0, bbox=bbox, sensors=sensors)


def _build_kmeans(
    sensors: list[Sensor],
    fanout: int,
    leaf_capacity: int,
    rng: np.random.Generator,
    ids: _IdCounter,
) -> COLRNode:
    if len(sensors) <= leaf_capacity:
        return _leaf(sensors, ids)
    points = _locations(sensors)
    labels = kmeans_cluster(points, fanout, rng)
    groups = [
        [sensors[i] for i in np.flatnonzero(labels == j)]
        for j in range(labels.max() + 1)
    ]
    groups = [g for g in groups if g]
    if len(groups) <= 1:
        # Coincident points defeat clustering; split evenly instead so
        # recursion always terminates.
        half = max(1, len(sensors) // 2)
        groups = [sensors[:half], sensors[half:]]
        groups = [g for g in groups if g]
        if len(groups) <= 1:
            return _leaf(sensors, ids)
    children = [_build_kmeans(g, fanout, leaf_capacity, rng, ids) for g in groups]
    bbox = Rect.union_of([c.bbox for c in children])
    return COLRNode(node_id=ids.take(), level=0, bbox=bbox, children=children)


def _build_str(
    sensors: list[Sensor], fanout: int, leaf_capacity: int, ids: _IdCounter
) -> COLRNode:
    """Sort-tile-recursive packing: sort by x into vertical strips, then
    each strip by y into tiles of ``leaf_capacity`` sensors."""
    ordered = sorted(sensors, key=lambda s: (s.location.x, s.location.y))
    n = len(ordered)
    n_leaves = math.ceil(n / leaf_capacity)
    n_strips = max(1, math.ceil(math.sqrt(n_leaves)))
    strip_size = math.ceil(n / n_strips)
    leaves: list[COLRNode] = []
    for i in range(0, n, strip_size):
        strip = sorted(ordered[i : i + strip_size], key=lambda s: (s.location.y, s.location.x))
        for j in range(0, len(strip), leaf_capacity):
            leaves.append(_leaf(strip[j : j + leaf_capacity], ids))
    return _pack_upward(leaves, fanout, ids)


def _build_hilbert(
    sensors: list[Sensor], fanout: int, leaf_capacity: int, ids: _IdCounter
) -> COLRNode:
    """Hilbert-curve packing: sort sensors by the Hilbert index of
    their (normalized) location and pack consecutive runs into leaves.
    The space-filling curve preserves locality in both axes at once,
    which often yields tighter leaves than STR's strip tiling."""
    xs = np.array([s.location.x for s in sensors])
    ys = np.array([s.location.y for s in sensors])
    span_x = max(float(xs.max() - xs.min()), 1e-12)
    span_y = max(float(ys.max() - ys.min()), 1e-12)
    order = 16  # 2^16 cells per axis: ample resolution for any fleet
    side = (1 << order) - 1
    gx = np.clip(((xs - xs.min()) / span_x * side).astype(np.int64), 0, side)
    gy = np.clip(((ys - ys.min()) / span_y * side).astype(np.int64), 0, side)
    keys = [
        (hilbert_index(order, int(cx), int(cy)), i)
        for i, (cx, cy) in enumerate(zip(gx, gy))
    ]
    keys.sort()
    ordered = [sensors[i] for _, i in keys]
    leaves = [
        _leaf(ordered[i : i + leaf_capacity], ids)
        for i in range(0, len(ordered), leaf_capacity)
    ]
    return _pack_upward(leaves, fanout, ids)


def hilbert_index(order: int, x: int, y: int) -> int:
    """Distance along the order-``order`` Hilbert curve of cell (x, y).

    The classic bit-twiddling conversion (Lam & Shapiro): walk the
    quadrant decomposition from the top, rotating/reflecting the frame.
    """
    if order < 1:
        raise ValueError("order must be positive")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"cell ({x}, {y}) outside the order-{order} grid")
    rx = ry = 0
    d = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


def _pack_upward(nodes: list[COLRNode], fanout: int, ids: _IdCounter) -> COLRNode:
    """Group a node list into parents of ``fanout`` until one remains."""
    while len(nodes) > 1:
        parents: list[COLRNode] = []
        ordered = sorted(nodes, key=lambda nd: (nd.bbox.center.x, nd.bbox.center.y))
        for i in range(0, len(ordered), fanout):
            group = ordered[i : i + fanout]
            bbox = Rect.union_of([c.bbox for c in group])
            parents.append(COLRNode(node_id=ids.take(), level=0, bbox=bbox, children=group))
        nodes = parents
    return nodes[0]


def _assign_levels(root: COLRNode) -> None:
    """Number levels from the root downward (root = level 0, as in the
    paper's footnote 3)."""
    queue: list[tuple[COLRNode, int]] = [(root, 0)]
    while queue:
        node, level = queue.pop()
        node.level = level
        for child in node.children:
            queue.append((child, level + 1))
