"""Sliding slot caches (Section IV-A / IV-B).

A slot cache partitions cached data by **expiry instant**: slot ``s``
holds the readings (or their partial aggregate) whose expiry falls in
``[s*Δ, (s+1)*Δ)``.  Slot ids are *absolute* integers computed from a
shared epoch, which gives the paper's "globally aligned slotting scheme"
for free: every cache in the tree agrees on which slot a reading belongs
to, so per-slot aggregation across levels is well defined and the set of
usable slots for a query can be computed once, before traversal.

Sliding is implicit in the absolute-id scheme: as simulated time passes
the window of live slot ids moves forward, and ids behind the window
(all of whose entries have expired) are pruned lazily.

Freshness note
--------------
The paper's queries bound reading *timestamps* (``S.time BETWEEN
now()-w AND now()``) while slots partition by *expiry*.  With
heterogeneous per-sensor lifetimes an expiry slot does not pin down
timestamps, so every slot additionally tracks its oldest constituent
timestamp; a cached aggregate is used only when that oldest timestamp
provably satisfies the query's freshness bound.  For a fleet of sensors
with similar lifetimes this reduces to the paper's "slots strictly
younger than the query slot" rule, and it is never less correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.core.aggregates import AggregateSketch
from repro.sensors.sensor import Reading


def slot_of(instant: float, slot_seconds: float) -> int:
    """Absolute slot id of an instant: slot ``s`` covers
    ``[s*Δ, (s+1)*Δ)``."""
    return int(math.floor(instant / slot_seconds))


def usable_slot_range(now: float, slot_seconds: float) -> tuple[int, int | None]:
    """Usable slot ids as ``(low, high)`` with an inclusive lower bound
    and an *open-ended* upper bound.

    Slots strictly after the one containing ``now`` hold only unexpired
    entries.  The boundary slot (``slot_of(now)``) mixes expired and
    live entries and therefore needs per-entry checks (leaf level) or is
    skipped (aggregate level).  The upper end is genuinely unbounded —
    any slot id at or above ``low`` is usable — so ``high`` is ``None``
    rather than a fake "practical infinity" (the old ``low + 2**31``
    sentinel silently excluded far-future expiries and broke integer
    comparisons near the sentinel).  Use :func:`slot_usable` for
    membership tests.
    """
    low = slot_of(now, slot_seconds) + 1
    return (low, None)


def slot_usable(slot: int, now: float, slot_seconds: float) -> bool:
    """Whether a slot id is usable without entry inspection at ``now``
    (it lies strictly after the boundary slot)."""
    return slot >= slot_of(now, slot_seconds) + 1


@dataclass(frozen=True, slots=True)
class CachedReading:
    """A raw reading held in a leaf slot cache, with LRF bookkeeping."""

    reading: Reading
    fetched_at: float


class LeafSlotCache:
    """Raw-reading cache of a leaf node.

    Holds at most one (the newest) reading per sensor, bucketed into
    expiry slots.  Exposes the operations the tree needs: insert with
    replacement (returning the displaced reading so ancestors can
    decrement), per-query fresh-reading lookup, pruning of expired
    slots, and least-recently-fetched eviction within the oldest slot.
    """

    def __init__(self, slot_seconds: float) -> None:
        if slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        self.slot_seconds = float(slot_seconds)
        self._by_sensor: dict[int, CachedReading] = {}
        self._slots: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._by_sensor)

    def __contains__(self, sensor_id: int) -> bool:
        return sensor_id in self._by_sensor

    def slot_ids(self) -> list[int]:
        """Occupied slot ids in ascending order."""
        return sorted(self._slots)

    def get(self, sensor_id: int) -> CachedReading | None:
        return self._by_sensor.get(sensor_id)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, reading: Reading, fetched_at: float) -> Reading | None:
        """Cache a reading; returns the displaced older reading, if any.

        A sensor keeps only its newest reading: an *update* displaces
        the previous value, which the caller must decrement out of the
        ancestor aggregates (Section IV-B).
        """
        displaced = self.remove(reading.sensor_id)
        slot = slot_of(reading.expires_at, self.slot_seconds)
        self._by_sensor[reading.sensor_id] = CachedReading(reading, fetched_at)
        self._slots.setdefault(slot, set()).add(reading.sensor_id)
        return displaced

    def remove(self, sensor_id: int) -> Reading | None:
        """Drop one sensor's cached reading; returns it if present."""
        cached = self._by_sensor.pop(sensor_id, None)
        if cached is None:
            return None
        slot = slot_of(cached.reading.expires_at, self.slot_seconds)
        members = self._slots.get(slot)
        if members is not None:
            members.discard(sensor_id)
            if not members:
                del self._slots[slot]
        return cached.reading

    def prune_expired(self, now: float) -> list[Reading]:
        """Drop all readings in slots entirely behind ``now``; returns
        the dropped readings (ancestors must forget their aggregates —
        in practice the ancestors' same-numbered slots are pruned too,
        so no decrement is needed, but the list supports accounting)."""
        boundary = slot_of(now, self.slot_seconds)
        dropped: list[Reading] = []
        for slot in [s for s in self._slots if s < boundary]:
            for sensor_id in list(self._slots[slot]):
                cached = self._by_sensor.pop(sensor_id, None)
                if cached is not None:
                    dropped.append(cached.reading)
            del self._slots[slot]
        return dropped

    def eviction_candidates(self) -> list[tuple[float, int]]:
        """``(fetched_at, sensor_id)`` pairs in the oldest occupied slot,
        least recently fetched first — the paper's replacement order."""
        if not self._slots:
            return []
        oldest = min(self._slots)
        pairs = [
            (self._by_sensor[sid].fetched_at, sid)
            for sid in self._slots[oldest]
        ]
        pairs.sort()
        return pairs

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def fresh_readings(self, now: float, max_staleness: float) -> list[Reading]:
        """All cached readings that are unexpired and within the
        staleness bound at ``now``.

        Entries in slots strictly ahead of ``now`` are unexpired by
        construction; entries in the boundary slot are inspected
        individually, per the paper's lookup rule.
        """
        boundary = slot_of(now, self.slot_seconds)
        out: list[Reading] = []
        for slot, sensor_ids in self._slots.items():
            if slot < boundary:
                continue
            inspect = slot == boundary
            for sensor_id in sensor_ids:
                reading = self._by_sensor[sensor_id].reading
                if inspect and not reading.is_valid_at(now):
                    continue
                if now - reading.timestamp <= max_staleness:
                    out.append(reading)
        return out

    def fresh_sensor_ids(self, now: float, max_staleness: float) -> set[int]:
        """Ids of sensors with a usable cached reading at ``now``."""
        return {r.sensor_id for r in self.fresh_readings(now, max_staleness)}

    def all_readings(self) -> Iterator[Reading]:
        for cached in self._by_sensor.values():
            yield cached.reading

    def entries(self) -> Iterator[CachedReading]:
        """Every cached entry with its fetch stamp (checkpoint export)."""
        yield from self._by_sensor.values()


class SlotCache:
    """Aggregate slot cache of an internal node.

    One :class:`AggregateSketch` per occupied absolute slot id.  The
    sketches are maintained incrementally by the tree on insert /
    update / evict, and recomputed from the children's same-numbered
    slots when a removal dirties min/max.
    """

    def __init__(self, slot_seconds: float) -> None:
        if slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        self.slot_seconds = float(slot_seconds)
        self._slots: dict[int, AggregateSketch] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def slot_ids(self) -> list[int]:
        return sorted(self._slots)

    def sketch(self, slot: int) -> AggregateSketch | None:
        return self._slots.get(slot)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, slot: int, value: float, timestamp: float) -> None:
        self._slots.setdefault(slot, AggregateSketch()).add(value, timestamp)

    def add_sketch(self, slot: int, delta: AggregateSketch) -> None:
        """Fold a pre-merged delta sketch into a slot in one operation
        (the batched-ingestion analogue of repeated :meth:`add` calls:
        final state is identical, cost is one merge per slot)."""
        if delta.is_empty:
            return
        self._slots.setdefault(slot, AggregateSketch()).merge(delta)

    def remove_bulk(self, slot: int, values: list[float]) -> bool:
        """Decrement many values out of a slot as one grouped delta.

        Equivalent in final state to calling :meth:`remove` once per
        value: count/sum decrement exactly, and the slot goes dirty when
        any removed value may have defined the current min/max (min/max
        cannot tighten between grouped removals, so checking each value
        against the pre-removal extremes matches the sequential
        outcome).  Returns True when the slot needs recomputation.
        """
        sketch = self._slots.get(slot)
        if sketch is None:
            raise KeyError(f"slot {slot} has no cached aggregate")
        if len(values) > sketch.count:
            raise ValueError("cannot remove more values than the sketch holds")
        dirty = any(v <= sketch.minimum or v >= sketch.maximum for v in values)
        sketch.count -= len(values)
        sketch.total -= sum(values)
        if sketch.count == 0:
            del self._slots[slot]
            return False
        if dirty:
            sketch.minmax_dirty = True
        return sketch.minmax_dirty

    def remove(self, slot: int, value: float) -> bool:
        """Decrement a value out of a slot.  Returns True when the slot's
        min/max became dirty and needs recomputation from children."""
        sketch = self._slots.get(slot)
        if sketch is None:
            raise KeyError(f"slot {slot} has no cached aggregate")
        sketch.remove(value)
        if sketch.is_empty:
            del self._slots[slot]
            return False
        return sketch.minmax_dirty

    def replace(self, slot: int, sketch: AggregateSketch) -> None:
        """Overwrite a slot's sketch (recomputation path)."""
        if sketch.is_empty:
            self._slots.pop(slot, None)
        else:
            self._slots[slot] = sketch

    def prune_expired(self, now: float) -> int:
        """Drop aggregates for slots entirely behind ``now``; returns
        the number of slots dropped."""
        boundary = slot_of(now, self.slot_seconds)
        stale = [s for s in self._slots if s < boundary]
        for slot in stale:
            del self._slots[slot]
        return len(stale)

    def clear(self) -> None:
        self._slots.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def usable_sketches(self, now: float, max_staleness: float) -> list[AggregateSketch]:
        """Sketches provably valid and fresh for a query at ``now``.

        A sketch qualifies when its slot lies strictly ahead of the slot
        containing ``now`` (all entries unexpired) and its oldest
        constituent timestamp meets the staleness bound.
        """
        boundary = slot_of(now, self.slot_seconds)
        freshness_floor = now - max_staleness
        return [
            sketch
            for slot, sketch in self._slots.items()
            if slot > boundary and sketch.oldest_timestamp >= freshness_floor
        ]

    def usable_weight(self, now: float, max_staleness: float) -> int:
        """Total constituent-reading count across usable sketches — the
        ``|c_i|`` term of Algorithm 1 and the cache-sufficiency weight of
        the sensor-selection access method (Section VI-A)."""
        return sum(s.count for s in self.usable_sketches(now, max_staleness))

    def total_weight(self) -> int:
        """Constituent count over all slots, fresh or not."""
        return sum(s.count for s in self._slots.values())
