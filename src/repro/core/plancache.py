"""The spatial plan cache.

A portal's map viewports repeat heavily — panning back, zoom toggles,
dashboards polling a fixed region — and the spatial half of a query
plan (which nodes are disjoint / partial / contained, which sensors of
a partial leaf are inside the region, the overlap share weights) is a
pure function of (region, tree structure).  Since the structure is
frozen at bulk load, those results are valid *indefinitely* and can be
memoized: only the temporal side (slot-cache usability, freshness)
must be re-evaluated per query.

``SpatialPlanCache`` is a small LRU keyed by ``(region fingerprint,
terminal_level)`` holding :class:`SpatialPlan` entries.  A plan carries
the node classification eagerly and materializes the more expensive
derived artifacts (overlap fractions, per-leaf membership, the fully
vectorized empty-cache scan) lazily on first use, so a plan only ever
pays for what its queries actually touch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

import numpy as np

from repro.core.flat import FlatKernel
from repro.geometry import Polygon, Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.lookup import Region
    from repro.sensors.sensor import Sensor


def region_fingerprint(region: "Region") -> Hashable | None:
    """A hashable identity for a query region, or ``None`` when the
    region type offers no stable fingerprint (then plans are not
    cached — correctness never depends on the cache)."""
    if isinstance(region, Rect):
        return ("rect", region.min_x, region.min_y, region.max_x, region.max_y)
    if isinstance(region, Polygon):
        return ("poly", tuple((v.x, v.y) for v in region.vertices))
    return None


@dataclass
class SpatialPlan:
    """Memoized spatial artifacts of one (region, tree) pair."""

    labels: np.ndarray
    n_disjoint: int
    _labels_list: list[int] | None = field(default=None, repr=False)
    _overlaps: np.ndarray | None = field(default=None, repr=False)
    _overlaps_list: list[float] | None = field(default=None, repr=False)
    _leaf_matching: dict[int, list["Sensor"]] = field(default_factory=dict, repr=False)
    _empty_scan: Any = field(default=None, repr=False)
    _relevant_count: int | None = field(default=None, repr=False)

    @property
    def labels_list(self) -> list[int]:
        """Labels as a plain list: Python-list scalar indexing is several
        times cheaper than numpy scalar indexing in the per-node loops."""
        if self._labels_list is None:
            self._labels_list = self.labels.tolist()
        return self._labels_list

    def overlaps(self, kernel: FlatKernel, region: "Region") -> list[float]:
        """Per-node ``Overlap(BB(i), A)``, vectorized then memoized."""
        if self._overlaps_list is None:
            self._overlaps = kernel.overlap_fractions(region)
            self._overlaps_list = self._overlaps.tolist()
        return self._overlaps_list

    def leaf_matching(
        self, kernel: FlatKernel, i: int, region: "Region"
    ) -> list["Sensor"]:
        """In-region sensors of (partial) leaf ``i``, memoized."""
        got = self._leaf_matching.get(i)
        if got is None:
            got = kernel.leaf_matching(i, region)
            self._leaf_matching[i] = got
        return got


class SpatialPlanCache:
    """LRU cache of :class:`SpatialPlan` entries.

    Entries never expire on their own: the spatial structure they
    describe is immutable after bulk load, so only capacity evicts.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, SpatialPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> SpatialPlan | None:
        plan = self._entries.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: Hashable, plan: SpatialPlan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
