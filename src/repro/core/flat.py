"""The flattened struct-of-arrays traversal kernel.

A built COLR-Tree never changes shape: bulk load fixes every bounding
box, weight, child list and leaf membership, and only the *temporal*
state (slot caches) evolves afterwards.  Both query paths nevertheless
re-derive the same spatial facts on every query by walking the
pointer-based hierarchy and calling ``intersects_rect`` /
``contains_rect`` / ``overlap_fraction`` node by node in Python.

``FlatKernel`` freezes the static half of the index into numpy arrays —
per-node bbox extents, weight, level, CSR child offsets, and per-leaf
sensor-id/coordinate spans — so a query can *classify* every node
against its region (DISJOINT / PARTIAL / CONTAINED) in a handful of
vectorized operations, and compute every node's ``Overlap(BB(i), A)``
share weight in one shot.  The classification is exactly the set of
predicate results the recursive traversal would have computed, so the
query paths consume it without any behavioural change: same
``QueryAnswer``, same probe sets, same ``TerminalRecord``s, same
traversal counters.

Layout
------
Nodes are stored in breadth-first order, which yields two free
invariants the kernel leans on:

* nodes of one level are contiguous (``level_starts``), so
  classification can run level by level with pure array indexing, and
* the children of any node are contiguous (``child_start`` /
  ``child_count``) *in child-list order*, so CSR traversal reproduces
  the recursive visit order exactly.

``preorder_rank`` additionally records each node's position in the
depth-first preorder the recursive query paths use, so fully vectorized
scans can emit terminals in the legacy order without walking pointers.

Cache-conscious tiling
----------------------
On large fleets the kernel's coordinate arrays outgrow the CPU caches:
a 40k-sensor tree carries ~180 KB per coordinate array, so one
monolithic classification streams ~1 MB through the vectorized
three-way test and every pass re-fetches from L3/DRAM.  Setting
``tile_nodes`` (or :attr:`COLRTreeConfig.classify_tile_nodes`) splits
the level-contiguous node range into fixed-size tiles processed
independently, so each tile's working set (four coordinate slices, the
mask temporaries and the label slice) stays resident in L2 while the
interval arithmetic runs — the shape "Fast Query Processing by
Distributing an Index over CPU Caches" shows beating both a monolithic
index and naive threading.  Tiling is elementwise re-bracketing only:
the labels are bit-identical to the monolithic pass (gated by
``tests/property/test_tiled_classify_props.py``).
``auto_tile_nodes()`` sizes tiles from ``/sys`` cache info with a safe
default when the hierarchy is unreadable.

The static arrays can also be exported to (and adopted from) shared
memory — see :meth:`FlatKernel.shared_arrays` /
:meth:`FlatKernel.adopt_arrays`; the parallel execution layer
(:mod:`repro.parallel`) publishes them once per index build so worker
processes map the spatial half of every shard zero-copy.
"""

from __future__ import annotations

import functools
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.region import Region, region_bbox
from repro.geometry import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import COLRNode
    from repro.sensors.sensor import Sensor

# Classification labels.  Kept as small ints so a whole tree's labels
# fit in one int8 array.
DISJOINT = 0
PARTIAL = 1
CONTAINED = 2

# The static arrays that define the spatial half of a kernel.  They are
# frozen at build time, so they can be published to shared memory once
# and mapped read-only by any number of worker processes; everything
# else on the kernel (node references, plain-list mirrors) is cheap
# process-local state derived from them.
SHARED_ARRAY_FIELDS = (
    "min_x",
    "min_y",
    "max_x",
    "max_y",
    "weight",
    "level",
    "is_leaf",
    "parent",
    "child_start",
    "child_count",
    "level_starts",
    "leaf_start",
    "leaf_end",
    "sensor_ids",
    "sensor_x",
    "sensor_y",
    "preorder_rank",
    "preorder_leaves",
    "pre_leaf_sizes",
    "pre_leaf_bounds",
    "pre_leaf_starts",
    "pre_sensor_perm",
    "pre_sensor_ids",
    "pre_sensor_x",
    "pre_sensor_y",
    "_pre_leaf_node_ids",
    "_pre_leaf_levels",
)

# Classification working set per node: four float64 coordinate reads,
# the int8 label write, and the boolean mask temporaries the vectorized
# three-way test materializes.  Used to convert a cache size into a
# tile length.
_CLASSIFY_BYTES_PER_NODE = 4 * 8 + 1 + 6 * 1

# Fallback tile length when the cache hierarchy is unreadable: 16k
# nodes ≈ 640 KB working set, inside any L2 this code will plausibly
# meet, and large enough that the per-tile Python overhead stays
# negligible.
DEFAULT_TILE_NODES = 16_384


@functools.lru_cache(maxsize=1)
def l2_cache_bytes() -> int | None:
    """Per-core L2 size from ``/sys``, or ``None`` when unreadable.

    ``index2`` is the unified L2 on every Linux topology this targets;
    sizes are reported like ``"2048K"``.
    """
    path = Path("/sys/devices/system/cpu/cpu0/cache/index2/size")
    try:
        text = path.read_text().strip()
    except OSError:
        return None
    try:
        if text.endswith(("K", "k")):
            return int(text[:-1]) * 1024
        if text.endswith(("M", "m")):
            return int(text[:-1]) * 1024 * 1024
        return int(text)
    except ValueError:
        return None


def auto_tile_nodes(cache_bytes: int | None = None) -> int:
    """A tile length whose classification working set fits in L2.

    Targets half the cache (the other half keeps the query's unrelated
    hot state — plan cache entries, slot-cache dictionaries — from
    being evicted by the scan), rounded down to a multiple of 1024 so
    tile boundaries stay allocator-friendly.  Falls back to
    :data:`DEFAULT_TILE_NODES` when ``/sys`` offers no cache info.
    """
    if cache_bytes is None:
        cache_bytes = l2_cache_bytes()
    if cache_bytes is None or cache_bytes <= 0:
        return DEFAULT_TILE_NODES
    nodes = (cache_bytes // 2) // _CLASSIFY_BYTES_PER_NODE
    return max(1024, (nodes // 1024) * 1024)


class FlatKernel:
    """Immutable struct-of-arrays snapshot of a built hierarchy."""

    __slots__ = (
        "n_nodes",
        "tile_nodes",
        "nodes",
        "index_of",
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "weight",
        "level",
        "is_leaf",
        "parent",
        "child_start",
        "child_count",
        "level_starts",
        "leaf_start",
        "leaf_end",
        "sensor_ids",
        "sensor_x",
        "sensor_y",
        "preorder_rank",
        "preorder_leaves",
        "pre_leaf_sizes",
        "pre_leaf_bounds",
        "pre_leaf_starts",
        "pre_sensor_perm",
        "pre_sensor_ids",
        "pre_sensor_x",
        "pre_sensor_y",
        "_pre_leaf_node_ids",
        "_pre_leaf_levels",
        "_child_start_list",
        "_child_count_list",
        "_is_leaf_list",
    )

    def __init__(self, root: "COLRNode", tile_nodes: int | None = None) -> None:
        """``tile_nodes`` switches classification to the cache-resident
        tiled pass (``None`` keeps the monolithic pass; labels are
        bit-identical either way)."""
        if tile_nodes is not None and tile_nodes < 1:
            raise ValueError("tile_nodes must be positive or None")
        self.tile_nodes = tile_nodes
        order: list["COLRNode"] = []
        queue: deque["COLRNode"] = deque([root])
        while queue:
            node = queue.popleft()
            order.append(node)
            queue.extend(node.children)
        n = len(order)
        self.n_nodes = n
        self.nodes: list["COLRNode"] = order
        self.index_of: dict[int, int] = {
            node.node_id: i for i, node in enumerate(order)
        }

        self.min_x = np.array([nd.bbox.min_x for nd in order], dtype=np.float64)
        self.min_y = np.array([nd.bbox.min_y for nd in order], dtype=np.float64)
        self.max_x = np.array([nd.bbox.max_x for nd in order], dtype=np.float64)
        self.max_y = np.array([nd.bbox.max_y for nd in order], dtype=np.float64)
        self.weight = np.array([nd.weight for nd in order], dtype=np.int64)
        self.level = np.array([nd.level for nd in order], dtype=np.int32)
        self.is_leaf = np.array([nd.is_leaf for nd in order], dtype=bool)
        self.parent = np.array(
            [
                self.index_of[nd.parent.node_id] if nd.parent is not None else -1
                for nd in order
            ],
            dtype=np.int64,
        )

        # CSR child offsets.  BFS order makes each node's children a
        # contiguous run, already in child-list order.
        child_start = np.zeros(n, dtype=np.int64)
        child_count = np.zeros(n, dtype=np.int64)
        for i, nd in enumerate(order):
            if nd.children:
                child_start[i] = self.index_of[nd.children[0].node_id]
                child_count[i] = len(nd.children)
        self.child_start = child_start
        self.child_count = child_count

        # Level boundaries: nodes are level-sorted by construction.
        levels = self.level
        max_level = int(levels.max()) if n else 0
        starts = np.searchsorted(levels, np.arange(max_level + 2))
        self.level_starts = starts  # level l occupies [starts[l], starts[l + 1])

        # Per-leaf sensor spans, in ``leaf.sensors`` order (the order
        # the recursive leaf lookup iterates, which fixes probe order).
        leaf_start = np.zeros(n, dtype=np.int64)
        leaf_end = np.zeros(n, dtype=np.int64)
        ids: list[int] = []
        xs: list[float] = []
        ys: list[float] = []
        for i, nd in enumerate(order):
            if not nd.is_leaf:
                continue
            leaf_start[i] = len(ids)
            for sensor in nd.sensors:
                ids.append(sensor.sensor_id)
                xs.append(sensor.location.x)
                ys.append(sensor.location.y)
            leaf_end[i] = len(ids)
        self.leaf_start = leaf_start
        self.leaf_end = leaf_end
        self.sensor_ids = np.array(ids, dtype=np.int64)
        self.sensor_x = np.array(xs, dtype=np.float64)
        self.sensor_y = np.array(ys, dtype=np.float64)

        # Depth-first preorder ranks (the recursive visit order).
        rank = np.zeros(n, dtype=np.int64)
        stack = [0]
        counter = 0
        while stack:
            i = stack.pop()
            rank[i] = counter
            counter += 1
            start = int(child_start[i])
            cnt = int(child_count[i])
            if cnt:
                stack.extend(range(start + cnt - 1, start - 1, -1))
        self.preorder_rank = rank
        leaf_indices = np.flatnonzero(self.is_leaf)
        self.preorder_leaves = leaf_indices[np.argsort(rank[leaf_indices])]

        # Sensor arrays re-ordered to preorder-leaf order, so a fully
        # vectorized scan can emit probe ids in the recursive visit
        # order with one boolean gather instead of a per-leaf loop.
        pl = self.preorder_leaves
        sizes = leaf_end[pl] - leaf_start[pl]
        bounds = np.zeros(len(pl) + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])
        total = int(bounds[-1])
        # Position of each preorder-ordered sensor in the global arrays:
        # each segment [bounds[k], bounds[k+1]) maps to the global span
        # [leaf_start[pl[k]], leaf_end[pl[k]]).
        within = np.arange(total, dtype=np.int64) - np.repeat(bounds[:-1], sizes)
        perm = np.repeat(leaf_start[pl], sizes) + within
        self.pre_leaf_sizes = sizes
        self.pre_leaf_bounds = bounds
        # Contiguous copy of the segment starts for ``np.add.reduceat``.
        self.pre_leaf_starts = np.ascontiguousarray(bounds[:-1])
        self.pre_sensor_perm = perm
        self.pre_sensor_ids = self.sensor_ids[perm]
        self.pre_sensor_x = self.sensor_x[perm]
        self.pre_sensor_y = self.sensor_y[perm]
        self._pre_leaf_node_ids = np.array(
            [order[i].node_id for i in pl.tolist()], dtype=np.int64
        )
        self._pre_leaf_levels = np.array(
            [order[i].level for i in pl.tolist()], dtype=np.int64
        )

        # Plain-list mirrors for the per-node traversal hot loop (Python
        # list indexing is several times cheaper than numpy scalar
        # indexing).
        self._child_start_list = child_start.tolist()
        self._child_count_list = child_count.tolist()
        self._is_leaf_list = self.is_leaf.tolist()

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, region: Region) -> np.ndarray:
        """Label every node DISJOINT / PARTIAL / CONTAINED against
        ``region``.

        For rectangular regions the three-way test is computed with
        pure interval arithmetic (exact) — over all nodes at once, or
        tile by tile when :attr:`tile_nodes` is set (the tiled pass
        re-brackets the same elementwise operations, so the labels are
        bit-identical while each tile's working set stays L2-resident).
        For polygonal (or other) regions, a vectorized bounding-box pass
        first settles every node the bbox can settle, then the exact
        region predicates run level by level on the undecided frontier
        only: children of DISJOINT / CONTAINED nodes inherit the
        parent's label (sound because a child's bbox lies inside its
        parent's), so exact tests are paid only where the region
        boundary actually passes.
        """
        if isinstance(region, Rect):
            return self._classify_rect(region)
        return self._classify_generic(region)

    def _tile_ranges(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """``[lo, hi)`` split into ``tile_nodes``-sized chunks (one
        chunk when tiling is off or the range already fits)."""
        tile = self.tile_nodes
        if tile is None or hi - lo <= tile:
            return [(lo, hi)]
        return [(t, min(t + tile, hi)) for t in range(lo, hi, tile)]

    def _classify_rect(self, r: Rect) -> np.ndarray:
        labels = np.full(self.n_nodes, PARTIAL, dtype=np.int8)
        for lo, hi in self._tile_ranges(0, self.n_nodes):
            min_x = self.min_x[lo:hi]
            min_y = self.min_y[lo:hi]
            max_x = self.max_x[lo:hi]
            max_y = self.max_y[lo:hi]
            disjoint = (
                (min_x > r.max_x)
                | (max_x < r.min_x)
                | (min_y > r.max_y)
                | (max_y < r.min_y)
            )
            contained = (
                (r.min_x <= min_x)
                & (max_x <= r.max_x)
                & (r.min_y <= min_y)
                & (max_y <= r.max_y)
            )
            seg = labels[lo:hi]
            seg[contained] = CONTAINED
            seg[disjoint] = DISJOINT
        return labels

    def _classify_generic(self, region: Region) -> np.ndarray:
        qb = region_bbox(region)
        # Bbox screens, matching the early-outs of the exact predicates:
        # bbox-disjoint nodes cannot intersect, and a node whose bbox is
        # not fully inside the region's bbox cannot be contained.  The
        # screen is computed tile by tile so each chunk of the SoA
        # arrays stays cache-resident; the result is elementwise, so the
        # labels match the monolithic pass exactly.
        bbox_disjoint = np.empty(self.n_nodes, dtype=bool)
        for lo, hi in self._tile_ranges(0, self.n_nodes):
            np.logical_or(
                (self.min_x[lo:hi] > qb.max_x) | (self.max_x[lo:hi] < qb.min_x),
                (self.min_y[lo:hi] > qb.max_y) | (self.max_y[lo:hi] < qb.min_y),
                out=bbox_disjoint[lo:hi],
            )
        labels = np.full(self.n_nodes, PARTIAL, dtype=np.int8)
        nodes = self.nodes
        starts = self.level_starts

        def exact(i: int) -> int:
            if bbox_disjoint[i]:
                return DISJOINT
            bbox = nodes[i].bbox
            if not region.intersects_rect(bbox):
                return DISJOINT
            if region.contains_rect(bbox):
                return CONTAINED
            return PARTIAL

        labels[0] = exact(0)
        for level in range(1, len(starts) - 1):
            # Levels are contiguous in BFS order, so tiling a level is a
            # further sub-bracketing of the same node range.
            for lo, hi in self._tile_ranges(int(starts[level]), int(starts[level + 1])):
                plabels = labels[self.parent[lo:hi]]
                # A child bbox lies inside its parent's, so a parent
                # that is wholly in (or wholly out of) the region
                # settles every descendant; only the PARTIAL frontier
                # needs exact tests.
                seg = labels[lo:hi]
                settled = plabels != PARTIAL
                seg[settled] = plabels[settled]
                for off in np.flatnonzero(~settled):
                    seg[off] = exact(lo + int(off))
        return labels

    # ------------------------------------------------------------------
    # Overlap fractions
    # ------------------------------------------------------------------
    def overlap_fractions(self, region: Region) -> np.ndarray:
        """``Overlap(BB(i), A)`` for every node in one vectorized pass.

        Matches :func:`repro.core.lookup.region_overlap_fraction`
        bit-for-bit: the overlap is always computed against the region's
        *bounding box* (exact for rectangles, the paper's approximation
        for polygons), with the same degenerate-box fallback.
        """
        qb = region_bbox(region)
        disjoint = (
            (qb.min_x > self.max_x)
            | (qb.max_x < self.min_x)
            | (qb.min_y > self.max_y)
            | (qb.max_y < self.min_y)
        )
        ix = np.minimum(self.max_x, qb.max_x) - np.maximum(self.min_x, qb.min_x)
        iy = np.minimum(self.max_y, qb.max_y) - np.maximum(self.min_y, qb.min_y)
        area = (self.max_x - self.min_x) * (self.max_y - self.min_y)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = (ix * iy) / area
        # Degenerate (zero-area) boxes: 1.0 when the center lies inside
        # the region bbox, else 0.0 — same closed comparisons as
        # ``Rect.overlap_fraction``.
        cx = (self.min_x + self.max_x) / 2.0
        cy = (self.min_y + self.max_y) / 2.0
        center_in = (
            (qb.min_x <= cx) & (cx <= qb.max_x) & (qb.min_y <= cy) & (cy <= qb.max_y)
        )
        degenerate = area <= 0.0
        frac = np.where(degenerate, np.where(center_in, 1.0, 0.0), frac)
        frac[disjoint] = 0.0
        return frac

    # ------------------------------------------------------------------
    # Leaf membership
    # ------------------------------------------------------------------
    def leaf_matching(self, i: int, region: Region) -> list["Sensor"]:
        """Sensors of leaf ``i`` inside ``region``, in leaf order (the
        order the recursive ``_leaf_lookup`` produces)."""
        node = self.nodes[i]
        if isinstance(region, Rect):
            lo, hi = int(self.leaf_start[i]), int(self.leaf_end[i])
            x = self.sensor_x[lo:hi]
            y = self.sensor_y[lo:hi]
            mask = (
                (region.min_x <= x)
                & (x <= region.max_x)
                & (region.min_y <= y)
                & (y <= region.max_y)
            )
            sensors = node.sensors
            return [sensors[j] for j in np.flatnonzero(mask)]
        return [s for s in node.sensors if region.contains_point(s.location)]

    def in_region_mask(self, region: Region) -> np.ndarray | None:
        """Boolean membership mask over the flat sensor arrays, or
        ``None`` when the region offers no vectorized point test."""
        if isinstance(region, Rect):
            x = self.sensor_x
            y = self.sensor_y
            return (
                (region.min_x <= x)
                & (x <= region.max_x)
                & (region.min_y <= y)
                & (y <= region.max_y)
            )
        return None

    # ------------------------------------------------------------------
    # Shared-memory export / import
    # ------------------------------------------------------------------
    def shared_arrays(self) -> dict[str, np.ndarray]:
        """The static numpy arrays of the kernel, keyed by attribute
        name — the exact set a shared-memory publisher must carry for
        :meth:`adopt_arrays` to reconstruct a working kernel."""
        return {name: getattr(self, name) for name in SHARED_ARRAY_FIELDS}

    def adopt_arrays(
        self, arrays: Mapping[str, np.ndarray], *, verify: bool = True
    ) -> None:
        """Swap the kernel's private arrays for externally backed views
        (e.g. ``multiprocessing.shared_memory`` maps).

        Every field in :data:`SHARED_ARRAY_FIELDS` must be present with
        matching dtype and shape.  With ``verify=True`` the contents are
        also compared against the current arrays — a cheap one-time
        guard that the publisher and this process built the same tree
        (both sides build deterministically from the same sensors, so a
        mismatch means a bug, not noise).
        """
        for name in SHARED_ARRAY_FIELDS:
            if name not in arrays:
                raise KeyError(f"adopt_arrays missing field {name!r}")
            new = arrays[name]
            old = getattr(self, name)
            if new.dtype != old.dtype or new.shape != old.shape:
                raise ValueError(
                    f"adopt_arrays field {name!r}: expected "
                    f"{old.dtype}{old.shape}, got {new.dtype}{new.shape}"
                )
            if verify and not np.array_equal(new, old):
                raise ValueError(
                    f"adopt_arrays field {name!r}: contents differ from "
                    "locally built kernel (publisher/worker tree mismatch)"
                )
        for name in SHARED_ARRAY_FIELDS:
            setattr(self, name, arrays[name])

    # ------------------------------------------------------------------
    # Visited set (for fully vectorized scans)
    # ------------------------------------------------------------------
    def visited_mask(self, labels: np.ndarray) -> np.ndarray:
        """Nodes the recursive range lookup visits when no cache
        termination fires: the root plus every child of a visited
        non-disjoint internal node (DISJOINT nodes themselves are
        visited — the recursion enters them to test and return)."""
        visited = np.zeros(self.n_nodes, dtype=bool)
        visited[0] = True
        starts = self.level_starts
        for level in range(1, len(starts) - 1):
            lo, hi = int(starts[level]), int(starts[level + 1])
            parents = self.parent[lo:hi]
            visited[lo:hi] = visited[parents] & (labels[parents] != DISJOINT)
        return visited
