"""The COLR-Tree facade.

``COLRTree`` ties everything together: the k-means-built hierarchy, the
per-node slot caches, on-demand probing through a
:class:`~repro.sensors.network.SensorNetwork`, bottom-up aggregate
maintenance (the in-memory analogue of Section VI-B's four triggers),
the global cache-size constraint with least-recently-fetched eviction,
and the two query paths (exact range lookup / layered sampling).

Cache maintenance invariants
----------------------------
* Every reading cached at a leaf is folded into the same-numbered slot
  of *every* ancestor's aggregate cache (globally aligned slotting).
* Replacing a sensor's reading decrements the displaced value out of
  each ancestor slot; if that dirties a min/max, the slot is recomputed
  from the children (bottom-up order makes this sound).
* Expiry needs no propagation: a slot id expires everywhere at once, so
  each cache prunes its own stale slot ids lazily.
* Capacity eviction removes the least recently *fetched* readings lying
  in the oldest occupied slot (the paper's replacement policy), with
  decrement propagation since the evicted readings are still valid.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.aggregates import AggregateSketch
from repro.core.build import build_colr_tree
from repro.core.config import COLRTreeConfig
from repro.core.flat import DISJOINT, FlatKernel
from repro.core.lookup import QueryAnswer, Region, range_lookup
from repro.core.node import COLRNode
from repro.core.plancache import SpatialPlan, SpatialPlanCache, region_fingerprint
from repro.core.sampling import layered_sample
from repro.core.slots import slot_of
from repro.core.stats import ProcessingCostModel, QueryStats, TreeStats
from repro.geometry import Rect
from repro.sensors.availability import AvailabilityModel
from repro.sensors.network import SensorNetwork
from repro.sensors.sensor import Reading, Sensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transport.dispatcher import ProbeDispatcher


class COLRTree:
    """A built COLR-Tree over a sensor population.

    Parameters
    ----------
    sensors:
        The registered sensor population (static metadata).
    config:
        Index tunables; see :class:`COLRTreeConfig`.
    network:
        The probe endpoint.  May be ``None`` for structure-only tests,
        in which case querying raises on the first probe attempt.
    availability_model:
        Source of historical availability estimates for oversampling.
        Defaults to an empty model (prior estimate 0.5 per sensor).
    cost_model:
        Deterministic processing-latency model for the benchmarks.
    """

    def __init__(
        self,
        sensors: Sequence[Sensor],
        config: COLRTreeConfig | None = None,
        network: SensorNetwork | None = None,
        availability_model: AvailabilityModel | None = None,
        cost_model: ProcessingCostModel | None = None,
        build_method: str = "kmeans",
        transport: "ProbeDispatcher | None" = None,
    ) -> None:
        self.config = config if config is not None else COLRTreeConfig()
        self.network = network
        # Optional probe-transport dispatcher; when attached (by the
        # portal, or directly) probe_and_cache routes through it instead
        # of calling network.probe synchronously.
        self.transport = transport
        self.availability_model = (
            availability_model
            if availability_model is not None
            else AvailabilityModel()
        )
        self.cost_model = cost_model if cost_model is not None else ProcessingCostModel()
        self.rng = np.random.default_rng(self.config.seed)
        self.root = build_colr_tree(
            sensors,
            fanout=self.config.fanout,
            leaf_capacity=self.config.leaf_capacity,
            seed=self.config.seed,
            method=build_method,
        )
        self._sensors: dict[int, Sensor] = {s.sensor_id: s for s in sensors}
        self._nodes: dict[int, COLRNode] = {}
        self._leaf_of: dict[int, COLRNode] = {}
        for node in self.root.iter_subtree():
            self._nodes[node.node_id] = node
            if self.config.caching_enabled:
                node.attach_caches(self.config.slot_seconds)
            if node.is_leaf:
                for sensor in node.sensors:
                    self._leaf_of[sensor.sensor_id] = node
        # Global cache accounting: slot id -> sensor id -> fetched_at.
        self._cache_registry: dict[int, dict[int, float]] = {}
        # Min-heap over occupied slot ids (lazy deletion: entries whose
        # slot has vanished from the registry are skipped on pop), so
        # capacity eviction finds the oldest slot in O(log slots)
        # instead of rescanning the registry every iteration.
        self._slot_heap: list[int] = []
        self._cached_count = 0
        self.stats = TreeStats()
        # Write-delta listeners: ``fn(dirty_rect, n_readings)`` fires
        # after every cache ingestion (probe fill, streamed transport
        # ingestion, prime_cache) with the bounding box of the touched
        # leaves.  The front-door result cache subscribes here so
        # viewport answers overlapping fresh writes drop out — cached
        # results see exactly the deltas the slot caches see.
        self.ingest_listeners: list = []
        # Reading-level listeners: ``fn(readings, fetched_at)`` fires
        # with the *actual batch* after every cache ingestion, alongside
        # the coarse ``ingest_listeners`` above.  The geoblock grid
        # subscribes here — mirroring per-cell aggregates needs the
        # readings themselves, not just the dirty bounding box.
        self.reading_listeners: list = []
        # Durable-storage hooks (both ``None`` on an in-memory tree).
        # ``wal_sink`` is called as ``fn(readings, fetched_at)`` after a
        # batch is fully applied to the caches — the portal points it at
        # the storage engine's WAL so every acknowledged ingestion is
        # journaled (recovery priming runs with the sink detached, so
        # replay is never re-journaled).  ``storage_meter`` is the
        # engine's :class:`~repro.storage.stats.StorageStats`;
        # ``probe_and_cache`` meters its deltas into ``QueryStats`` so
        # disk I/O shows up next to probe accounting.
        self.wal_sink = None
        self.storage_meter = None
        # The flattened traversal kernel + spatial plan cache.  Both are
        # pure accelerators: answers are bit-identical with them off.
        self.kernel: FlatKernel | None = (
            FlatKernel(self.root, tile_nodes=self.config.classify_tile_nodes)
            if self.config.flat_kernel_enabled
            else None
        )
        self.plan_cache: SpatialPlanCache | None = (
            SpatialPlanCache(self.config.plan_cache_size)
            if self.kernel is not None and self.config.plan_cache_enabled
            else None
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sensors)

    def sensor(self, sensor_id: int) -> Sensor:
        return self._sensors[sensor_id]

    def node(self, node_id: int) -> COLRNode:
        return self._nodes[node_id]

    def nodes(self) -> list[COLRNode]:
        """All nodes, root first by id order of creation."""
        return [self._nodes[nid] for nid in sorted(self._nodes)]

    def leaf_for(self, sensor_id: int) -> COLRNode:
        return self._leaf_of[sensor_id]

    def height(self) -> int:
        return self.root.height()

    @property
    def cached_reading_count(self) -> int:
        """Raw readings currently cached across all leaves."""
        return self._cached_count

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(
        self,
        region: Region,
        now: float,
        max_staleness: float,
        sample_size: int | None = None,
        terminal_level: int | None = None,
        aggregate_termination: bool = True,
    ) -> QueryAnswer:
        """Answer a spatio-temporal query.

        With ``sampling_enabled`` (and a positive target) this runs
        layered sampling; otherwise the exact cache-aware range lookup.
        ``sample_size=None`` uses the config default; pass ``0`` to
        force an exact lookup on a sampling-enabled tree.
        ``terminal_level`` adjusts the sampling threshold ``T`` per
        query (the map-zoom knob).

        ``aggregate_termination=False`` disables sketch
        early-termination on the exact path, so the answer carries only
        per-sensor readings (probed or cache-served) and never an
        anonymous node-level aggregate.  The geoblock polygon planner
        needs this for its boundary-cell sub-queries: composing cells
        dedups shared-edge sensors *by id*, which a sketch cannot
        provide.  The default keeps every existing path bit-identical.
        """
        if max_staleness < 0:
            raise ValueError("max_staleness must be non-negative")
        self._prune_expired(now)
        if sample_size is None:
            sample_size = self.config.default_sample_size
        if self.config.sampling_enabled and sample_size > 0:
            answer = layered_sample(
                self, region, now, max_staleness, sample_size,
                terminal_level=terminal_level,
            )
        else:
            answer = range_lookup(
                self, region, now, max_staleness,
                aggregate_termination=aggregate_termination,
            )
        self.stats.record(answer.stats)
        return answer

    def processing_seconds(self, stats: QueryStats) -> float:
        """Simulated processing latency of one query's stats."""
        return self.cost_model.processing_seconds(stats)

    def explain(
        self,
        region: Region,
        now: float,
        max_staleness: float,
        sample_size: int | None = None,
        terminal_level: int | None = None,
    ):
        """EXPLAIN: the plan a query would execute, without probing.

        Returns a :class:`repro.core.explain.QueryPlan` with the access
        path, cache coverage, expected probe count and per-terminal
        allocation.  Read-only and deterministic.
        """
        from repro.core.explain import explain_query

        return explain_query(
            self, region, now, max_staleness, sample_size, terminal_level
        )

    def spatial_plan(
        self,
        region: Region,
        terminal_level: int | None,
        stats: QueryStats | None = None,
    ) -> SpatialPlan | None:
        """The memoized spatial half of a query plan, or ``None`` when
        the flattened kernel is disabled (legacy traversal).

        The classification (and everything derived from it) depends
        only on the region and the frozen tree structure, so a cached
        plan is valid indefinitely; ``stats`` receives the hit/miss and
        pruning meters when provided.
        """
        if self.kernel is None:
            return None
        key = None
        if self.plan_cache is not None:
            fingerprint = region_fingerprint(region)
            if fingerprint is not None:
                key = (fingerprint, terminal_level)
                plan = self.plan_cache.get(key)
                if plan is not None:
                    if stats is not None:
                        stats.plan_cache_hits += 1
                        stats.nodes_pruned_vectorized += plan.n_disjoint
                    return plan
        labels = self.kernel.classify(region)
        plan = SpatialPlan(labels=labels, n_disjoint=int((labels == DISJOINT).sum()))
        if key is not None:
            self.plan_cache.put(key, plan)
            if stats is not None:
                stats.plan_cache_misses += 1
        if stats is not None:
            stats.nodes_pruned_vectorized += plan.n_disjoint
        return plan

    def node_availability(self, node: COLRNode, now: float) -> float:
        """Mean historical availability of the node's descendants
        (``a_i``), refreshed at most every
        ``availability_refresh_seconds``."""
        if (
            now - node.availability_refreshed_at
            >= self.config.availability_refresh_seconds
        ):
            ids = node.descendant_ids
            if ids.size > 256:
                # Even subsample: the estimate is a mean, and terminal
                # nodes are small; this keeps refreshes O(1)-ish.
                step = ids.size // 256
                ids = ids[::step]
            node.availability = self.availability_model.mean_estimate(ids.tolist())
            node.availability_refreshed_at = now
        return max(1e-3, node.availability)

    # ------------------------------------------------------------------
    # Probing + cache population
    # ------------------------------------------------------------------
    def probe_and_cache(
        self,
        sensor_ids: Iterable[int],
        now: float,
        stats: QueryStats,
        max_staleness: float | None = None,
    ) -> list[Reading]:
        """Probe live sensors, record work, and cache the successes.

        When a transport dispatcher is attached the probe is routed
        through it (dedup/cooldown/retry apply, and the dispatcher
        streams the readings into the cache itself); otherwise the
        direct synchronous ``network.probe`` path runs.  The optional
        ``max_staleness`` bounds how old a dedup-served reading may be.
        """
        ids = list(sensor_ids)
        if not ids:
            return []
        if self.network is None:
            raise RuntimeError("this tree has no sensor network attached")
        io_base = (
            self.storage_meter.io_counters()
            if self.storage_meter is not None
            else None
        )
        if self.transport is not None:
            rnd = self.transport.collect(
                ids,
                now,
                tree=self,
                max_staleness=math.inf if max_staleness is None else max_staleness,
            )
            stats.sensors_probed += len(ids)
            stats.probe_successes += len(rnd.readings)
            stats.probe_batches += 1
            stats.collection_latency_seconds += rnd.latency_seconds
            stats.probes_retried += rnd.retries
            stats.probes_timed_out += len(rnd.timed_out)
            stats.probes_deduped += len(rnd.deduped)
            stats.probes_cooldown_skipped += len(rnd.cooldown_skipped)
            if self.config.caching_enabled:
                if self.transport.streams_ingestion:
                    stats.maintenance_ops += rnd.maintenance_ops
                else:
                    served = rnd.deduped_set
                    fresh = [
                        r for sid, r in rnd.readings.items() if sid not in served
                    ]
                    stats.maintenance_ops += self.insert_readings_batch(
                        fresh, fetched_at=now
                    )
            self._meter_storage(stats, io_base)
            return list(rnd.readings.values())
        result = self.network.probe(ids, now)
        stats.sensors_probed += len(ids)
        stats.probe_successes += len(result.readings)
        stats.probe_batches += 1
        stats.collection_latency_seconds += result.latency_seconds
        readings = list(result.readings.values())
        if self.config.caching_enabled:
            stats.maintenance_ops += self.insert_readings_batch(readings, fetched_at=now)
        self._meter_storage(stats, io_base)
        return readings

    def _meter_storage(
        self, stats: QueryStats, io_base: tuple[int, int, int, int] | None
    ) -> None:
        """Charge the storage I/O performed since ``io_base`` (the
        engine's counters at probe start) to this query's stats."""
        if io_base is None:
            return
        reads, writes, appends, fsyncs = self.storage_meter.io_counters()
        stats.page_reads += reads - io_base[0]
        stats.page_writes += writes - io_base[1]
        stats.wal_appends += appends - io_base[2]
        stats.wal_fsyncs += fsyncs - io_base[3]

    def insert_reading(self, reading: Reading, fetched_at: float) -> int:
        """Cache one reading and propagate aggregates to the root.

        Returns the number of cache-maintenance operations performed
        (the trigger-work analogue used by the latency model).
        """
        if not self.config.caching_enabled:
            return 0
        leaf = self._leaf_of.get(reading.sensor_id)
        if leaf is None:
            raise KeyError(f"sensor {reading.sensor_id} is not indexed by this tree")
        assert leaf.leaf_cache is not None
        ops = 1
        # Remove-then-decrement *before* inserting the new reading:
        # a min/max recomputation triggered by the decrement reads the
        # leaf's current contents, which must not yet include the new
        # value (it is added to every ancestor afterwards).
        displaced = leaf.leaf_cache.remove(reading.sensor_id)
        if displaced is not None:
            old_slot = slot_of(displaced.expires_at, self.config.slot_seconds)
            ops += self._decrement_path(leaf, old_slot, displaced.value)
            self._registry_remove(old_slot, displaced.sensor_id)
        leaf.leaf_cache.insert(reading, fetched_at)
        new_slot = slot_of(reading.expires_at, self.config.slot_seconds)
        if new_slot not in self._cache_registry:
            heapq.heappush(self._slot_heap, new_slot)
        self._cache_registry.setdefault(new_slot, {})[reading.sensor_id] = fetched_at
        self._cached_count += 1
        # Roll-forward + per-slot increment up the tree (the slot-insert
        # and slot-update triggers of Section VI-B).
        if not self.config.aggregate_caching_enabled:
            if self.wal_sink is not None:
                self.wal_sink([reading], fetched_at)
            self._notify_ingest([leaf], 1)
            self._notify_readings([reading], fetched_at)
            return ops
        node = leaf.parent
        while node is not None:
            assert node.agg_cache is not None
            node.agg_cache.add(new_slot, reading.value, reading.timestamp)
            ops += 1
            node = node.parent
        if self.wal_sink is not None:
            self.wal_sink([reading], fetched_at)
        self._notify_ingest([leaf], 1)
        self._notify_readings([reading], fetched_at)
        return ops

    def insert_readings_batch(self, readings: Iterable[Reading], fetched_at: float) -> int:
        """Cache many readings with grouped delta propagation.

        The batch analogue of :meth:`insert_reading` (Section VI-B's
        triggers, amortized): one pass applies every reading to its
        leaf, collecting per-(leaf, slot) add deltas and displaced
        values; then each distinct ancestor receives a *single merged*
        :class:`AggregateSketch` delta per touched slot instead of one
        walk per reading.  Ancestors are applied deepest-first so a slot
        whose min/max goes dirty is recomputed (at most once) from
        already-corrected children.

        Equivalence with the one-by-one loop: leaf contents, registry
        accounting and per-slot count/min/max come out identical;
        ``total`` agrees up to float summation order (the grouped delta
        sums the same values in a different association); and
        ``oldest_timestamp`` is equal or *conservatively older* — a
        grouped removal recomputes a slot when any of its values was
        extremal, which can refresh a stale timestamp the interleaved
        loop (or vice versa) would have kept as a valid older bound.
        The trigger-work count — the returned maintenance op count —
        is smaller, which is exactly the processing saving batched
        ingestion exists to provide.  Capacity is enforced once at the
        end, like the per-probe-batch pass.
        """
        if not self.config.caching_enabled:
            return 0
        batch = list(readings)
        if not batch:
            return 0
        slot_seconds = self.config.slot_seconds
        ops = 0
        # Phase 1: leaf-level application, grouped by leaf.
        touched_leaves: dict[int, COLRNode] = {}
        leaf_adds: dict[int, dict[int, AggregateSketch]] = {}
        leaf_removes: dict[int, dict[int, list[float]]] = {}
        aggregating = self.config.aggregate_caching_enabled
        for reading in batch:
            leaf = self._leaf_of.get(reading.sensor_id)
            if leaf is None:
                raise KeyError(
                    f"sensor {reading.sensor_id} is not indexed by this tree"
                )
            assert leaf.leaf_cache is not None
            ops += 1
            displaced = leaf.leaf_cache.remove(reading.sensor_id)
            if displaced is not None:
                old_slot = slot_of(displaced.expires_at, slot_seconds)
                if aggregating:
                    leaf_removes.setdefault(leaf.node_id, {}).setdefault(
                        old_slot, []
                    ).append(displaced.value)
                self._registry_remove(old_slot, displaced.sensor_id)
            leaf.leaf_cache.insert(reading, fetched_at)
            new_slot = slot_of(reading.expires_at, slot_seconds)
            if new_slot not in self._cache_registry:
                heapq.heappush(self._slot_heap, new_slot)
            self._cache_registry.setdefault(new_slot, {})[
                reading.sensor_id
            ] = fetched_at
            self._cached_count += 1
            touched_leaves[leaf.node_id] = leaf
            if aggregating:
                leaf_adds.setdefault(leaf.node_id, {}).setdefault(
                    new_slot, AggregateSketch()
                ).add(reading.value, reading.timestamp)
        if not aggregating:
            ops += self._enforce_capacity()
            if self.wal_sink is not None:
                self.wal_sink(batch, fetched_at)
            self._notify_ingest(touched_leaves.values(), len(batch))
            self._notify_readings(batch, fetched_at)
            return ops
        # Phase 2: merge each touched leaf's deltas into its ancestor
        # chain, so every ancestor sees one delta per slot regardless of
        # how many readings (or leaves) contributed.
        anc_adds: dict[int, dict[int, AggregateSketch]] = {}
        anc_removes: dict[int, dict[int, list[float]]] = {}
        ancestors: dict[int, COLRNode] = {}
        for leaf_id, leaf in touched_leaves.items():
            adds = leaf_adds.get(leaf_id, {})
            removes = leaf_removes.get(leaf_id, {})
            # Removals propagate the whole chain: a reading present in a
            # leaf has its value folded into *every* ancestor's slot
            # (inserts add it everywhere; displacement and eviction
            # decrement everywhere), and a displaced reading inserted
            # earlier in this same batch has its slot created by the add
            # deltas, which phase 3 applies first.
            node = leaf.parent
            while node is not None:
                assert node.agg_cache is not None
                ancestors[node.node_id] = node
                n_adds = anc_adds.setdefault(node.node_id, {})
                for slot, delta in adds.items():
                    got = n_adds.get(slot)
                    if got is None:
                        n_adds[slot] = delta.copy()
                    else:
                        got.merge(delta)
                if removes:
                    n_removes = anc_removes.setdefault(node.node_id, {})
                    for slot, values in removes.items():
                        n_removes.setdefault(slot, []).extend(values)
                node = node.parent
        # Phase 3: apply deepest-first (adds before removes per node) so
        # a dirty min/max recomputation always reads fully corrected
        # children and runs at most once per (ancestor, slot).
        for node in sorted(ancestors.values(), key=lambda n: n.level, reverse=True):
            cache = node.agg_cache
            assert cache is not None
            for slot, delta in sorted(anc_adds.get(node.node_id, {}).items()):
                cache.add_sketch(slot, delta)
                ops += 1
            for slot, values in sorted(anc_removes.get(node.node_id, {}).items()):
                if cache.sketch(slot) is None:
                    continue
                ops += 1
                if cache.remove_bulk(slot, values):
                    cache.replace(slot, self._recompute_slot(node, slot))
                    ops += len(node.children)
        ops += self._enforce_capacity()
        if self.wal_sink is not None:
            self.wal_sink(batch, fetched_at)
        self._notify_ingest(touched_leaves.values(), len(batch))
        self._notify_readings(batch, fetched_at)
        return ops

    def _notify_readings(self, readings: list[Reading], fetched_at: float) -> None:
        """Fire the reading-level listeners with the applied batch."""
        if not self.reading_listeners or not readings:
            return
        for listener in list(self.reading_listeners):
            listener(readings, fetched_at)

    def _notify_ingest(self, leaves: Iterable[COLRNode], count: int) -> None:
        """Fire the write-delta listeners with the touched leaves'
        bounding box.  Leaf bboxes (not reading coordinates) are used so
        the process-backend coordinator and the in-process path agree on
        the dirty region for the same ingestion."""
        if not self.ingest_listeners or count <= 0:
            return
        rects = [leaf.bbox for leaf in leaves]
        if not rects:
            return
        dirty = Rect.union_of(rects)
        for listener in list(self.ingest_listeners):
            listener(dirty, count)

    def clear_caches(self) -> None:
        """Drop every cached reading and aggregate (leaf and internal),
        resetting the tree to its cold post-build state.  Spatial plans
        stay valid (they depend only on the frozen structure); only the
        temporal state is cleared.  Used by benchmarks to re-run a
        workload from cold without paying a rebuild."""
        if self.config.caching_enabled:
            for node in self._nodes.values():
                node.attach_caches(self.config.slot_seconds)
        self._cache_registry.clear()
        self._slot_heap.clear()
        self._cached_count = 0

    def touch_cached(self, leaf: COLRNode, sensor_ids: set[int], now: float) -> None:
        """Hook invoked when cached readings answer a query.

        The paper's replacement policy is least recently *fetched*, so a
        read does not refresh eviction priority; the hook exists for
        subclasses / instrumentation."""
        del leaf, sensor_ids, now

    # ------------------------------------------------------------------
    # Maintenance internals
    # ------------------------------------------------------------------
    def _decrement_path(self, leaf: COLRNode, slot: int, value: float) -> int:
        """Subtract a removed reading's value from every ancestor's slot
        aggregate, recomputing slots whose min/max went dirty.  Works
        bottom-up so recomputation always sees corrected children."""
        ops = 0
        node = leaf.parent
        while node is not None:
            assert node.agg_cache is not None
            if node.agg_cache.sketch(slot) is None:
                # The ancestor pruned this slot already (it expired from
                # its perspective); nothing to decrement above either.
                break
            dirty = node.agg_cache.remove(slot, value)
            ops += 1
            if dirty:
                node.agg_cache.replace(slot, self._recompute_slot(node, slot))
                ops += len(node.children)
            node = node.parent
        return ops

    def _recompute_slot(self, node: COLRNode, slot: int) -> AggregateSketch:
        """Rebuild an internal node's slot sketch from its children's
        same-numbered slots (the non-decrementable-aggregate path)."""
        sketch = AggregateSketch()
        for child in node.children:
            if child.is_leaf:
                assert child.leaf_cache is not None
                for reading in child.leaf_cache.all_readings():
                    if slot_of(reading.expires_at, self.config.slot_seconds) == slot:
                        sketch.add(reading.value, reading.timestamp)
            else:
                assert child.agg_cache is not None
                child_sketch = child.agg_cache.sketch(slot)
                if child_sketch is not None:
                    sketch.merge(child_sketch)
        return sketch

    def _registry_remove(self, slot: int, sensor_id: int) -> None:
        members = self._cache_registry.get(slot)
        if members is not None and sensor_id in members:
            del members[sensor_id]
            self._cached_count -= 1
            if not members:
                del self._cache_registry[slot]

    def _prune_expired(self, now: float) -> None:
        """Drop globally expired slots (the roll trigger).

        Thanks to globally aligned slot ids an expired slot vanishes
        from every cache without any decrement propagation: the leaf
        readings and every ancestor aggregate for that slot expire
        together.
        """
        if not self.config.caching_enabled:
            return
        boundary = slot_of(now, self.config.slot_seconds)
        stale_slots = [s for s in self._cache_registry if s < boundary]
        if not stale_slots:
            return
        touched_leaves: set[int] = set()
        for slot in stale_slots:
            for sensor_id in list(self._cache_registry[slot]):
                leaf = self._leaf_of[sensor_id]
                assert leaf.leaf_cache is not None
                if leaf.leaf_cache.remove(sensor_id) is not None:
                    self._cached_count -= 1
                touched_leaves.add(leaf.node_id)
            del self._cache_registry[slot]
        # Ancestor aggregate caches prune the same slot ids wholesale.
        pruned_nodes: set[int] = set()
        for leaf_id in touched_leaves:
            node = self._nodes[leaf_id].parent
            while node is not None and node.node_id not in pruned_nodes:
                assert node.agg_cache is not None
                node.agg_cache.prune_expired(now)
                pruned_nodes.add(node.node_id)
                node = node.parent

    def _oldest_slot(self) -> int | None:
        """Smallest occupied slot id, via the lazy-deletion heap.

        Slots leave the registry through expiry, displacement and
        eviction without touching the heap; stale heap entries are
        simply skipped here, keeping each eviction pass O(log slots)
        instead of the former O(slots) registry rescan."""
        while self._slot_heap:
            slot = self._slot_heap[0]
            if slot in self._cache_registry:
                return slot
            heapq.heappop(self._slot_heap)
        return None

    def _enforce_capacity(self) -> int:
        """Evict least-recently-fetched readings from the oldest slot
        until the global cache constraint holds (Section IV-A's policy).
        Returns maintenance op count."""
        capacity = self.config.cache_capacity
        if capacity is None:
            return 0
        ops = 0
        while self._cached_count > capacity and self._cache_registry:
            oldest = self._oldest_slot()
            assert oldest is not None  # registry non-empty => heap has it
            members = self._cache_registry[oldest]
            overflow = self._cached_count - capacity
            victims = sorted(members.items(), key=lambda kv: kv[1])[:overflow]
            for sensor_id, _ in victims:
                leaf = self._leaf_of[sensor_id]
                assert leaf.leaf_cache is not None
                removed = leaf.leaf_cache.remove(sensor_id)
                if removed is not None:
                    ops += 1 + self._decrement_path(leaf, oldest, removed.value)
                del members[sensor_id]
                self._cached_count -= 1
            if not members:
                del self._cache_registry[oldest]
        return ops

    # ------------------------------------------------------------------
    # Bulk cache priming (used by experiments to warm caches)
    # ------------------------------------------------------------------
    def prime_cache(self, readings: Iterable[Reading], fetched_at: float) -> int:
        """Insert a batch of readings directly (no probe accounting),
        via the grouped-delta ingestion path."""
        return self.insert_readings_batch(readings, fetched_at)
