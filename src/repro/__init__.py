"""COLR-Tree reproduction (Ahmad & Nath, ICDE 2008).

A communication-efficient spatio-temporal index for a sensor-data web
portal: an R-tree bulk-built with k-means clustering whose nodes carry
expiry-aware *slot caches* of partial aggregates, combined with a
one-pass *layered sampling* range lookup that bounds per-query sensor
probes.

Quickstart
----------
>>> from repro import (COLRTree, COLRTreeConfig, SensorNetwork,
...                    SensorRegistry, Rect, GeoPoint)
>>> registry = SensorRegistry()
>>> for i in range(100):
...     _ = registry.register(GeoPoint(i % 10, i // 10), expiry_seconds=300)
>>> network = SensorNetwork(registry.all())
>>> tree = COLRTree(registry.all(), COLRTreeConfig(), network=network)
>>> answer = tree.query(Rect(0, 0, 5, 5), now=0.0, max_staleness=600,
...                     sample_size=10)
>>> answer.probed_count <= 100
True
"""

from repro.core import (
    AggregateSketch,
    COLRNode,
    COLRTree,
    COLRTreeConfig,
    QueryAnswer,
    QueryStats,
    SlotCache,
    SlotSizeModel,
    TreeStats,
    build_colr_tree,
    layered_sample,
    optimal_slot_size,
)
from repro.geometry import GeoPoint, Polygon, Rect
from repro.sensors import (
    AvailabilityModel,
    Reading,
    Sensor,
    SensorNetwork,
    SensorRegistry,
    SimClock,
    SpatialField,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateSketch",
    "AvailabilityModel",
    "COLRNode",
    "COLRTree",
    "COLRTreeConfig",
    "GeoPoint",
    "Polygon",
    "QueryAnswer",
    "QueryStats",
    "Reading",
    "Rect",
    "Sensor",
    "SensorNetwork",
    "SensorRegistry",
    "SimClock",
    "SlotCache",
    "SlotSizeModel",
    "SpatialField",
    "TreeStats",
    "build_colr_tree",
    "layered_sample",
    "optimal_slot_size",
    "__version__",
]
