"""The four cache-maintenance triggers (Section VI-B).

* **Roll trigger** — AFTER INSERT on the leaf cache.  Advances the slot
  window so the newest insertion lies in the most recent slot and
  expunges every leaf row in slots the window slid over (the deletions
  cascade through the slot-delete trigger).
* **Slot insert trigger** — AFTER INSERT on the leaf cache.  Increments
  the same-slot aggregate row in the cache table one layer above the
  leaves, and enforces the cache-size constraint with
  least-recently-fetched eviction from the oldest slot.
* **Slot delete trigger** — AFTER DELETE on the leaf cache.  Decrements
  the layer above (recomputing min/max from the children when the
  deleted value may have defined them) and deletes emptied rows.
* **Slot update trigger** — AFTER INSERT/UPDATE/DELETE on every cache
  table above the leaf layer.  Propagates the per-row delta to the
  parent layer, cascading to the root.

All bodies speak pure DML against the :class:`~repro.relational.Database`,
so the cascade is driven by the engine's statement-trigger dispatch the
same way SQL Server drives the paper's implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.relational import Database, Trigger, TriggerEvent, col
from repro.relational.triggers import TriggerInvocation
from repro.relcolr.schema import SchemaNames


@dataclass(frozen=True, slots=True)
class MaintenanceConfig:
    """Knobs the triggers need."""

    slot_seconds: float
    n_slots: int
    cache_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        if self.n_slots < 1:
            raise ValueError("n_slots must be positive")
        if self.cache_capacity is not None and self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")


def install_triggers(
    db: Database,
    names: SchemaNames,
    config: MaintenanceConfig,
    n_levels: int,
) -> "_Maintenance":
    """Register the four triggers for a loaded tree.  Returns the shared
    maintenance object (window state + grouped-propagation counters)."""
    maint = _Maintenance(names, config, n_levels)
    db.create_trigger(
        Trigger(
            name=f"{names.prefix}_roll",
            table=names.leaf_cache,
            event=TriggerEvent.INSERT,
            body=maint.roll_trigger,
        )
    )
    db.create_trigger(
        Trigger(
            name=f"{names.prefix}_slot_insert",
            table=names.leaf_cache,
            event=TriggerEvent.INSERT,
            body=maint.slot_insert_trigger,
        )
    )
    db.create_trigger(
        Trigger(
            name=f"{names.prefix}_slot_delete",
            table=names.leaf_cache,
            event=TriggerEvent.DELETE,
            body=maint.slot_delete_trigger,
        )
    )
    # The slot update trigger: one registration per cache table above
    # the leaf layer, for each event that changes a row's contribution.
    for level in range(1, n_levels - 1):
        for event in (TriggerEvent.INSERT, TriggerEvent.UPDATE, TriggerEvent.DELETE):
            db.create_trigger(
                Trigger(
                    name=f"{names.prefix}_slot_update_{level}_{event.value}",
                    table=names.cache(level),
                    event=event,
                    body=maint.make_slot_update_trigger(level),
                )
            )
    return maint


class _Maintenance:
    """Shared state and helpers for the trigger bodies."""

    def __init__(self, names: SchemaNames, config: MaintenanceConfig, n_levels: int) -> None:
        self.names = names
        self.config = config
        self.n_levels = n_levels
        self.newest_slot: int | None = None
        # Non-zero while a grouped (multi-row) propagation is applying
        # merged ancestor deltas directly: the per-level slot-update
        # cascade is suppressed so each (ancestor, slot) receives exactly
        # one statement instead of one per touched child row.
        self._grouped_depth = 0
        # Observational: grouped statements issued vs. the per-row
        # statements the cascade would have needed (for the parity test
        # and the bench report).
        self.grouped_statements = 0
        self.grouped_rows = 0

    # ------------------------------------------------------------------
    # Trigger bodies
    # ------------------------------------------------------------------
    def roll_trigger(self, db: Database, inv: TriggerInvocation) -> None:
        """Slide the window forward to cover the newest insertion and
        expunge slots that fell off the back."""
        newest = max(int(row["slot_id"]) for row in inv.inserted)
        if self.newest_slot is not None and newest <= self.newest_slot:
            return
        self.newest_slot = newest if self.newest_slot is None else max(self.newest_slot, newest)
        # With absolute slot alignment, live readings straddle a slot
        # boundary: at any instant their expiries span n_slots + 1 slot
        # ids, so the window retains one extra slot.  Everything behind
        # it expired before the insertion that slid the window.
        window_start = self.newest_slot - self.config.n_slots
        db.delete(self.names.leaf_cache, col("slot_id") < window_start)

    def slot_insert_trigger(self, db: Database, inv: TriggerInvocation) -> None:
        """Bump the parent-layer aggregate for each new reading, then
        enforce the cache-size constraint.

        Multi-row statements take the grouped path: one merged delta per
        (ancestor, slot) applied deepest-first with the per-level cascade
        suppressed — the batch-trigger analogue of
        ``COLRTree.insert_readings_batch``.  Single-row statements keep
        the original per-row cascade byte-for-byte."""
        if len(inv.inserted) > 1:
            self._grouped_insert(db, inv.inserted)
            self._enforce_capacity(db)
            return
        for row in inv.inserted:
            if self.newest_slot is not None and int(row["slot_id"]) < (
                self.newest_slot - self.config.n_slots
            ):
                continue  # the roll trigger already expunged this row
            parent_id, parent_level = self._parent_of(db, int(row["leaf_id"]))
            if parent_id is None:
                continue  # single-node tree: the leaf is the root
            self._apply_delta(
                db,
                level=parent_level,
                node_id=parent_id,
                slot=int(row["slot_id"]),
                d_count=1,
                d_sum=float(row["value"]),
                merge_min=float(row["value"]),
                merge_max=float(row["value"]),
                merge_oldest=float(row["timestamp"]),
            )
        self._enforce_capacity(db)

    def slot_delete_trigger(self, db: Database, inv: TriggerInvocation) -> None:
        """Decrement the parent layer for each expunged/evicted reading.

        Multi-row deletions (window rolls, capacity eviction, batch
        displacement) take the grouped path: one merged decrement per
        (ancestor, slot), dirty min/max recomputed at most once per row,
        deepest-first so recomputation reads corrected children."""
        if len(inv.deleted) > 1:
            self._grouped_delete(db, inv.deleted)
            return
        for row in inv.deleted:
            parent_id, parent_level = self._parent_of(db, int(row["leaf_id"]))
            if parent_id is None:
                continue
            self._apply_delta(
                db,
                level=parent_level,
                node_id=parent_id,
                slot=int(row["slot_id"]),
                d_count=-1,
                d_sum=-float(row["value"]),
                removed_value=float(row["value"]),
            )

    def make_slot_update_trigger(self, level: int):
        """The propagation trigger for one cache table: applies each
        affected row's delta to the parent layer."""

        def body(db: Database, inv: TriggerInvocation) -> None:
            if self._grouped_depth:
                # A grouped propagation is writing merged ancestor deltas
                # directly (full chains, deepest-first); cascading here
                # would double-apply them.
                return
            old_by_key = {
                (r["node_id"], r["slot_id"]): r for r in inv.deleted
            }
            new_by_key = {
                (r["node_id"], r["slot_id"]): r for r in inv.inserted
            }
            for key in set(old_by_key) | set(new_by_key):
                old = old_by_key.get(key)
                new = new_by_key.get(key)
                node_id = int(key[0])
                slot = int(key[1])
                parent_id, parent_level = self._parent_of(db, node_id)
                if parent_id is None:
                    continue
                d_count = (int(new["value_count"]) if new else 0) - (
                    int(old["value_count"]) if old else 0
                )
                d_sum = (float(new["value_sum"]) if new else 0.0) - (
                    float(old["value_sum"]) if old else 0.0
                )
                if d_count == 0 and d_sum == 0.0 and new is not None and old is not None:
                    # min/max-only recompute below still matters when a
                    # child's extremes changed without count/sum moving.
                    if (
                        new["value_min"] == old["value_min"]
                        and new["value_max"] == old["value_max"]
                        and new["oldest_ts"] == old["oldest_ts"]
                    ):
                        continue
                shrinking = old is not None and (
                    new is None
                    or float(new["value_min"]) > float(old["value_min"])
                    or float(new["value_max"]) < float(old["value_max"])
                )
                self._apply_delta(
                    db,
                    level=parent_level,
                    node_id=parent_id,
                    slot=slot,
                    d_count=d_count,
                    d_sum=d_sum,
                    merge_min=float(new["value_min"]) if new else None,
                    merge_max=float(new["value_max"]) if new else None,
                    merge_oldest=float(new["oldest_ts"]) if new else None,
                    removed_value=0.0 if shrinking else None,
                )

        return body

    # ------------------------------------------------------------------
    # Grouped (multi-row) propagation
    # ------------------------------------------------------------------
    def _grouped_insert(self, db: Database, rows: list[dict]) -> None:
        """One merged add-delta per (ancestor, slot) for a batch of new
        leaf rows, applied deepest-first with the cascade suppressed."""
        deltas: dict[tuple[int, int, int], list] = {}
        for row in rows:
            if self.newest_slot is not None and int(row["slot_id"]) < (
                self.newest_slot - self.config.n_slots
            ):
                continue  # the roll trigger already expunged this row
            slot = int(row["slot_id"])
            value = float(row["value"])
            ts = float(row["timestamp"])
            for anc_id, anc_level in self._ancestors_of(db, int(row["leaf_id"])):
                d = deltas.get((anc_id, anc_level, slot))
                if d is None:
                    deltas[(anc_id, anc_level, slot)] = [1, value, value, value, ts]
                else:
                    d[0] += 1
                    d[1] += value
                    if value < d[2]:
                        d[2] = value
                    if value > d[3]:
                        d[3] = value
                    if ts < d[4]:
                        d[4] = ts
        self._grouped_depth += 1
        try:
            # Deepest level first (larger level number = deeper), so any
            # min/max recomputation triggered later reads corrected rows.
            for (anc_id, anc_level, slot), d in sorted(
                deltas.items(), key=lambda kv: -kv[0][1]
            ):
                self._apply_delta(
                    db,
                    level=anc_level,
                    node_id=anc_id,
                    slot=slot,
                    d_count=d[0],
                    d_sum=d[1],
                    merge_min=d[2],
                    merge_max=d[3],
                    merge_oldest=d[4],
                )
                self.grouped_statements += 1
        finally:
            self._grouped_depth -= 1
        self.grouped_rows += len(rows)

    def _grouped_delete(self, db: Database, rows: list[dict]) -> None:
        """One merged decrement per (ancestor, slot) for a batch of
        expunged leaf rows; a slot whose removed values may have defined
        its min/max is recomputed from the (already-corrected, because
        deepest-first) children — at most once per (ancestor, slot)."""
        removals: dict[tuple[int, int, int], list] = {}
        for row in rows:
            slot = int(row["slot_id"])
            value = float(row["value"])
            for anc_id, anc_level in self._ancestors_of(db, int(row["leaf_id"])):
                d = removals.get((anc_id, anc_level, slot))
                if d is None:
                    removals[(anc_id, anc_level, slot)] = [1, value, value, value]
                else:
                    d[0] += 1
                    d[1] += value
                    if value < d[2]:
                        d[2] = value
                    if value > d[3]:
                        d[3] = value
        self._grouped_depth += 1
        try:
            for (anc_id, anc_level, slot), (n, total, rmin, rmax) in sorted(
                removals.items(), key=lambda kv: -kv[0][1]
            ):
                self._apply_bulk_removal(db, anc_level, anc_id, slot, n, total, rmin, rmax)
                self.grouped_statements += 1
        finally:
            self._grouped_depth -= 1
        self.grouped_rows += len(rows)

    def _apply_bulk_removal(
        self,
        db: Database,
        level: int,
        node_id: int,
        slot: int,
        n: int,
        total: float,
        rmin: float,
        rmax: float,
    ) -> None:
        """Grouped analogue of ``_apply_delta`` with ``removed_value``:
        count/sum decrement exactly; min/max recompute when any removed
        value touched the pre-removal extremes (``SlotCache.remove_bulk``'s
        criterion — extremes cannot tighten between grouped removals, so
        checking against the pre-removal row matches the sequential
        outcome)."""
        cache_name = self.names.cache(level)
        existing = db.table(cache_name).get((node_id, slot))
        if existing is None:
            return  # decrement against an already-expired slot
        new_count = int(existing["value_count"]) - n
        where = (col("node_id") == node_id) & (col("slot_id") == slot)
        if new_count <= 0:
            db.delete(cache_name, where)
            return
        changes: dict[str, object] = {
            "value_count": new_count,
            "value_sum": float(existing["value_sum"]) - total,
        }
        if rmin <= float(existing["value_min"]) or rmax >= float(existing["value_max"]):
            low, high, oldest = self._recompute_extremes(db, level, node_id, slot)
            changes["value_min"] = low
            changes["value_max"] = high
            changes["oldest_ts"] = oldest
        db.update(cache_name, changes, where)

    def _ancestors_of(self, db: Database, leaf_id: int) -> list[tuple[int, int]]:
        """The (node_id, level) ancestor chain of a leaf, nearest first."""
        chain: list[tuple[int, int]] = []
        node_id = leaf_id
        while True:
            parent_id, parent_level = self._parent_of(db, node_id)
            if parent_id is None:
                return chain
            chain.append((parent_id, parent_level))
            node_id = parent_id

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _parent_of(self, db: Database, node_id: int) -> tuple[int | None, int]:
        meta = db.table(self.names.node_meta).get((node_id,))
        if meta is None:
            raise KeyError(f"unknown node {node_id}")
        parent_id = meta["parent_id"]
        if parent_id is None:
            return None, -1
        parent_meta = db.table(self.names.node_meta).get((int(parent_id),))
        assert parent_meta is not None
        return int(parent_id), int(parent_meta["level"])

    def _apply_delta(
        self,
        db: Database,
        level: int,
        node_id: int,
        slot: int,
        d_count: int,
        d_sum: float,
        merge_min: float | None = None,
        merge_max: float | None = None,
        merge_oldest: float | None = None,
        removed_value: float | None = None,
    ) -> None:
        """Apply a delta to one (node, slot) cache row.

        ``removed_value`` not ``None`` marks a shrink: the row's min/max
        may be invalidated, so they are recomputed from the children
        (the paper's non-decrementable-aggregate path).
        """
        cache_name = self.names.cache(level)
        table = db.table(cache_name)
        key = (node_id, slot)
        existing = table.get(key)
        if existing is None:
            if d_count <= 0:
                return  # decrement against an already-expired slot
            db.insert(
                cache_name,
                [
                    {
                        "node_id": node_id,
                        "slot_id": slot,
                        "value_count": d_count,
                        "value_sum": d_sum,
                        "value_min": merge_min if merge_min is not None else d_sum,
                        "value_max": merge_max if merge_max is not None else d_sum,
                        "oldest_ts": merge_oldest if merge_oldest is not None else 0.0,
                    }
                ],
            )
            return
        new_count = int(existing["value_count"]) + d_count
        where = (col("node_id") == node_id) & (col("slot_id") == slot)
        if new_count <= 0:
            db.delete(cache_name, where)
            return
        changes: dict[str, object] = {
            "value_count": new_count,
            "value_sum": float(existing["value_sum"]) + d_sum,
        }
        if removed_value is not None:
            low, high, oldest = self._recompute_extremes(db, level, node_id, slot)
            changes["value_min"] = low
            changes["value_max"] = high
            changes["oldest_ts"] = oldest
        else:
            if merge_min is not None:
                changes["value_min"] = min(float(existing["value_min"]), merge_min)
            if merge_max is not None:
                changes["value_max"] = max(float(existing["value_max"]), merge_max)
            if merge_oldest is not None:
                changes["oldest_ts"] = min(float(existing["oldest_ts"]), merge_oldest)
        db.update(cache_name, changes, where)

    def _recompute_extremes(
        self, db: Database, level: int, node_id: int, slot: int
    ) -> tuple[float, float, float]:
        """Min / max / oldest over the children's same-slot data."""
        low, high, oldest = math.inf, -math.inf, math.inf
        children = db.table(self.names.layer(level)).scan(col("node_id") == node_id)
        for edge in children:
            child_id = int(edge["child_id"])
            child_meta = db.table(self.names.node_meta).get((child_id,))
            assert child_meta is not None
            if child_meta["is_leaf"]:
                rows = db.table(self.names.leaf_cache).scan(
                    (col("leaf_id") == child_id) & (col("slot_id") == slot)
                )
                for r in rows:
                    low = min(low, float(r["value"]))
                    high = max(high, float(r["value"]))
                    oldest = min(oldest, float(r["timestamp"]))
            else:
                row = db.table(self.names.cache(int(child_meta["level"]))).get(
                    (child_id, slot)
                )
                if row is not None:
                    low = min(low, float(row["value_min"]))
                    high = max(high, float(row["value_max"]))
                    oldest = min(oldest, float(row["oldest_ts"]))
        return low, high, oldest

    def _enforce_capacity(self, db: Database) -> None:
        """LRF eviction from the oldest occupied slot until the leaf
        cache fits the size constraint."""
        capacity = self.config.cache_capacity
        if capacity is None:
            return
        leaf_cache = db.table(self.names.leaf_cache)
        while len(leaf_cache) > capacity:
            oldest_slot = min(int(r["slot_id"]) for r in leaf_cache)
            victims = sorted(
                (r for r in leaf_cache if int(r["slot_id"]) == oldest_slot),
                key=lambda r: float(r["fetched_at"]),
            )
            overflow = len(leaf_cache) - capacity
            victim_ids = [int(r["sensor_id"]) for r in victims[:overflow]]
            if not victim_ids:
                break
            db.delete(self.names.leaf_cache, col("sensor_id").in_(victim_ids))
