"""The relational COLR-Tree (Section VI of the paper).

The paper's production implementation represents the tree as *layer
tables* (one per tree level, ``{node id, child id, child bounding box,
child weight}``), the caches as *cache tables* (``{node id, slot id,
value, value weight}``), traverses by joining adjacent layers, and
maintains the caches with four AFTER triggers.  This package rebuilds
that design on :mod:`repro.relational`:

``build_schema`` / ``load_tree``
    Create the layer / cache / sensor / leaf-cache tables and populate
    them from a bulk-built :class:`~repro.core.node.COLRNode` hierarchy.
``install_triggers``
    The roll, slot-insert, slot-delete and slot-update triggers.
``RelCOLRTree``
    The access-method facade: reading insertion through DML (exercising
    the trigger cascade), the cache-read access method, and the
    sensor-selection access method.

The in-memory :class:`~repro.core.tree.COLRTree` and this implementation
are kept behaviourally equivalent; ``tests/relcolr`` asserts the
equivalence on shared workloads.
"""

from repro.relcolr.schema import SchemaNames, build_schema
from repro.relcolr.loader import load_tree
from repro.relcolr.triggers import install_triggers
from repro.relcolr.tree import RelCOLRTree
from repro.relcolr.joins import descend_by_joins

__all__ = [
    "SchemaNames",
    "build_schema",
    "descend_by_joins",
    "load_tree",
    "install_triggers",
    "RelCOLRTree",
]
