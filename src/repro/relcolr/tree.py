"""The relational COLR-Tree facade and its two access methods.

``RelCOLRTree`` owns a :class:`~repro.relational.Database` holding the
layer / cache / sensor / leaf-cache tables of one tree, with the four
maintenance triggers installed.  All state changes flow through DML —
inserting a probed reading is a DELETE + INSERT on the leaf-cache table
and everything else happens in the trigger cascade, exactly as in the
paper's SQL Server deployment.

Access methods (Section VI-A):

* **cache read** — a per-layer union, top-down: cached aggregates of
  nodes entirely inside the query region with usable slots, skipping
  nodes whose ancestor already contributed (the containment-dedup
  predicate), then fresh leaf readings with an explicit timestamp check.
* **sensor selection** — the join-style descent that partitions the
  sample target over child rows by cache-discounted, overlap-weighted
  shares and returns the sensor ids the front end should probe.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.aggregates import AggregateSketch
from repro.core.build import build_colr_tree
from repro.core.config import COLRTreeConfig
from repro.core.lookup import QueryAnswer, Region, TerminalRecord, region_bbox
from repro.core.slots import slot_of
from repro.geometry import GeoPoint, Rect
from repro.relational import Database, col
from repro.relcolr.loader import load_tree, tree_depth
from repro.relcolr.schema import SchemaNames
from repro.relcolr.triggers import MaintenanceConfig, install_triggers
from repro.sensors.network import SensorNetwork
from repro.sensors.sensor import Reading, Sensor
from repro.transport.config import TransportConfig
from repro.transport.dispatcher import ProbeDispatcher


class RelCOLRTree:
    """COLR-Tree implemented as relations + triggers."""

    def __init__(
        self,
        sensors: Sequence[Sensor],
        config: COLRTreeConfig | None = None,
        network: SensorNetwork | None = None,
        names: SchemaNames | None = None,
        build_method: str = "str",
        availability_model=None,
        transport: TransportConfig | None = None,
        pager=None,
    ) -> None:
        self.config = config if config is not None else COLRTreeConfig()
        self.network = network
        self.availability_model = availability_model
        # Probe collection can route through the async transport layer
        # (dedup / retry / overlap) behind this flag; ingestion stays
        # pure DML either way, so the trigger cascade is untouched.
        self.transport_config = transport
        self.dispatcher: ProbeDispatcher | None = None
        if transport is not None and transport.enabled:
            if network is None:
                raise ValueError("transport requires a sensor network")
            self.dispatcher = ProbeDispatcher(network, transport)
        self.names = names if names is not None else SchemaNames()
        # ``pager`` spills every relation to disk through paged B+-trees
        # (see repro.storage); ``wal_sink``, when set by the owning
        # portal, journals each acknowledged cache batch exactly like
        # ``COLRTree.wal_sink`` — callable(readings, fetched_at).
        self.wal_sink = None
        self.db = Database(pager=pager)
        root = build_colr_tree(
            sensors,
            fanout=self.config.fanout,
            leaf_capacity=self.config.leaf_capacity,
            seed=self.config.seed,
            method=build_method,
        )
        self.root_id = root.node_id
        self.n_levels = tree_depth(root)
        load_tree(self.db, root, self.names)
        self.maintenance = install_triggers(
            self.db,
            self.names,
            MaintenanceConfig(
                slot_seconds=self.config.slot_seconds,
                n_slots=self.config.n_slots,
                cache_capacity=self.config.cache_capacity,
            ),
            self.n_levels,
        )
        self.rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def cached_reading_count(self) -> int:
        return len(self.db.table(self.names.leaf_cache))

    def cache_row(self, node_id: int, slot: int) -> dict | None:
        meta = self.db.table(self.names.node_meta).get((node_id,))
        if meta is None or meta["is_leaf"]:
            return None
        return self.db.table(self.names.cache(int(meta["level"]))).get((node_id, slot))

    def node_bbox(self, node_id: int) -> Rect:
        meta = self.db.table(self.names.node_meta).get((node_id,))
        if meta is None:
            raise KeyError(f"unknown node {node_id}")
        return Rect(
            float(meta["min_x"]),
            float(meta["min_y"]),
            float(meta["max_x"]),
            float(meta["max_y"]),
        )

    # ------------------------------------------------------------------
    # Reading maintenance (pure DML; triggers do the bookkeeping)
    # ------------------------------------------------------------------
    def insert_reading(self, reading: Reading, fetched_at: float) -> None:
        """Cache one probed reading.

        A sensor keeps only its newest reading, so an existing row is
        deleted first (firing the slot-delete decrement), then the new
        row is inserted (firing roll + slot-insert).
        """
        leaf_cache = self.names.leaf_cache
        sensor_row = self.db.table(self.names.sensors).get((reading.sensor_id,))
        if sensor_row is None:
            raise KeyError(f"sensor {reading.sensor_id} is not indexed")
        if self.db.table(leaf_cache).contains_key((reading.sensor_id,)):
            self.db.delete(leaf_cache, col("sensor_id") == reading.sensor_id)
        self.db.insert(
            leaf_cache,
            [
                {
                    "sensor_id": reading.sensor_id,
                    "leaf_id": int(sensor_row["leaf_id"]),
                    "slot_id": slot_of(reading.expires_at, self.config.slot_seconds),
                    "value": reading.value,
                    "timestamp": reading.timestamp,
                    "expires_at": reading.expires_at,
                    "fetched_at": fetched_at,
                }
            ],
        )
        if self.wal_sink is not None:
            self.wal_sink([reading], fetched_at)

    def insert_readings_batch(self, readings: Sequence[Reading], fetched_at: float) -> None:
        """Cache a batch of probed readings as two statements.

        The statement-trigger analogue of
        ``COLRTree.insert_readings_batch``: one DELETE expunges every
        displaced row (firing the grouped slot-delete decrement — one
        merged statement per (ancestor, slot)), then one multi-row
        INSERT adds the batch (firing roll + grouped slot-insert).  A
        sensor appearing more than once keeps its last reading, matching
        the sequential loop's final state.
        """
        batch: dict[int, tuple[Reading, int]] = {}
        sensors_table = self.db.table(self.names.sensors)
        for reading in readings:
            sensor_row = sensors_table.get((reading.sensor_id,))
            if sensor_row is None:
                raise KeyError(f"sensor {reading.sensor_id} is not indexed")
            batch[reading.sensor_id] = (reading, int(sensor_row["leaf_id"]))
        if not batch:
            return
        leaf_cache = self.names.leaf_cache
        leaf_table = self.db.table(leaf_cache)
        displaced = [sid for sid in batch if leaf_table.contains_key((sid,))]
        if displaced:
            self.db.delete(leaf_cache, col("sensor_id").in_(displaced))
        self.db.insert(
            leaf_cache,
            [
                {
                    "sensor_id": sid,
                    "leaf_id": leaf_id,
                    "slot_id": slot_of(reading.expires_at, self.config.slot_seconds),
                    "value": reading.value,
                    "timestamp": reading.timestamp,
                    "expires_at": reading.expires_at,
                    "fetched_at": fetched_at,
                }
                for sid, (reading, leaf_id) in batch.items()
            ],
        )
        if self.wal_sink is not None:
            self.wal_sink(list(readings), fetched_at)

    def expire(self, now: float) -> int:
        """Expunge slots entirely behind ``now`` (explicit roll; the
        insert-driven roll trigger handles the steady state)."""
        boundary = slot_of(now, self.config.slot_seconds)
        return self.db.delete(self.names.leaf_cache, col("slot_id") < boundary)

    # ------------------------------------------------------------------
    # Cache read access method
    # ------------------------------------------------------------------
    def cache_read(
        self,
        region: Region,
        now: float,
        max_staleness: float,
        stats=None,
    ) -> tuple[list[AggregateSketch], list[Reading]]:
        """Usable cached aggregates and readings for a query, deduped by
        containment (an aggregated subtree suppresses its descendants).

        ``stats`` (a :class:`~repro.core.stats.QueryStats`) is metered
        with the cache consultations and row scans when provided."""
        boundary = slot_of(now, self.config.slot_seconds)
        freshness_floor = now - max_staleness
        covered: set[int] = set()
        sketches: list[AggregateSketch] = []
        meta_table = self.db.table(self.names.node_meta)
        for level in range(self.n_levels - 1):
            cache_table = self.db.table(self.names.cache(level))
            node_rows = meta_table.scan(col("level") == level)
            for meta in node_rows:
                node_id = int(meta["node_id"])
                if meta["is_leaf"] or node_id in covered or (
                    meta["parent_id"] is not None and int(meta["parent_id"]) in covered
                ):
                    if meta["parent_id"] is not None and int(meta["parent_id"]) in covered:
                        covered.add(node_id)
                    continue
                bbox = Rect(
                    float(meta["min_x"]),
                    float(meta["min_y"]),
                    float(meta["max_x"]),
                    float(meta["max_y"]),
                )
                if not region.contains_rect(bbox):
                    continue
                rows = cache_table.scan(
                    (col("node_id") == node_id)
                    & (col("slot_id") > boundary)
                    & (col("oldest_ts") >= freshness_floor)
                )
                if stats is not None:
                    stats.cached_nodes_accessed += 1
                    stats.slots_combined += len(rows)
                usable = sum(int(r["value_count"]) for r in rows)
                if usable >= int(meta["weight"]):
                    for r in rows:
                        sketches.append(_sketch_of_row(r))
                    covered.add(node_id)
        # Transitive closure over the remaining levels (in particular the
        # deepest leaf level, which the aggregate loop never visits), so
        # leaf readings under a covered aggregate are not double counted.
        for meta in sorted(meta_table.scan(), key=lambda m: int(m["level"])):
            parent_id = meta["parent_id"]
            if parent_id is not None and int(parent_id) in covered:
                covered.add(int(meta["node_id"]))
        readings = self._fresh_leaf_readings(region, now, max_staleness, covered)
        return sketches, readings

    def _fresh_leaf_readings(
        self,
        region: Region,
        now: float,
        max_staleness: float,
        covered: set[int],
    ) -> list[Reading]:
        """Leaf-layer cache read: explicit timestamp + expiry predicates
        (Section VI-A's extra leaf-level comparison)."""
        boundary = slot_of(now, self.config.slot_seconds)
        rows = self.db.table(self.names.leaf_cache).scan(
            (col("slot_id") >= boundary)
            & (col("expires_at") > now)
            & (col("timestamp") >= now - max_staleness)
        )
        out = []
        for row in rows:
            if int(row["leaf_id"]) in covered:
                continue
            sensor_row = self.db.table(self.names.sensors).get((int(row["sensor_id"]),))
            assert sensor_row is not None
            loc = GeoPoint(float(sensor_row["x"]), float(sensor_row["y"]))
            if not region.contains_point(loc):
                continue
            out.append(
                Reading(
                    sensor_id=int(row["sensor_id"]),
                    value=float(row["value"]),
                    timestamp=float(row["timestamp"]),
                    expires_at=float(row["expires_at"]),
                )
            )
        return out

    # ------------------------------------------------------------------
    # Sensor selection access method
    # ------------------------------------------------------------------
    def sensor_selection(
        self,
        region: Region,
        now: float,
        max_staleness: float,
        target_size: float,
        stats=None,
    ) -> list[int]:
        """Sensor ids the front end should probe for this query.

        A frontier descent over the layer tables mirroring Algorithm 1:
        each node's target is split over child rows by weight x overlap
        and discounted by the child's usable cached weight; leaf picks
        are oversampled by historical availability when an
        ``availability_model`` is attached; shortfalls (cache-covered
        or non-overlapping children, exhausted leaves) are
        redistributed over the remaining frontier (Algorithm 2).
        """
        if target_size <= 0:
            return []
        query_bbox = region_bbox(region)
        boundary = slot_of(now, self.config.slot_seconds)
        freshness_floor = now - max_staleness
        picks: list[int] = []
        # Frontier entries are mutable so redistribution can boost them.
        frontier: list[list] = [[self.root_id, 0, float(target_size)]]
        meta_table = self.db.table(self.names.node_meta)

        def redistribute(shortfall: float) -> None:
            live = [e for e in frontier if e[2] > 0]
            total = sum(e[2] for e in live)
            if shortfall <= 0 or total <= 0:
                return
            for entry in live:
                entry[2] += shortfall * entry[2] / total

        while frontier:
            node_id, level, r = frontier.pop()
            if r <= 0:
                continue
            if stats is not None:
                stats.nodes_traversed += 1
            meta = meta_table.get((node_id,))
            assert meta is not None
            if meta["is_leaf"]:
                leaf_target = r
                if self.availability_model is not None and self.config.oversampling_enabled:
                    ids = [
                        int(row["sensor_id"])
                        for row in self.db.table(self.names.sensors).scan(
                            col("leaf_id") == node_id
                        )
                    ]
                    leaf_target = r / self.availability_model.mean_estimate(ids)
                chosen = self._pick_leaf_sensors(
                    node_id, region, now, max_staleness, leaf_target
                )
                picks.extend(chosen)
                if self.config.redistribution_enabled and len(chosen) < r:
                    redistribute(r - len(chosen))
                continue
            edges = self.db.table(self.names.layer(level)).scan(col("node_id") == node_id)
            weighted: list[tuple[dict, float]] = []
            total = 0.0
            for edge in edges:
                child_bbox = Rect(
                    float(edge["child_min_x"]),
                    float(edge["child_min_y"]),
                    float(edge["child_max_x"]),
                    float(edge["child_max_y"]),
                )
                overlap = child_bbox.overlap_fraction(query_bbox)
                if overlap <= 0.0 and not region.intersects_rect(child_bbox):
                    continue
                w = int(edge["child_weight"]) * max(overlap, 1e-12)
                weighted.append((edge, w))
                total += w
            if total <= 0:
                if self.config.redistribution_enabled:
                    redistribute(r)
                continue
            assigned = 0.0
            for edge, w in weighted:
                child_id = int(edge["child_id"])
                share = r * w / total
                child_meta = meta_table.get((child_id,))
                assert child_meta is not None
                # Discount the child's usable cached weight (the
                # cache-sufficiency check of the access method).
                cached = self._usable_cached_weight(
                    child_id, child_meta, boundary, freshness_floor
                )
                need = share - cached
                assigned += min(share, float(cached))
                if need <= 0:
                    continue
                assigned += need
                frontier.append([child_id, int(child_meta["level"]), need])
            if self.config.redistribution_enabled and assigned < r:
                redistribute(r - assigned)
        return picks

    def _usable_cached_weight(
        self, node_id: int, meta: dict, boundary: int, freshness_floor: float
    ) -> int:
        if meta["is_leaf"]:
            rows = self.db.table(self.names.leaf_cache).scan(
                (col("leaf_id") == node_id)
                & (col("slot_id") > boundary)
                & (col("timestamp") >= freshness_floor)
            )
            return len(rows)
        # "aggregating cache value weights across slots" (Section VI-A):
        # one GROUP BY over the node's usable slots.
        groups = self.db.group_aggregate(
            self.names.cache(int(meta["level"])),
            ["node_id"],
            "value_count",
            (col("node_id") == node_id)
            & (col("slot_id") > boundary)
            & (col("oldest_ts") >= freshness_floor),
        )
        return int(groups[0]["sum"]) if groups else 0

    def _pick_leaf_sensors(
        self,
        leaf_id: int,
        region: Region,
        now: float,
        max_staleness: float,
        target: float,
    ) -> list[int]:
        boundary = slot_of(now, self.config.slot_seconds)
        cached_ids = {
            int(r["sensor_id"])
            for r in self.db.table(self.names.leaf_cache).scan(
                (col("leaf_id") == leaf_id)
                & (col("slot_id") >= boundary)
                & (col("timestamp") >= now - max_staleness)
            )
        }
        pool = []
        for row in self.db.table(self.names.sensors).scan(col("leaf_id") == leaf_id):
            if int(row["sensor_id"]) in cached_ids:
                continue
            if region.contains_point(GeoPoint(float(row["x"]), float(row["y"]))):
                pool.append(int(row["sensor_id"]))
        k = int(math.floor(target))
        if target - k > 0 and self.rng.random() < (target - k):
            k += 1
        if k >= len(pool):
            return pool
        if k <= 0:
            return []
        chosen = self.rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in chosen]

    # ------------------------------------------------------------------
    # End-to-end query
    # ------------------------------------------------------------------
    def query(
        self,
        region: Region,
        now: float,
        max_staleness: float,
        sample_size: int | None = None,
    ) -> QueryAnswer:
        """Sensor selection → probe → DML maintenance → cache read."""
        if sample_size is None:
            sample_size = self.config.default_sample_size
        self.expire(now)
        answer = QueryAnswer()
        target = sample_size if self.config.sampling_enabled else 10**9
        to_probe = self.sensor_selection(
            region, now, max_staleness, target, stats=answer.stats
        )
        if to_probe:
            if self.network is None:
                raise RuntimeError("this tree has no sensor network attached")
            if self.dispatcher is not None:
                # Transport path: the dispatcher's dedup/cooldown/retry
                # tables apply; ``tree=None`` keeps ingestion out of the
                # dispatcher so it stays relational DML below.
                rnd = self.dispatcher.collect(
                    to_probe, now, tree=None, max_staleness=max_staleness
                )
                readings = rnd.readings
                latency = rnd.latency_seconds
            else:
                result = self.network.probe(to_probe, now)
                readings = result.readings
                latency = result.latency_seconds
            answer.stats.sensors_probed += len(to_probe)
            answer.stats.probe_successes += len(readings)
            answer.stats.probe_batches += 1
            answer.stats.collection_latency_seconds += latency
            # Batched ingestion: the probe round enters the cache as one
            # DELETE + one multi-row INSERT, so the grouped triggers
            # issue one statement per (ancestor, slot) for the round.
            self.insert_readings_batch(list(readings.values()), fetched_at=now)
            answer.probed_readings.extend(readings.values())
        sketches, cached = self.cache_read(
            region, now, max_staleness, stats=answer.stats
        )
        probed_ids = {r.sensor_id for r in answer.probed_readings}
        answer.cached_readings.extend(
            r for r in cached if r.sensor_id not in probed_ids
        )
        answer.cached_sketches.extend(sketches)
        answer.terminals.append(
            TerminalRecord(
                node_id=self.root_id,
                level=0,
                target=float(sample_size),
                results=answer.result_weight,
                used_cache=bool(sketches or cached),
            )
        )
        return answer


def _sketch_of_row(row: dict) -> AggregateSketch:
    return AggregateSketch(
        count=int(row["value_count"]),
        total=float(row["value_sum"]),
        minimum=float(row["value_min"]),
        maximum=float(row["value_max"]),
        oldest_timestamp=float(row["oldest_ts"]),
    )
