"""Relational schema of the COLR-Tree (Section VI-A).

Per the paper, each tree layer ``k`` (holding the edges from level-k
nodes to their children) gets a table::

    layer_k = {node_id, child_id, child bounding box, child_weight}

and each internal level gets a cache table.  The paper stores
``{node id, slot id, value, value weight}``; we widen ``value`` to the
full aggregate sketch (count / sum / min / max / oldest timestamp) so
any standard aggregate can be answered — the weight column of the paper
is our ``value_count``.

Two pragmatic additions to the paper's minimal schema (documented in
DESIGN.md): a ``node_meta`` table with per-node level / bbox / weight
(the paper keeps the root's metadata in the application; we keep it
queryable), and a ``sensors`` table mapping sensors to their leaf.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational import Column, Database, TableSchema


@dataclass(frozen=True, slots=True)
class SchemaNames:
    """Table-name scheme for one COLR-Tree instance.

    ``layer(k)`` is the edge table from level-k nodes to their children;
    ``cache(k)`` the aggregate cache of level-k internal nodes;
    ``leaf_cache`` holds raw readings; ``sensors`` the static metadata.
    """

    prefix: str = "colr"

    def layer(self, level: int) -> str:
        return f"{self.prefix}_layer_{level}"

    def cache(self, level: int) -> str:
        return f"{self.prefix}_cache_{level}"

    @property
    def leaf_cache(self) -> str:
        return f"{self.prefix}_leaf_cache"

    @property
    def sensors(self) -> str:
        return f"{self.prefix}_sensors"

    @property
    def node_meta(self) -> str:
        return f"{self.prefix}_node_meta"


_BBOX_COLUMNS = [
    ("min_x", "float"),
    ("min_y", "float"),
    ("max_x", "float"),
    ("max_y", "float"),
]


def layer_schema(name: str) -> TableSchema:
    """One layer table: parent→child edges with child bbox and weight."""
    return TableSchema.of(
        name,
        [("node_id", "int"), ("child_id", "int")]
        + [(f"child_{c}", t) for c, t in _BBOX_COLUMNS]
        + [("child_weight", "int")],
        primary_key=["node_id", "child_id"],
    )


def cache_schema(name: str) -> TableSchema:
    """One cache table: per-(node, slot) aggregate sketch."""
    return TableSchema.of(
        name,
        [
            ("node_id", "int"),
            ("slot_id", "int"),
            ("value_count", "int"),
            ("value_sum", "float"),
            ("value_min", "float"),
            ("value_max", "float"),
            ("oldest_ts", "float"),
        ],
        primary_key=["node_id", "slot_id"],
    )


def leaf_cache_schema(name: str) -> TableSchema:
    """Raw cached readings: one row per sensor (its newest reading)."""
    return TableSchema.of(
        name,
        [
            ("sensor_id", "int"),
            ("leaf_id", "int"),
            ("slot_id", "int"),
            ("value", "float"),
            ("timestamp", "float"),
            ("expires_at", "float"),
            ("fetched_at", "float"),
        ],
        primary_key=["sensor_id"],
    )


def sensors_schema(name: str) -> TableSchema:
    return TableSchema.of(
        name,
        [
            ("sensor_id", "int"),
            ("x", "float"),
            ("y", "float"),
            ("leaf_id", "int"),
            ("expiry_seconds", "float"),
        ],
        primary_key=["sensor_id"],
    )


def node_meta_schema(name: str) -> TableSchema:
    return TableSchema(
        name,
        columns=(
            Column("node_id", "int"),
            Column("level", "int"),
            Column("is_leaf", "bool"),
            Column("weight", "int"),
            Column("parent_id", "int", nullable=True),
            Column("min_x", "float"),
            Column("min_y", "float"),
            Column("max_x", "float"),
            Column("max_y", "float"),
        ),
        primary_key=("node_id",),
    )


def build_schema(db: Database, names: SchemaNames, n_levels: int) -> None:
    """Create every table for a tree of ``n_levels`` levels (root level
    0 through leaf level ``n_levels - 1``), with the secondary indexes
    the access methods and triggers rely on."""
    if n_levels < 1:
        raise ValueError("a tree has at least one level")
    for level in range(n_levels - 1):
        layer = db.create_table(layer_schema(names.layer(level)))
        layer.create_index("node_id")
        layer.create_index("child_id")
        cache = db.create_table(cache_schema(names.cache(level)))
        cache.create_index("node_id")
        cache.create_index("slot_id")
    leaf_cache = db.create_table(leaf_cache_schema(names.leaf_cache))
    leaf_cache.create_index("leaf_id")
    leaf_cache.create_index("slot_id")
    sensors = db.create_table(sensors_schema(names.sensors))
    sensors.create_index("leaf_id")
    meta = db.create_table(node_meta_schema(names.node_meta))
    meta.create_index("level")
    meta.create_index("parent_id")
