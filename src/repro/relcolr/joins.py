"""Join-based layer descent (Section VI-A, literally).

The paper describes the sensor-selection access method as "a multiway
join on the layer tables, executed as a left deep join tree that joins
each layer's node table and cache table from root to leaf layer".  The
frontier descent in :mod:`repro.relcolr.tree` implements the same
*semantics* imperatively; this module provides the declarative
join-pipeline form for fidelity: each step equijoins the current
frontier relation with the next layer table under the spatial predicate
and left-joins the cache aggregates, producing the candidate node set
per layer.

`descend_by_joins` returns, per layer, the list of candidate rows
``{node_id, weight, cached_weight, bbox...}`` — exactly the relation
the sampling heuristic consumes.  `tests/relcolr/test_joins.py` asserts
it reaches the same node sets as the imperative descent.
"""

from __future__ import annotations

from repro.core.lookup import Region, region_bbox
from repro.core.slots import slot_of
from repro.geometry import Rect
from repro.relational import BBoxIntersects, Database, col
from repro.relcolr.schema import SchemaNames


def descend_by_joins(
    db: Database,
    names: SchemaNames,
    root_id: int,
    n_levels: int,
    region: Region,
    now: float,
    max_staleness: float,
    slot_seconds: float,
) -> list[list[dict]]:
    """Candidate nodes per layer via declarative joins.

    Layer ``k``'s candidates are the children of layer ``k-1``'s
    candidates whose bounding boxes intersect the query region,
    annotated with their usable cached weight from the cache table.
    The returned list has one entry per tree level below the root.
    """
    boundary = slot_of(now, slot_seconds)
    freshness_floor = now - max_staleness
    query_bbox = region_bbox(region)
    spatial = BBoxIntersects(
        "child_min_x", "child_min_y", "child_max_x", "child_max_y", query_bbox
    )
    frontier_ids = {root_id}
    per_layer: list[list[dict]] = []
    for level in range(n_levels - 1):
        # Join the frontier against this layer's edges under the
        # spatial predicate — the layer-to-layer step of the left-deep
        # join tree.
        edges = db.table(names.layer(level)).scan(
            col("node_id").in_(frontier_ids) & spatial
        )
        if not edges:
            per_layer.append([])
            frontier_ids = set()
            continue
        # Left-join the cache table: usable cached weight per child.
        cached_by_node: dict[int, int] = {}
        child_level = level + 1
        if child_level < n_levels - 1:
            for group in db.group_aggregate(
                names.cache(child_level),
                ["node_id"],
                "value_count",
                col("node_id").in_(int(e["child_id"]) for e in edges)
                & (col("slot_id") > boundary)
                & (col("oldest_ts") >= freshness_floor),
            ):
                cached_by_node[int(group["node_id"])] = int(group["sum"])
        else:
            # Leaf layer: count fresh raw readings per leaf.
            rows = db.table(names.leaf_cache).scan(
                col("leaf_id").in_(int(e["child_id"]) for e in edges)
                & (col("slot_id") > boundary)
                & (col("timestamp") >= freshness_floor)
            )
            for row in rows:
                leaf = int(row["leaf_id"])
                cached_by_node[leaf] = cached_by_node.get(leaf, 0) + 1
        layer_rows = []
        next_frontier: set[int] = set()
        for edge in edges:
            child_id = int(edge["child_id"])
            next_frontier.add(child_id)
            layer_rows.append(
                {
                    "node_id": child_id,
                    "parent_id": int(edge["node_id"]),
                    "weight": int(edge["child_weight"]),
                    "cached_weight": cached_by_node.get(child_id, 0),
                    "bbox": Rect(
                        float(edge["child_min_x"]),
                        float(edge["child_min_y"]),
                        float(edge["child_max_x"]),
                        float(edge["child_max_y"]),
                    ),
                }
            )
        per_layer.append(layer_rows)
        frontier_ids = next_frontier
    return per_layer
