"""Populate the relational schema from a bulk-built node hierarchy.

The tree shape itself is produced by :func:`repro.core.build.build_colr_tree`
(the k-means batch build of Section III-C); this loader flattens it into
the layer tables, seeds ``node_meta`` and the ``sensors`` table, and
returns the number of levels so callers can size their per-layer loops.
"""

from __future__ import annotations

from repro.core.node import COLRNode
from repro.relational import Database
from repro.relcolr.schema import SchemaNames, build_schema


def tree_depth(root: COLRNode) -> int:
    """Number of levels: root level 0 through the deepest leaf."""
    deepest = 0
    for node in root.iter_subtree():
        deepest = max(deepest, node.level)
    return deepest + 1


def load_tree(db: Database, root: COLRNode, names: SchemaNames | None = None) -> SchemaNames:
    """Create the schema and load one tree; returns the name scheme."""
    names = names if names is not None else SchemaNames()
    n_levels = tree_depth(root)
    build_schema(db, names, n_levels)

    meta_rows = []
    layer_rows: dict[int, list[dict]] = {}
    sensor_rows = []
    for node in root.iter_subtree():
        meta_rows.append(
            {
                "node_id": node.node_id,
                "level": node.level,
                "is_leaf": node.is_leaf,
                "weight": node.weight,
                "parent_id": node.parent.node_id if node.parent is not None else None,
                "min_x": node.bbox.min_x,
                "min_y": node.bbox.min_y,
                "max_x": node.bbox.max_x,
                "max_y": node.bbox.max_y,
            }
        )
        for child in node.children:
            layer_rows.setdefault(node.level, []).append(
                {
                    "node_id": node.node_id,
                    "child_id": child.node_id,
                    "child_min_x": child.bbox.min_x,
                    "child_min_y": child.bbox.min_y,
                    "child_max_x": child.bbox.max_x,
                    "child_max_y": child.bbox.max_y,
                    "child_weight": child.weight,
                }
            )
        if node.is_leaf:
            for sensor in node.sensors:
                sensor_rows.append(
                    {
                        "sensor_id": sensor.sensor_id,
                        "x": sensor.location.x,
                        "y": sensor.location.y,
                        "leaf_id": node.node_id,
                        "expiry_seconds": sensor.expiry_seconds,
                    }
                )

    db.insert(names.node_meta, meta_rows)
    for level, rows in layer_rows.items():
        db.insert(names.layer(level), rows)
    db.insert(names.sensors, sensor_rows)
    return names
