"""Declarative row predicates.

Predicates are small composable objects evaluated per row.  Comparisons
additionally expose their column and operator so tables can satisfy
equality predicates from hash indexes instead of scanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.geometry import Rect

Row = Mapping[str, object]


class Predicate:
    """Base class; subclasses implement ``matches``."""

    def matches(self, row: Row) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "AllOf":
        return AllOf([self, other])

    def __or__(self, other: "Predicate") -> "AnyOf":
        return AnyOf([self, other])


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (the default WHERE clause)."""

    def matches(self, row: Row) -> bool:
        return True


_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``row[column] <op> value``; null column values never match."""

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}")

    def matches(self, row: Row) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        return _OPS[self.op](actual, self.value)


@dataclass(frozen=True)
class Between(Predicate):
    """Closed-interval column test (the ``time BETWEEN a AND b`` clause)."""

    column: str
    low: object
    high: object

    def matches(self, row: Row) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        return self.low <= actual <= self.high


@dataclass(frozen=True)
class InSet(Predicate):
    """Column-in-collection membership test."""

    column: str
    values: frozenset

    def __init__(self, column: str, values: Iterable[object]) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", frozenset(values))

    def matches(self, row: Row) -> bool:
        return row.get(self.column) in self.values


@dataclass(frozen=True)
class BBoxIntersects(Predicate):
    """Spatial filter: the row's stored bounding box (four float
    columns) intersects a query rectangle — the join predicate of the
    paper's layer-table traversal."""

    min_x_col: str
    min_y_col: str
    max_x_col: str
    max_y_col: str
    region: Rect

    def matches(self, row: Row) -> bool:
        try:
            box = Rect(
                float(row[self.min_x_col]),
                float(row[self.min_y_col]),
                float(row[self.max_x_col]),
                float(row[self.max_y_col]),
            )
        except (KeyError, TypeError):
            return False
        return self.region.intersects(box)


@dataclass(frozen=True)
class AllOf(Predicate):
    """Conjunction."""

    parts: tuple[Predicate, ...]

    def __init__(self, parts: Iterable[Predicate]) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def matches(self, row: Row) -> bool:
        return all(p.matches(row) for p in self.parts)


@dataclass(frozen=True)
class AnyOf(Predicate):
    """Disjunction."""

    parts: tuple[Predicate, ...]

    def __init__(self, parts: Iterable[Predicate]) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def matches(self, row: Row) -> bool:
        return any(p.matches(row) for p in self.parts)


class _ColumnExpr:
    """Fluent builder: ``col("x") >= 3`` produces a Comparison."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __eq__(self, value: object) -> Comparison:  # type: ignore[override]
        return Comparison(self._name, "==", value)

    def __ne__(self, value: object) -> Comparison:  # type: ignore[override]
        return Comparison(self._name, "!=", value)

    def __lt__(self, value: object) -> Comparison:
        return Comparison(self._name, "<", value)

    def __le__(self, value: object) -> Comparison:
        return Comparison(self._name, "<=", value)

    def __gt__(self, value: object) -> Comparison:
        return Comparison(self._name, ">", value)

    def __ge__(self, value: object) -> Comparison:
        return Comparison(self._name, ">=", value)

    def between(self, low: object, high: object) -> Between:
        return Between(self._name, low, high)

    def in_(self, values: Iterable[object]) -> InSet:
        return InSet(self._name, values)

    __hash__ = None  # type: ignore[assignment]


def col(name: str) -> _ColumnExpr:
    """Column expression entry point: ``col("slot_id") >= 4``."""
    return _ColumnExpr(name)
