"""Table schemas.

Schemas are intentionally light: a named, ordered set of typed columns
plus a primary key.  Types are validated on insert (exactly strict
enough to catch the bugs that matter: a misspelled column, a string
where a number belongs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

_PY_TYPES = {
    "int": int,
    "float": (int, float),
    "text": str,
    "bool": bool,
}


@dataclass(frozen=True, slots=True)
class Column:
    """One typed column.  ``nullable`` permits ``None`` values."""

    name: str
    type: str
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.type not in _PY_TYPES:
            raise ValueError(
                f"unknown column type {self.type!r}; expected one of {sorted(_PY_TYPES)}"
            )

    def validate(self, value: object) -> None:
        """Raise ``TypeError`` unless ``value`` fits the column."""
        if value is None:
            if not self.nullable:
                raise TypeError(f"column {self.name!r} is not nullable")
            return
        expected = _PY_TYPES[self.type]
        if self.type == "float" and isinstance(value, bool):
            raise TypeError(f"column {self.name!r} expects a number, got bool")
        if not isinstance(value, expected):
            raise TypeError(
                f"column {self.name!r} expects {self.type}, got {type(value).__name__}"
            )


@dataclass(frozen=True)
class TableSchema:
    """An ordered column list with a (possibly composite) primary key."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...]
    _by_name: dict[str, Column] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a table needs at least one column")
        by_name = {}
        for column in self.columns:
            if column.name in by_name:
                raise ValueError(f"duplicate column {column.name!r}")
            by_name[column.name] = column
        if not self.primary_key:
            raise ValueError("a table needs a primary key")
        for key_col in self.primary_key:
            if key_col not in by_name:
                raise ValueError(f"primary key column {key_col!r} not in schema")
            if by_name[key_col].nullable:
                raise ValueError(f"primary key column {key_col!r} cannot be nullable")
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def of(
        cls,
        name: str,
        columns: list[tuple[str, str]] | list[Column],
        primary_key: list[str] | tuple[str, ...],
    ) -> "TableSchema":
        """Convenience constructor from ``(name, type)`` pairs."""
        cols = tuple(
            c if isinstance(c, Column) else Column(name=c[0], type=c[1]) for c in columns
        )
        return cls(name=name, columns=cols, primary_key=tuple(primary_key))

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def validate_row(self, row: dict[str, object]) -> None:
        """Check a full row against the schema."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise KeyError(f"unknown columns for {self.name!r}: {sorted(unknown)}")
        for column in self.columns:
            if column.name not in row:
                if column.nullable:
                    continue
                raise KeyError(f"missing column {column.name!r} for {self.name!r}")
            column.validate(row[column.name])

    def key_of(self, row: dict[str, object]) -> tuple:
        """Primary key tuple of a row."""
        return tuple(row[k] for k in self.primary_key)
