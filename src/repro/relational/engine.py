"""The database facade: DDL, trigger registration, and DML with
statement-trigger dispatch, plus the equijoin the layer-table traversal
uses.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.relational.predicate import Predicate, TruePredicate
from repro.relational.schema import TableSchema
from repro.relational.table import Row, Table
from repro.relational.triggers import Trigger, TriggerEvent, TriggerInvocation, TriggerSet


class Database:
    """A named collection of tables plus a trigger set.

    ``pager`` (optional, a :class:`repro.storage.pager.Pager`) spills
    every table to disk through a paged B+-tree: reads stay in-memory,
    mutations write through, and creating a table whose B+-tree already
    holds rows reloads them (database reopen).  ``None`` keeps the
    historical purely in-memory behavior.
    """

    def __init__(self, max_trigger_depth: int = 32, pager=None) -> None:
        self._tables: dict[str, Table] = {}
        self._triggers = TriggerSet(max_depth=max_trigger_depth)
        self._pager = pager

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise ValueError(f"table {schema.name!r} already exists")
        table = Table(schema)
        if self._pager is not None:
            from repro.storage.bplus import BPlusTree, PagedTableBacking

            backing = PagedTableBacking(BPlusTree(self._pager, schema.name))
            table.attach_backing(backing, load=len(backing.tree) > 0)
        self._tables[schema.name] = table
        return table

    def sync(self) -> None:
        """Flush the paged tables to disk (no-op without a pager)."""
        if self._pager is not None:
            self._pager.sync()

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        table = self._tables.pop(name)
        if table.backing is not None:
            table.backing.clear()

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def create_trigger(self, trigger: Trigger) -> None:
        if trigger.table not in self._tables:
            raise KeyError(f"trigger targets unknown table {trigger.table!r}")
        self._triggers.register(trigger)

    def drop_trigger(self, name: str) -> None:
        self._triggers.drop(name)

    # ------------------------------------------------------------------
    # DML (statement-level, trigger-firing)
    # ------------------------------------------------------------------
    def insert(self, table_name: str, rows: Iterable[Row]) -> int:
        """Insert rows as one statement; fires AFTER INSERT once."""
        table = self.table(table_name)
        inserted: list[Row] = []
        for row in rows:
            table._store(dict(row))
            inserted.append(table.get(table.schema.key_of(row)))  # type: ignore[arg-type]
        if inserted:
            self._triggers.fire(
                self,
                TriggerInvocation(
                    table=table_name,
                    event=TriggerEvent.INSERT,
                    inserted=tuple(inserted),
                ),
            )
        return len(inserted)

    def update(
        self,
        table_name: str,
        changes: Row,
        where: Predicate | None = None,
    ) -> int:
        """Set columns on matching rows; fires AFTER UPDATE once with
        old and new row images."""
        table = self.table(table_name)
        keys = table.keys_matching(where if where is not None else TruePredicate())
        old_rows: list[Row] = []
        new_rows: list[Row] = []
        for key in keys:
            old, new = table._modify(key, changes)
            old_rows.append(old)
            new_rows.append(new)
        if keys:
            self._triggers.fire(
                self,
                TriggerInvocation(
                    table=table_name,
                    event=TriggerEvent.UPDATE,
                    inserted=tuple(new_rows),
                    deleted=tuple(old_rows),
                ),
            )
        return len(keys)

    def upsert(self, table_name: str, row: Row) -> None:
        """Insert, or update every non-key column when the key exists.

        Fires the corresponding INSERT or UPDATE trigger — the pattern
        the slot-insert trigger uses to bump aggregate rows.
        """
        table = self.table(table_name)
        key = table.schema.key_of(row)
        if table.contains_key(key):
            changes = {
                c: v for c, v in row.items() if c not in table.schema.primary_key
            }
            key_pred: Predicate | None = None
            from repro.relational.predicate import AllOf, Comparison

            parts = [
                Comparison(k, "==", v)
                for k, v in zip(table.schema.primary_key, key)
            ]
            key_pred = AllOf(parts)
            self.update(table_name, changes, key_pred)
        else:
            self.insert(table_name, [row])

    def delete(self, table_name: str, where: Predicate | None = None) -> int:
        """Delete matching rows; fires AFTER DELETE once."""
        table = self.table(table_name)
        keys = table.keys_matching(where if where is not None else TruePredicate())
        deleted = [table._erase(key) for key in keys]
        if deleted:
            self._triggers.fire(
                self,
                TriggerInvocation(
                    table=table_name,
                    event=TriggerEvent.DELETE,
                    deleted=tuple(dict(r) for r in deleted),
                ),
            )
        return len(deleted)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(
        self,
        table_name: str,
        where: Predicate | None = None,
        columns: Sequence[str] | None = None,
    ) -> list[Row]:
        rows = self.table(table_name).scan(where)
        if columns is None:
            return rows
        return [{c: r.get(c) for c in columns} for r in rows]

    def group_aggregate(
        self,
        table_name: str,
        group_by: Sequence[str],
        value_column: str,
        where: Predicate | None = None,
    ) -> list[Row]:
        """GROUP BY with the standard aggregates over one value column.

        Returns one row per group carrying the grouping columns plus
        ``count`` / ``sum`` / ``min`` / ``max`` of the (non-null)
        values — the shape the access methods need when they aggregate
        cache value weights across slots (Section VI-A).
        """
        if not group_by:
            raise ValueError("group_by needs at least one column")
        table = self.table(table_name)
        for column in list(group_by) + [value_column]:
            table.schema.column(column)
        groups: dict[tuple, dict] = {}
        for row in table.scan(where):
            key = tuple(row.get(c) for c in group_by)
            acc = groups.get(key)
            if acc is None:
                acc = {c: row.get(c) for c in group_by}
                acc.update({"count": 0, "sum": 0.0, "min": None, "max": None})
                groups[key] = acc
            value = row.get(value_column)
            if value is None:
                continue
            v = float(value)  # type: ignore[arg-type]
            acc["count"] += 1
            acc["sum"] += v
            acc["min"] = v if acc["min"] is None else min(acc["min"], v)
            acc["max"] = v if acc["max"] is None else max(acc["max"], v)
        return [groups[k] for k in sorted(groups, key=repr)]

    def equijoin(
        self,
        left_table: str,
        right_table: str,
        left_column: str,
        right_column: str,
        where: Predicate | None = None,
        left_where: Predicate | None = None,
        right_where: Predicate | None = None,
    ) -> list[Row]:
        """Hash equijoin; output columns are prefixed ``<table>.<col>``.

        ``where`` filters the joined rows (columns addressed with the
        prefixed names); the per-side filters run before the join.
        """
        left_rows = self.table(left_table).scan(left_where)
        right_rows = self.table(right_table).scan(right_where)
        by_value: dict[object, list[Row]] = {}
        for row in right_rows:
            by_value.setdefault(row.get(right_column), []).append(row)
        out: list[Row] = []
        predicate = where if where is not None else TruePredicate()
        for lrow in left_rows:
            for rrow in by_value.get(lrow.get(left_column), ()):  # type: ignore[arg-type]
                joined: Row = {f"{left_table}.{k}": v for k, v in lrow.items()}
                joined.update({f"{right_table}.{k}": v for k, v in rrow.items()})
                if predicate.matches(joined):
                    out.append(joined)
        return out
