"""A miniature in-memory relational engine with statement triggers.

The paper implements COLR-Tree *entirely on top of SQL Server 2005*,
representing the tree and its caches as relations, traversing by
multiway joins, and maintaining the caches with four AFTER triggers
(Section VI).  To reproduce that design faithfully without SQL Server,
this package provides the minimal relational substrate it needs:

* typed tables with primary keys and secondary hash indexes,
* declarative predicates (column comparisons, conjunctions, spatial
  bounding-box tests),
* statement-level AFTER INSERT / UPDATE / DELETE triggers with cascade
  (triggers may issue DML that fires further triggers), and
* equijoins.

:mod:`repro.relcolr` builds the layer-table / cache-table COLR-Tree on
top of this engine.
"""

from repro.relational.schema import Column, TableSchema
from repro.relational.predicate import (
    AllOf,
    AnyOf,
    BBoxIntersects,
    Between,
    Comparison,
    InSet,
    Predicate,
    TruePredicate,
    col,
)
from repro.relational.table import Row, Table
from repro.relational.triggers import Trigger, TriggerEvent
from repro.relational.engine import Database

__all__ = [
    "AllOf",
    "AnyOf",
    "BBoxIntersects",
    "Between",
    "Column",
    "Comparison",
    "Database",
    "InSet",
    "Predicate",
    "Row",
    "Table",
    "TableSchema",
    "Trigger",
    "TriggerEvent",
    "TruePredicate",
    "col",
]
