"""Tables: rows keyed by primary key, with secondary hash indexes.

DML goes through :class:`repro.relational.engine.Database` so that
statement triggers fire; the table itself only manages storage and
index maintenance.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.relational.predicate import AllOf, Comparison, Predicate, TruePredicate
from repro.relational.schema import TableSchema

Row = dict[str, object]


class Table:
    """In-memory heap of rows with a primary key and hash indexes.

    ``backing`` (optional) is a write-through persistence hook — an
    object with ``store(key, row)`` / ``erase(key)`` / ``rows()``
    (see :class:`repro.storage.bplus.PagedTableBacking`).  Reads keep
    coming from memory; every mutation mirrors into the backing, and a
    reopened database reloads the rows from it before serving.
    """

    def __init__(self, schema: TableSchema, backing=None) -> None:
        self.schema = schema
        self._rows: dict[tuple, Row] = {}
        self._indexes: dict[str, dict[object, set[tuple]]] = {}
        self.backing = backing

    def attach_backing(self, backing, load: bool = False) -> None:
        """Attach a persistence backing; with ``load=True`` the backing's
        rows replace the in-memory heap first (database reopen)."""
        self.backing = None
        if load:
            if self._rows:
                raise ValueError(
                    f"table {self.name!r} already has rows; refusing to load"
                )
            for row in backing.rows():
                self._store(row)
        self.backing = backing

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    @property
    def name(self) -> str:
        return self.schema.name

    def create_index(self, column: str) -> None:
        """Build (or rebuild) a secondary hash index on one column."""
        self.schema.column(column)
        index: dict[object, set[tuple]] = {}
        for key, row in self._rows.items():
            index.setdefault(row.get(column), set()).add(key)
        self._indexes[column] = index

    # ------------------------------------------------------------------
    # Storage primitives (engine-internal; use Database for DML)
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> Row | None:
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def contains_key(self, key: tuple) -> bool:
        return key in self._rows

    def _store(self, row: Row) -> None:
        self.schema.validate_row(row)
        key = self.schema.key_of(row)
        if key in self._rows:
            raise KeyError(f"duplicate primary key {key} in table {self.name!r}")
        full = {c.name: row.get(c.name) for c in self.schema.columns}
        self._rows[key] = full
        for column, index in self._indexes.items():
            index.setdefault(full.get(column), set()).add(key)
        if self.backing is not None:
            self.backing.store(key, full)

    def _erase(self, key: tuple) -> Row:
        row = self._rows.pop(key)
        for column, index in self._indexes.items():
            bucket = index.get(row.get(column))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[row.get(column)]
        if self.backing is not None:
            self.backing.erase(key)
        return row

    def _modify(self, key: tuple, changes: Row) -> tuple[Row, Row]:
        """Apply column changes; returns (old, new) copies."""
        if key not in self._rows:
            raise KeyError(f"no row with key {key} in table {self.name!r}")
        old = dict(self._rows[key])
        new = dict(old)
        for column, value in changes.items():
            self.schema.column(column).validate(value)
            new[column] = value
        new_key = self.schema.key_of(new)
        if new_key != key and new_key in self._rows:
            raise KeyError(f"update collides with key {new_key} in {self.name!r}")
        self._erase(key)
        self._store(new)
        return old, new

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def scan(self, where: Predicate | None = None) -> list[Row]:
        """All rows matching a predicate, using hash indexes for
        top-level equality comparisons when available."""
        predicate = where if where is not None else TruePredicate()
        candidates = self._candidate_keys(predicate)
        if candidates is None:
            return [dict(r) for r in self._rows.values() if predicate.matches(r)]
        out = []
        for key in candidates:
            row = self._rows.get(key)
            if row is not None and predicate.matches(row):
                out.append(dict(row))
        return out

    def count(self, where: Predicate | None = None) -> int:
        predicate = where if where is not None else TruePredicate()
        candidates = self._candidate_keys(predicate)
        if candidates is None:
            return sum(1 for r in self._rows.values() if predicate.matches(r))
        return sum(
            1
            for key in candidates
            if key in self._rows and predicate.matches(self._rows[key])
        )

    def keys_matching(self, where: Predicate | None = None) -> list[tuple]:
        predicate = where if where is not None else TruePredicate()
        candidates = self._candidate_keys(predicate)
        pool: Iterable[tuple] = candidates if candidates is not None else self._rows
        return [k for k in pool if k in self._rows and predicate.matches(self._rows[k])]

    def aggregate(
        self,
        column: str,
        fold: Callable[[float, float], float],
        initial: float,
        where: Predicate | None = None,
    ) -> float:
        """Fold one numeric column over matching rows."""
        total = initial
        for row in self.scan(where):
            value = row.get(column)
            if value is not None:
                total = fold(total, float(value))  # type: ignore[arg-type]
        return total

    def _candidate_keys(self, predicate: Predicate) -> set[tuple] | None:
        """Keys from the most selective usable equality index, or None
        when no index applies."""
        comparisons: list[Comparison] = []
        if isinstance(predicate, Comparison):
            comparisons = [predicate]
        elif isinstance(predicate, AllOf):
            comparisons = [p for p in predicate.parts if isinstance(p, Comparison)]
        best: set[tuple] | None = None
        for comp in comparisons:
            if comp.op != "==" or comp.column not in self._indexes:
                continue
            bucket = self._indexes[comp.column].get(comp.value, set())
            if best is None or len(bucket) < len(best):
                best = set(bucket)
        return best
