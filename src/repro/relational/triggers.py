"""Statement-level AFTER triggers.

The paper's cache maintenance runs as four SQL Server triggers that fire
after DML on the leaf-cache and cache tables, cascading updates to the
root (Section VI-B).  ``Trigger`` models exactly that: a callback bound
to (table, event) invoked once per DML *statement* with the affected
rows; trigger bodies may themselves issue DML, firing further triggers,
bounded by a cascade-depth guard (SQL Server's nesting limit is 32 —
we default to the same).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.relational.engine import Database
    from repro.relational.table import Row


class TriggerEvent(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class TriggerInvocation:
    """What a trigger body receives.

    ``inserted`` carries new row images (INSERT and UPDATE); ``deleted``
    carries old row images (DELETE and UPDATE) — mirroring SQL Server's
    ``inserted`` / ``deleted`` pseudo-tables.
    """

    table: str
    event: TriggerEvent
    inserted: tuple["Row", ...] = field(default_factory=tuple)
    deleted: tuple["Row", ...] = field(default_factory=tuple)


TriggerBody = Callable[["Database", TriggerInvocation], None]


@dataclass(frozen=True)
class Trigger:
    """An AFTER trigger definition."""

    name: str
    table: str
    event: TriggerEvent
    body: TriggerBody


class TriggerSet:
    """Registry + dispatcher with cascade-depth protection."""

    def __init__(self, max_depth: int = 32) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self._triggers: dict[tuple[str, TriggerEvent], list[Trigger]] = {}
        self._names: set[str] = set()
        self._max_depth = max_depth
        self._depth = 0

    def register(self, trigger: Trigger) -> None:
        if trigger.name in self._names:
            raise ValueError(f"duplicate trigger name {trigger.name!r}")
        self._names.add(trigger.name)
        self._triggers.setdefault((trigger.table, trigger.event), []).append(trigger)

    def drop(self, name: str) -> None:
        if name not in self._names:
            raise KeyError(f"no trigger named {name!r}")
        self._names.discard(name)
        for key in list(self._triggers):
            self._triggers[key] = [t for t in self._triggers[key] if t.name != name]
            if not self._triggers[key]:
                del self._triggers[key]

    def triggers_for(self, table: str, event: TriggerEvent) -> Sequence[Trigger]:
        return tuple(self._triggers.get((table, event), ()))

    def fire(self, db: "Database", invocation: TriggerInvocation) -> None:
        """Run every trigger bound to the invocation's (table, event)."""
        bound = self.triggers_for(invocation.table, invocation.event)
        if not bound:
            return
        if self._depth >= self._max_depth:
            raise RecursionError(
                f"trigger cascade exceeded depth {self._max_depth} at "
                f"{invocation.table}/{invocation.event.value}"
            )
        self._depth += 1
        try:
            for trigger in bound:
                trigger.body(db, invocation)
        finally:
            self._depth -= 1
