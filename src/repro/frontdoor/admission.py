"""Admission control: per-tenant token buckets + a bounded queue.

A million-user portal cannot let demand stretch latency without bound.
Two guards run at arrival, in order:

1. the **queue guard** — if the serving backlog has already reached
   ``queue_depth``, the request is shed immediately (``shed_queue``);
   queueing it would only add its service time to everyone behind it;
2. the **tenant token bucket** — each tenant accrues
   ``tenant_rate_qps`` tokens per second up to ``tenant_burst``; a
   request with no token is shed (``shed_rate``), so one scripted
   tenant cannot crowd out the interactive rest.

Every decision is metered: ``offered == admitted + shed_rate +
shed_queue`` holds exactly at all times.  Shedding is loud, never
silent — the bench gates on the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontdoor.config import AdmissionConfig

__all__ = ["AdmissionController", "AdmissionStats", "TokenBucket"]


@dataclass
class TokenBucket:
    """A standard token bucket over the simulated clock."""

    rate_qps: float
    burst: float
    tokens: float = field(default=-1.0)
    last_refill: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.tokens < 0:
            self.tokens = self.burst  # start full: a fresh tenant gets its burst

    def try_take(self, now: float) -> bool:
        if self.last_refill < 0:
            self.last_refill = now
        elif now > self.last_refill:
            self.tokens = min(
                self.burst, self.tokens + (now - self.last_refill) * self.rate_qps
            )
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class AdmissionStats:
    offered: int = 0
    admitted: int = 0
    shed_rate: int = 0
    shed_queue: int = 0

    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_queue

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_rate": self.shed_rate,
            "shed_queue": self.shed_queue,
            "shed_fraction": self.shed_fraction,
        }


class AdmissionController:
    """Decides admit / shed at request arrival."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.stats = AdmissionStats()
        self._buckets: dict[object, TokenBucket] = {}

    def offer(self, tenant: object, now: float, queue_depth: int) -> str:
        """One arriving request.  Returns ``"admit"``, ``"shed_queue"``
        (backlog full), or ``"shed_rate"`` (tenant out of tokens).

        The queue guard runs first: when the server is saturated the
        verdict should say so, whatever the tenant's bucket holds.
        """
        self.stats.offered += 1
        if not self.config.enabled:
            self.stats.admitted += 1
            return "admit"
        if queue_depth >= self.config.queue_depth:
            self.stats.shed_queue += 1
            return "shed_queue"
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                rate_qps=self.config.tenant_rate_qps, burst=self.config.tenant_burst
            )
            self._buckets[tenant] = bucket
        if not bucket.try_take(now):
            self.stats.shed_rate += 1
            return "shed_rate"
        self.stats.admitted += 1
        return "admit"

    def tenants(self) -> int:
        return len(self._buckets)
