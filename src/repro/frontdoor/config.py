"""Front-door configuration: result-cache tiers and admission control.

One frozen dataclass per concern, mirroring ``FederationConfig`` /
``TransportConfig`` style so the bench and CLI can sweep knobs without
touching code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AdmissionConfig", "FrontDoorConfig"]


@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Admission control in front of the portal.

    Two independent guards, both metered, neither silent:

    * **per-tenant token buckets** bound each tenant's sustained rate
      (``tenant_rate_qps``) with a burst allowance (``tenant_burst``) —
      one hot tenant cannot starve the rest;
    * a **bounded queue** (``queue_depth``) bounds the backlog the
      serving loop will accept — once the portal is saturated, excess
      load is shed at arrival instead of stretching every queued
      request's latency.

    ``enabled=False`` admits everything (the open-loop bench's
    no-admission baseline).
    """

    enabled: bool = True
    tenant_rate_qps: float = 5.0
    tenant_burst: float = 10.0
    queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.tenant_rate_qps <= 0:
            raise ValueError("tenant_rate_qps must be positive")
        if self.tenant_burst < 1:
            raise ValueError("tenant_burst must be at least 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")


@dataclass(frozen=True, slots=True)
class FrontDoorConfig:
    """Knobs of the tiered result cache and the serving path.

    Parameters
    ----------
    l1_capacity:
        Maximum exact-viewport entries in the L1 LRU (0 disables L1).
    l2_enabled / tile_extent_degrees / l2_capacity:
        The L2 tile cache: the world is quantized into square tiles of
        ``tile_extent_degrees`` per side; exact rectangular viewports
        are answered by composing the covering tile answers (CDN-style).
        Only exact, ungrouped queries are tile-composable — sampled
        answers are RNG draws and zoom/cluster grouping is not
        reconstructible from tiles — and only on portals without a
        collection cap (the cap would demote per-tile sub-queries to
        sampling).
    max_tiles_per_cover:
        Viewports covering more tiles than this bypass the tile layer
        (a whole-country pan would otherwise fan out absurdly).
    quantize_viewports:
        Expand eligible rectangular viewports to their covering tile
        union *before* caching or execution — the map-UI contract where
        the client renders tiles and crops.  Nearby jittered viewports
        of one hotspot then share cache entries, which is where most of
        the L1 hit rate comes from.
    l1_hit_seconds / l2_tile_compose_seconds:
        Modeled serving cost of a cache hit: an L1 hit costs a lookup;
        an L2 hit costs the lookup plus one compose step per tile.
        Both are orders of magnitude below a portal execution, which is
        the point of the tier.
    admission:
        See :class:`AdmissionConfig`.
    """

    l1_capacity: int = 512
    l2_enabled: bool = True
    tile_extent_degrees: float = 0.5
    l2_capacity: int = 4096
    max_tiles_per_cover: int = 64
    quantize_viewports: bool = True
    l1_hit_seconds: float = 250e-6
    l2_tile_compose_seconds: float = 50e-6
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    def __post_init__(self) -> None:
        if self.l1_capacity < 0:
            raise ValueError("l1_capacity must be non-negative")
        if self.tile_extent_degrees <= 0:
            raise ValueError("tile_extent_degrees must be positive")
        if self.l2_capacity < 1:
            raise ValueError("l2_capacity must be at least 1")
        if self.max_tiles_per_cover < 1:
            raise ValueError("max_tiles_per_cover must be at least 1")
        if self.l1_hit_seconds < 0 or self.l2_tile_compose_seconds < 0:
            raise ValueError("hit costs must be non-negative")
