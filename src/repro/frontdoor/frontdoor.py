"""The portal front door: cache-first serving above any portal.

``FrontDoor`` wraps a :class:`~repro.portal.portal.SensorMapPortal` or a
:class:`~repro.federation.federated.FederatedPortal` (either backend)
and serves viewport queries cache-first:

1. eligible rectangular viewports are **quantized** to their covering
   tile union (the map-UI contract: the client renders tiles and
   crops), so jittered viewports of one hotspot share entries;
2. the **L1** exact-viewport LRU is probed, then the **L2** tile
   cache composed; a hit costs microseconds of modeled time instead of
   a portal execution;
3. a miss runs the portal — tile-composable queries fill exactly their
   missing tiles through ``execute_batch`` (shared traversals), every
   other query runs directly — and the full answers (never partial
   ones) are stored for the next viewer.

Invalidation is wired, not polled: the front door registers ingest
listeners on every in-process tree so ``insert_readings_batch`` deltas
drop exactly the overlapping entries, and keys every entry on the
portal's ``index_generation`` so a rebuild strands the lot.  The
process-backend federation exposes no coordinator write path (workers
serve an immutable snapshot); its caches are invalidated by generation
and slot advancement, plus :meth:`FrontDoor.invalidate_region` for
out-of-band writes.

Admission control (:class:`~repro.frontdoor.admission.AdmissionController`)
rides along for the open-loop harness; ``execute`` applies it when
given a tenant, ``execute_batch`` leaves arrival-time admission to the
serving loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.frontdoor.admission import AdmissionController
from repro.frontdoor.cache import TieredResultCache, tile_cover, tile_rect
from repro.frontdoor.config import FrontDoorConfig
from repro.geometry import Polygon, Rect
from repro.portal.portal import PortalResult
from repro.portal.query import SensorQuery

__all__ = ["FrontDoor", "FrontDoorBatchResult", "FrontDoorResult"]


@dataclass
class FrontDoorResult:
    """One request's outcome at the front door.

    ``status`` is ``"served"`` or an admission verdict (``"shed_rate"``
    / ``"shed_queue"`` — then ``result`` is ``None``); ``served_from``
    is ``"l1"``, ``"l2"`` or ``"portal"``; ``service_seconds`` is the
    modeled serving cost (hit cost for cache hits, portal end-to-end
    for misses).
    """

    query: SensorQuery
    status: str
    served_from: str | None
    result: PortalResult | None
    service_seconds: float
    tiles_composed: int = 0

    @property
    def served(self) -> bool:
        return self.status == "served"

    @property
    def cache_hit(self) -> bool:
        return self.served_from in ("l1", "l2")


@dataclass
class FrontDoorBatchResult:
    """A batch's outcomes plus the modeled makespan of serving it (one
    shared portal batch for every miss, hit costs on top)."""

    results: list[FrontDoorResult]
    service_seconds: float


class FrontDoor:
    def __init__(self, portal, config: FrontDoorConfig | None = None) -> None:
        self.portal = portal
        self.config = config if config is not None else FrontDoorConfig()
        self.cache = TieredResultCache(self.config, portal.config.slot_seconds)
        self.admission = AdmissionController(self.config.admission)
        # Process-backend shards live in worker processes; there are no
        # coordinator-side trees to listen on (and no coordinator write
        # path to miss).
        self._process_backend = (
            getattr(getattr(portal, "federation", None), "execution", "inprocess")
            == "process"
        )
        self._attached_generation = -1
        # A live rebalance replaces shard trees without bumping the
        # index generation (so the cache survives the membership change
        # wholesale); it notifies us instead, and we invalidate only the
        # moved sensors' cells and re-attach ingest listeners to the
        # staged trees.
        listeners = getattr(portal, "rebalance_listeners", None)
        if listeners is not None:
            listeners.append(self._on_rebalance)

    # ------------------------------------------------------------------
    # Invalidation wiring
    # ------------------------------------------------------------------
    def _on_ingest(self, dirty: Rect, count: int) -> None:
        self.cache.invalidate_region(dirty)

    def _on_rebalance(self, moved) -> None:
        """Cell-precise invalidation for a committed membership change:
        only tiles touching a moved sensor's location drop; everything
        else stays warm (the point of rebalancing over a rebuild)."""
        self._attached_generation = -1  # staged trees need listeners
        for sensor in moved:
            loc = sensor.location
            self.cache.invalidate_region(Rect(loc.x, loc.y, loc.x, loc.y))

    def _local_trees(self) -> list:
        if self._process_backend:
            return []
        portal = self.portal
        if hasattr(portal, "_trees"):
            return list(portal._trees.values())
        if hasattr(portal, "shards"):
            return [
                tree for shard in portal.shards() for tree in shard._trees.values()
            ]
        return []

    def _cache_generation(self) -> int | None:
        """The generation to validate cache entries against, or ``None``
        when the cache must be bypassed (index dirty: the next execution
        rebuilds and bumps the generation, so serving old entries now
        would resurrect a stale build)."""
        if getattr(self.portal, "_index_dirty", False):
            return None
        generation = getattr(self.portal, "index_generation", 0)
        if generation != self._attached_generation:
            # rebuild_index() creates fresh trees; re-register on them.
            for tree in self._local_trees():
                if self._on_ingest not in tree.ingest_listeners:
                    tree.ingest_listeners.append(self._on_ingest)
            self._attached_generation = generation
        return generation

    def invalidate_region(self, region: Rect) -> int:
        """Out-of-band write invalidation (process backend, external
        ingestion)."""
        return self.cache.invalidate_region(region)

    def _sensor_locator(self):
        """A sensor-id → location resolver over the in-process trees, or
        ``None`` on the process backend (whose polygon viewports then
        skip L2 composition and run the portal's exact path)."""
        trees = self._local_trees()
        if not trees:
            return None

        def locate(sensor_id: int):
            for tree in trees:
                try:
                    return tree.sensor(sensor_id).location
                except KeyError:
                    continue
            return None

        return locate

    # ------------------------------------------------------------------
    # Quantization
    # ------------------------------------------------------------------
    def _tile_serveable(self, query: SensorQuery) -> bool:
        """Tile-composable here: the cache's eligibility plus an
        uncapped portal (a collection cap would demote per-tile exact
        sub-queries to sampling)."""
        return (
            self.cache.tile_eligible(query)
            and self.portal.max_sensors_per_query is None
        )

    def quantize(self, query: SensorQuery) -> SensorQuery:
        """Expand an eligible rectangular viewport to its covering tile
        union.  Applied before caching *and* before execution, on the
        cached and uncached configurations alike — quantization is the
        serving contract, not a cache trick, so cache-on/cache-off
        comparisons stay apples-to-apples.
        """
        if not self.config.quantize_viewports or not self._tile_serveable(query):
            return query
        if isinstance(query.region, Polygon):
            # Polygon viewports quantize at the L2 layer (their cover is
            # the covered-cell union) but the region itself stays exact:
            # boundary tiles are cropped per sensor at compose time, so
            # there is no coarser region to rewrite the query to.
            return query
        assert isinstance(query.region, Rect)
        tiles = tile_cover(query.region, self.config.tile_extent_degrees)
        if not tiles or len(tiles) > self.config.max_tiles_per_cover:
            return query
        e = self.config.tile_extent_degrees
        xs = [t[0] for t in tiles]
        ys = [t[1] for t in tiles]
        quantized = Rect(
            min(xs) * e, min(ys) * e, (max(xs) + 1) * e, (max(ys) + 1) * e
        )
        return replace(query, region=quantized)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def execute(
        self,
        query: SensorQuery,
        tenant: object | None = None,
        queue_depth: int = 0,
    ) -> FrontDoorResult:
        """Serve one request cache-first.  With a ``tenant``, admission
        runs first and a shed request never touches cache or portal."""
        now = self.portal.clock.now()
        if tenant is not None:
            verdict = self.admission.offer(tenant, now, queue_depth)
            if verdict != "admit":
                return FrontDoorResult(query, verdict, None, None, 0.0)
        q = self.quantize(query)
        generation = self._cache_generation()
        if generation is not None:
            hit = self.cache.get_viewport(q, now, generation)
            if hit is not None:
                return FrontDoorResult(
                    q, "served", "l1", hit, self.config.l1_hit_seconds
                )
            if self.config.l2_enabled and self._tile_serveable(q):
                composed, missing = self.cache.get_tiles(
                    q, now, generation, locate=self._sensor_locator()
                )
                if composed is not None:
                    # Promote: the next identical viewport is an L1 hit.
                    self.cache.put_viewport(q, composed.result, now, generation)
                    return FrontDoorResult(
                        q,
                        "served",
                        "l2",
                        composed.result,
                        self.config.l1_hit_seconds
                        + composed.tiles * self.config.l2_tile_compose_seconds,
                        tiles_composed=composed.tiles,
                    )
                if missing:
                    served = self._fill_tiles(q, missing, now, generation)
                    if served is not None:
                        return served
            self.cache.stats.misses += 1
        result = self._run_portal(q)
        self._store_viewport(q, result)
        return FrontDoorResult(
            q, "served", "portal", result, result.end_to_end_seconds
        )

    def _run_portal(self, q: SensorQuery) -> PortalResult:
        """Direct (uncached) execution: polygon viewports take the
        portal's geoblock path, everything else the plain one."""
        if isinstance(q.region, Polygon) and hasattr(self.portal, "execute_polygon"):
            return self.portal.execute_polygon(q)
        return self.portal.execute(q)

    def _fill_tiles(
        self,
        q: SensorQuery,
        missing: list[tuple[int, int]],
        now: float,
        generation: int,
    ) -> FrontDoorResult | None:
        """Miss path for a tile-composable query: fill exactly the
        missing tiles in one shared portal batch, then compose the full
        cover.  Returns ``None`` (fall back to direct execution) if any
        fill came back partial — gaps are never cached or composed."""
        e = self.config.tile_extent_degrees
        fills = [replace(q, region=tile_rect(t, e)) for t in missing]
        batch = self.portal.execute_batch(fills)
        if any(getattr(r, "partial", False) for r in batch.results):
            return None
        for tile, result in zip(missing, batch.results):
            self.cache.put_tile(tile, q, result, now, generation)
        composed, still_missing = self.cache.get_tiles(
            q, now, generation, record=False, locate=self._sensor_locator()
        )
        if composed is None:
            return None
        self.cache.stats.misses += 1
        self.cache.put_viewport(q, composed.result, now, generation)
        service = (
            batch.stats.collection_seconds
            + sum(r.processing_seconds for r in batch.results)
            + composed.tiles * self.config.l2_tile_compose_seconds
        )
        return FrontDoorResult(
            q,
            "served",
            "portal",
            composed.result,
            service,
            tiles_composed=composed.tiles,
        )

    def _store_viewport(self, q: SensorQuery, result: PortalResult) -> None:
        generation = self._cache_generation()
        if generation is not None:
            self.cache.put_viewport(q, result, self.portal.clock.now(), generation)

    # ------------------------------------------------------------------
    # Batch serving
    # ------------------------------------------------------------------
    def execute_batch(self, queries: list[SensorQuery]) -> FrontDoorBatchResult:
        """Serve a batch cache-first with ONE portal batch for every
        miss: direct misses and all distinct missing tiles share the
        portal's batched traversals.  Admission is the serving loop's
        job (arrival time, live queue depth), not this method's."""
        now = self.portal.clock.now()
        generation = self._cache_generation()
        results: list[FrontDoorResult | None] = [None] * len(queries)
        plans: list[tuple[str, SensorQuery, list[tuple[int, int]]]] = []
        needed: dict = {}  # tile cache key -> (tile, exemplar query)
        for i, query in enumerate(queries):
            q = self.quantize(query)
            if generation is not None:
                hit = self.cache.get_viewport(q, now, generation)
                if hit is not None:
                    results[i] = FrontDoorResult(
                        q, "served", "l1", hit, self.config.l1_hit_seconds
                    )
                    plans.append(("hit", q, []))
                    continue
                if self.config.l2_enabled and self._tile_serveable(q):
                    composed, missing = self.cache.get_tiles(
                        q, now, generation, locate=self._sensor_locator()
                    )
                    if composed is not None:
                        self.cache.put_viewport(q, composed.result, now, generation)
                        results[i] = FrontDoorResult(
                            q,
                            "served",
                            "l2",
                            composed.result,
                            self.config.l1_hit_seconds
                            + composed.tiles * self.config.l2_tile_compose_seconds,
                            tiles_composed=composed.tiles,
                        )
                        plans.append(("hit", q, []))
                        continue
                    if missing:
                        for tile in missing:
                            needed.setdefault(
                                self.cache.tile_key(tile, q), (tile, q)
                            )
                        self.cache.stats.misses += 1
                        plans.append(("tiles", q, missing))
                        continue
                self.cache.stats.misses += 1
            plans.append(("direct", q, []))
        direct_indices = [i for i, p in enumerate(plans) if p[0] == "direct"]
        fill_items = list(needed.values())
        e = self.config.tile_extent_degrees
        portal_queries = [plans[i][1] for i in direct_indices] + [
            replace(q, region=tile_rect(tile, e)) for tile, q in fill_items
        ]
        batch_service = 0.0
        if portal_queries:
            batch = self.portal.execute_batch(portal_queries)
            batch_service = batch.stats.collection_seconds + sum(
                r.processing_seconds for r in batch.results
            )
            for slot, i in enumerate(direct_indices):
                result = batch.results[slot]
                q = plans[i][1]
                self._store_viewport(q, result)
                results[i] = FrontDoorResult(
                    q, "served", "portal", result, result.end_to_end_seconds
                )
            offset = len(direct_indices)
            for slot, (tile, q) in enumerate(fill_items):
                result = batch.results[offset + slot]
                if generation is not None and not getattr(result, "partial", False):
                    self.cache.put_tile(tile, q, result, now, generation)
        # Compose the tile-planned queries from the now-filled cache.
        portal_service = batch_service
        for i, (kind, q, _missing) in enumerate(plans):
            if kind != "tiles":
                continue
            composed = None
            if generation is not None:
                composed, _ = self.cache.get_tiles(
                    q, now, generation, record=False,
                    locate=self._sensor_locator(),
                )
            if composed is not None:
                self.cache.put_viewport(q, composed.result, now, generation)
                compose_cost = composed.tiles * self.config.l2_tile_compose_seconds
                batch_service += compose_cost
                results[i] = FrontDoorResult(
                    q,
                    "served",
                    "portal",
                    composed.result,
                    portal_service + compose_cost,
                    tiles_composed=composed.tiles,
                )
            else:
                # A fill came back partial (degraded shard), or a
                # polygon compose could not crop a boundary tile: serve
                # this query directly, uncached.
                result = self._run_portal(q)
                batch_service += result.end_to_end_seconds
                results[i] = FrontDoorResult(
                    q, "served", "portal", result, result.end_to_end_seconds
                )
        hit_cost = sum(
            r.service_seconds for r in results if r is not None and r.cache_hit
        )
        final = [r for r in results if r is not None]
        assert len(final) == len(queries)
        return FrontDoorBatchResult(final, batch_service + hit_cost)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats_summary(self) -> dict[str, object]:
        return {
            "cache": self.cache.stats.as_dict(),
            "admission": self.admission.stats.as_dict(),
        }
