"""Open-loop serving harness over the simulated clock.

An *open-loop* workload (arrivals keep coming whether or not the server
keeps up — a million browsers do not politely wait for each other)
against one :class:`~repro.frontdoor.frontdoor.FrontDoor`, entirely in
modeled time:

* arrivals are admitted or shed **at arrival** (token buckets + the
  live queue depth);
* the single modeled server drains the admitted queue in batches of up
  to ``max_batch`` (one tick's worth of viewports share the portal's
  batched traversals, exactly like the continuous-query manager);
* a request's latency is ``finish - arrival`` — queueing delay
  included, which is what makes saturation visible: past the
  sustainable rate, the queue (not the service time) is the latency.

The clock is advanced to each batch's start instant, so slot windows
advance and staleness bounds age exactly as they would live — a long
run genuinely expires cache entries mid-flight.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.bench.harness import StreamSummary
from repro.frontdoor.frontdoor import FrontDoor

__all__ = ["OpenLoopReport", "OpenLoopRunner", "ServedRecord"]


@dataclass(frozen=True, slots=True)
class ServedRecord:
    """One request's lifecycle in the run (times relative to run
    start).  Shed requests have ``start == finish == arrival`` and a
    non-``served`` status."""

    tenant: int
    arrival_seconds: float
    start_seconds: float
    finish_seconds: float
    status: str
    served_from: str | None = None

    @property
    def latency_seconds(self) -> float:
        return self.finish_seconds - self.arrival_seconds


@dataclass
class OpenLoopReport:
    records: list[ServedRecord] = field(default_factory=list)
    max_queue_depth: int = 0

    @property
    def offered(self) -> int:
        return len(self.records)

    @property
    def served(self) -> int:
        return sum(1 for r in self.records if r.status == "served")

    @property
    def shed(self) -> int:
        return self.offered - self.served

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def duration_seconds(self) -> float:
        return max((r.finish_seconds for r in self.records), default=0.0)

    @property
    def served_qps(self) -> float:
        span = self.duration_seconds
        return self.served / span if span > 0 else 0.0

    def latency(self) -> StreamSummary:
        """Latency distribution of the *served* requests only; shedding
        is metered separately, never hidden inside the percentiles."""
        return StreamSummary(
            r.latency_seconds for r in self.records if r.status == "served"
        )

    def hits(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            if r.served_from is not None:
                out[r.served_from] = out.get(r.served_from, 0) + 1
        return out

    def as_dict(self) -> dict[str, object]:
        latency = self.latency()
        return {
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "served_qps": self.served_qps,
            "duration_seconds": self.duration_seconds,
            "max_queue_depth": self.max_queue_depth,
            "served_from": self.hits(),
            "latency": latency.as_dict() if latency.count else None,
        }


class OpenLoopRunner:
    """Drives one front door with an open-loop arrival stream."""

    def __init__(self, frontdoor: FrontDoor, max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.frontdoor = frontdoor
        self.max_batch = max_batch

    def run(self, requests) -> OpenLoopReport:
        """Serve ``requests`` (anything with ``tenant``,
        ``arrival_seconds`` — relative to run start — and ``query``).
        Arrivals are processed in arrival order; the report's records
        keep that order for served and shed alike."""
        reqs = sorted(requests, key=lambda r: r.arrival_seconds)
        clock = self.frontdoor.portal.clock
        t0 = clock.now()
        queue: deque = deque()
        report = OpenLoopReport()
        server_free = 0.0

        def serve_until(limit: float) -> None:
            nonlocal server_free
            while queue:
                start = max(server_free, queue[0].arrival_seconds)
                if start > limit:
                    return
                batch = []
                while (
                    queue
                    and len(batch) < self.max_batch
                    and queue[0].arrival_seconds <= start
                ):
                    batch.append(queue.popleft())
                target = t0 + start
                now = clock.now()
                if target > now:
                    clock.advance(target - now)
                outcome = self.frontdoor.execute_batch([r.query for r in batch])
                finish = start + outcome.service_seconds
                for req, res in zip(batch, outcome.results):
                    report.records.append(
                        ServedRecord(
                            tenant=req.tenant,
                            arrival_seconds=req.arrival_seconds,
                            start_seconds=start,
                            finish_seconds=finish,
                            status="served",
                            served_from=res.served_from,
                        )
                    )
                server_free = finish

        for req in reqs:
            serve_until(req.arrival_seconds)
            verdict = self.frontdoor.admission.offer(
                req.tenant, t0 + req.arrival_seconds, len(queue)
            )
            if verdict == "admit":
                queue.append(req)
                report.max_queue_depth = max(report.max_queue_depth, len(queue))
            else:
                report.records.append(
                    ServedRecord(
                        tenant=req.tenant,
                        arrival_seconds=req.arrival_seconds,
                        start_seconds=req.arrival_seconds,
                        finish_seconds=req.arrival_seconds,
                        status=verdict,
                    )
                )
        serve_until(math.inf)
        report.records.sort(key=lambda r: (r.arrival_seconds, r.tenant))
        return report
