"""Front door for a million-user load: tiered freshness-aware result
caching, admission control, and the open-loop serving harness."""

from repro.frontdoor.admission import AdmissionController, AdmissionStats, TokenBucket
from repro.frontdoor.cache import (
    CacheStats,
    TieredResultCache,
    result_oldest_timestamp,
    tile_cover,
)
from repro.frontdoor.config import AdmissionConfig, FrontDoorConfig
from repro.frontdoor.frontdoor import FrontDoor, FrontDoorBatchResult, FrontDoorResult
from repro.frontdoor.harness import OpenLoopReport, OpenLoopRunner, ServedRecord

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "CacheStats",
    "FrontDoor",
    "FrontDoorBatchResult",
    "FrontDoorConfig",
    "FrontDoorResult",
    "OpenLoopReport",
    "OpenLoopRunner",
    "ServedRecord",
    "TieredResultCache",
    "TokenBucket",
    "result_oldest_timestamp",
    "tile_cover",
]
