"""The tiered, freshness-aware result cache above the portal.

Two tiers, one freshness semantics:

* **L1 — exact-viewport LRU.**  Keyed on the full query identity
  (region fingerprint, sensor type, zoom level, aggregate, cluster
  distance, sample size, staleness bound).  A hit replays the stored
  ``PortalResult`` verbatim — for sampled queries that is the *same
  draw* the fill produced (no portal RNG is consumed), for exact
  queries it is bit-identical to a warm recompute.
* **L2 — tile cache.**  Exact rectangular viewports decompose into a
  cover of fixed-extent tiles; per-tile exact answers are cached and
  composed into covering answers (readings deduplicated across shared
  tile edges).  One hot tile then serves every viewport that overlaps
  it — the CDN-tile pattern over slot-cache data.

Validity is *exactly* the slot-cache story, no second freshness regime:

* **slot advancement** — an entry remembers the absolute slot window it
  was filled in; once ``slot_of(now)`` moves past it the entry is
  dropped, the same boundary at which the trees prune expired slots;
* **staleness bound** — an entry remembers the oldest timestamp in its
  answer; it serves only while ``oldest >= now - staleness``, the same
  predicate node sketches pass before being cache-served;
* **write deltas** — ``COLRTree.insert_readings_batch`` ingestion fires
  the tree's ingest listeners with the touched leaves' bounding box and
  every overlapping entry is dropped (a cached answer must never
  outlive the slot-cache state it was computed from);
* **index generation** — entries remember the portal's
  ``index_generation``; a ``rebuild_index()`` strands them all.
* **partial answers are never cached** — a killed shard's gaps must not
  survive its revival.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from repro.core.plancache import region_fingerprint
from repro.core.slots import slot_of
from repro.frontdoor.config import FrontDoorConfig
from repro.geometry import Polygon, Rect
from repro.portal.portal import PortalResult
from repro.portal.query import SensorQuery

__all__ = [
    "CacheStats",
    "TieredResultCache",
    "polygon_cover",
    "result_oldest_timestamp",
    "tile_cover",
]


def result_oldest_timestamp(result: PortalResult) -> float:
    """The oldest timestamp represented anywhere in an answer —
    readings and cached sketches alike (``+inf`` for an empty answer,
    which never goes stale; writes and slot advancement still
    invalidate it)."""
    oldest = math.inf
    for answer in result.answers:
        for reading in answer.probed_readings:
            oldest = min(oldest, reading.timestamp)
        for reading in answer.cached_readings:
            oldest = min(oldest, reading.timestamp)
        for sketch in answer.cached_sketches:
            oldest = min(oldest, sketch.oldest_timestamp)
    return oldest


def tile_cover(
    region: Rect, tile_extent: float
) -> list[tuple[int, int]]:
    """The tile ids ``(ix, iy)`` covering a rectangle.

    Tiles are the closed squares ``[ix*e, (ix+1)*e] x [iy*e,
    (iy+1)*e]``.  A region edge landing exactly on a tile boundary does
    not drag in the next (measure-zero-overlap) tile.
    """
    e = tile_extent
    ix0 = math.floor(region.min_x / e)
    iy0 = math.floor(region.min_y / e)
    ix1 = max(ix0, math.ceil(region.max_x / e) - 1)
    iy1 = max(iy0, math.ceil(region.max_y / e) - 1)
    return [
        (ix, iy) for ix in range(ix0, ix1 + 1) for iy in range(iy0, iy1 + 1)
    ]


def tile_rect(tile: tuple[int, int], tile_extent: float) -> Rect:
    ix, iy = tile
    e = tile_extent
    return Rect(ix * e, iy * e, (ix + 1) * e, (iy + 1) * e)


def polygon_cover(
    region: Polygon, tile_extent: float
) -> list[tuple[int, int]]:
    """The tile ids a polygon viewport actually touches: its bounding
    box's cover minus the tiles the polygon misses entirely (the
    geoblock-style *cell union* — for a non-convex polygon this is a
    strict subset of the box cover, which is what makes polygon cache
    entries invalidate per-cell instead of per-bounding-box)."""
    return [
        tile
        for tile in tile_cover(region.bounding_box, tile_extent)
        if region.intersects_rect(tile_rect(tile, tile_extent))
    ]


@dataclass
class CacheStats:
    """Cumulative cache accounting (hit tiers, misses, and why entries
    left)."""

    lookups: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    misses: int = 0
    stores: int = 0
    tile_stores: int = 0
    uncacheable: int = 0
    l1_evictions: int = 0
    l2_evictions: int = 0
    invalidated_slot: int = 0
    invalidated_stale: int = 0
    invalidated_write: int = 0
    invalidated_generation: int = 0

    @property
    def hits(self) -> int:
        return self.l1_hits + self.l2_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "lookups": self.lookups,
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "stores": self.stores,
            "tile_stores": self.tile_stores,
            "uncacheable": self.uncacheable,
            "l1_evictions": self.l1_evictions,
            "l2_evictions": self.l2_evictions,
            "invalidated_slot": self.invalidated_slot,
            "invalidated_stale": self.invalidated_stale,
            "invalidated_write": self.invalidated_write,
            "invalidated_generation": self.invalidated_generation,
        }


@dataclass
class _Entry:
    """One cached answer (viewport or tile) plus its validity record."""

    region: Rect
    result: PortalResult
    slot_window: int
    generation: int
    oldest_timestamp: float
    staleness_seconds: float
    # Polygon viewport entries remember the covered-cell union; write
    # invalidation then tests the delta against the cells instead of the
    # (coarser) bounding box, so a write inside the box but outside
    # every covered cell leaves the entry alone.
    cells: tuple[Rect, ...] | None = None


@dataclass
class _Composed:
    """An L2 hit: the composed covering answer plus its provenance."""

    result: PortalResult
    tiles: int = 0
    oldest_timestamp: float = math.inf
    regions: list[Rect] = field(default_factory=list)


class TieredResultCache:
    """L1 viewport LRU + L2 tile LRU with shared invalidation rules."""

    def __init__(self, config: FrontDoorConfig, slot_seconds: float) -> None:
        if slot_seconds <= 0:
            raise ValueError("slot_seconds must be positive")
        self.config = config
        self.slot_seconds = slot_seconds
        self.stats = CacheStats()
        self._l1: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._l2: OrderedDict[Hashable, _Entry] = OrderedDict()

    # ------------------------------------------------------------------
    # Keys and eligibility
    # ------------------------------------------------------------------
    @staticmethod
    def l1_key(query: SensorQuery) -> Hashable | None:
        """The exact-viewport identity.  ``None`` (unfingerprintable
        region) disables caching for the query — correctness never
        depends on the cache."""
        fp = region_fingerprint(query.region)
        if fp is None:
            return None
        return (
            fp,
            query.sensor_type,
            query.zoom_level,
            query.aggregate,
            query.cluster_miles,
            query.sample_size,
            query.staleness_seconds,
        )

    def tile_key(self, tile: tuple[int, int], query: SensorQuery) -> Hashable:
        return (tile, query.sensor_type, query.staleness_seconds)

    @staticmethod
    def tile_eligible(query: SensorQuery) -> bool:
        """Only exact, ungrouped rectangle and polygon queries compose
        from tiles: sampled answers are RNG draws, and zoom/cluster
        display groups cannot be rebuilt from tile pieces.  A polygon
        viewport composes from the tiles of its covered-cell union
        (interior tiles wholesale, boundary tiles cropped per sensor)."""
        return (
            isinstance(query.region, (Rect, Polygon))
            and query.sample_size in (None, 0)
            and query.zoom_level is None
            and query.cluster_miles is None
        )

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def _valid(self, entry: _Entry, now: float, generation: int) -> str | None:
        """Why an entry can no longer serve, or ``None`` if it can."""
        if entry.generation != generation:
            return "generation"
        if entry.slot_window != slot_of(now, self.slot_seconds):
            return "slot"
        if entry.oldest_timestamp < now - entry.staleness_seconds:
            return "stale"
        return None

    def _get(
        self,
        store: OrderedDict,
        key: Hashable,
        now: float,
        generation: int,
    ) -> _Entry | None:
        entry = store.get(key)
        if entry is None:
            return None
        reason = self._valid(entry, now, generation)
        if reason is not None:
            del store[key]
            if reason == "generation":
                self.stats.invalidated_generation += 1
            elif reason == "slot":
                self.stats.invalidated_slot += 1
            else:
                self.stats.invalidated_stale += 1
            return None
        store.move_to_end(key)
        return entry

    # ------------------------------------------------------------------
    # L1
    # ------------------------------------------------------------------
    def get_viewport(
        self, query: SensorQuery, now: float, generation: int
    ) -> PortalResult | None:
        """L1 lookup (does not meter a miss — the caller falls through
        to L2 / the portal and meters the outcome once)."""
        self.stats.lookups += 1
        if self.config.l1_capacity <= 0:
            return None
        key = self.l1_key(query)
        if key is None:
            return None
        entry = self._get(self._l1, key, now, generation)
        if entry is None:
            return None
        self.stats.l1_hits += 1
        return entry.result

    def put_viewport(
        self, query: SensorQuery, result: PortalResult, now: float, generation: int
    ) -> bool:
        """Store a filled viewport answer.  Partial (degraded) answers
        are refused — a revived shard must never be shadowed by the gap
        it left behind."""
        if self.config.l1_capacity <= 0:
            return False
        key = self.l1_key(query)
        if key is None or getattr(result, "partial", False):
            self.stats.uncacheable += 1
            return False
        region = query.region
        cells: tuple[Rect, ...] | None = None
        if not isinstance(region, Rect):
            cover = polygon_cover(region, self.config.tile_extent_degrees)
            if 0 < len(cover) <= self.config.max_tiles_per_cover:
                cells = tuple(
                    tile_rect(t, self.config.tile_extent_degrees) for t in cover
                )
            region = Rect.from_points(region.vertices)
        self._l1[key] = _Entry(
            region=region,
            result=result,
            slot_window=slot_of(now, self.slot_seconds),
            generation=generation,
            oldest_timestamp=result_oldest_timestamp(result),
            staleness_seconds=query.staleness_seconds,
            cells=cells,
        )
        self._l1.move_to_end(key)
        self.stats.stores += 1
        while len(self._l1) > self.config.l1_capacity:
            self._l1.popitem(last=False)
            self.stats.l1_evictions += 1
        return True

    # ------------------------------------------------------------------
    # L2 (tiles)
    # ------------------------------------------------------------------
    def get_tiles(
        self,
        query: SensorQuery,
        now: float,
        generation: int,
        record: bool = True,
        locate=None,
    ) -> tuple[_Composed | None, list[tuple[int, int]]]:
        """Try to compose the query's answer from cached tiles.

        Returns ``(composed, missing_tiles)``: a full compose when every
        covering tile is cached and valid, else ``(None, missing)`` so
        the caller can fill exactly the missing tiles.
        ``(None, [])`` means the query is not tile-composable at all.
        ``record=False`` suppresses the hit counter (the front door's
        re-probe after filling missing tiles is part of a miss, not a
        hit).  ``locate`` (sensor id → location, or ``None`` when the
        backend exposes no coordinator-side registry) is required to
        crop boundary tiles of a polygon viewport; without it polygon
        queries are not composable here.
        """
        if not self.config.l2_enabled or not self.tile_eligible(query):
            return None, []
        region = query.region
        if isinstance(region, Rect):
            tiles = tile_cover(region, self.config.tile_extent_degrees)
        else:
            if locate is None:
                return None, []
            tiles = polygon_cover(region, self.config.tile_extent_degrees)
        if not tiles or len(tiles) > self.config.max_tiles_per_cover:
            return None, []
        entries: list[tuple[tuple[int, int], _Entry]] = []
        missing: list[tuple[int, int]] = []
        for tile in tiles:
            entry = self._get(self._l2, self.tile_key(tile, query), now, generation)
            if entry is None:
                missing.append(tile)
            else:
                entries.append((tile, entry))
        if missing:
            return None, missing
        if isinstance(region, Rect):
            composed = self._compose(query, [e for _, e in entries])
        else:
            composed = self._compose_polygon(query, entries, locate)
            if composed is None:
                return None, []
        if record:
            self.stats.l2_hits += 1
        return composed, []

    def put_tile(
        self,
        tile: tuple[int, int],
        query: SensorQuery,
        result: PortalResult,
        now: float,
        generation: int,
    ) -> bool:
        if getattr(result, "partial", False):
            self.stats.uncacheable += 1
            return False
        self._l2[self.tile_key(tile, query)] = _Entry(
            region=tile_rect(tile, self.config.tile_extent_degrees),
            result=result,
            slot_window=slot_of(now, self.slot_seconds),
            generation=generation,
            oldest_timestamp=result_oldest_timestamp(result),
            staleness_seconds=query.staleness_seconds,
        )
        self.stats.tile_stores += 1
        while len(self._l2) > self.config.l2_capacity:
            self._l2.popitem(last=False)
            self.stats.l2_evictions += 1
        return True

    def _compose(self, query: SensorQuery, entries: list[_Entry]) -> _Composed:
        """Merge per-tile answers into one covering answer.

        Readings are deduplicated by sensor id (a sensor sitting
        exactly on a shared tile edge answers both tiles' fills); the
        composed answer carries them as *cached* readings — they were
        served from the tile cache, whatever their role at fill time.
        Display groups are not rebuilt (tile-eligible queries carry no
        grouping; the map composes tiles client-side).
        """
        from repro.core.lookup import QueryAnswer

        merged = QueryAnswer()
        seen: set[int] = set()
        oldest = math.inf
        regions: list[Rect] = []
        for entry in entries:
            regions.append(entry.region)
            oldest = min(oldest, entry.oldest_timestamp)
            for answer in entry.result.answers:
                for reading in list(answer.probed_readings) + list(
                    answer.cached_readings
                ):
                    if reading.sensor_id in seen:
                        continue
                    seen.add(reading.sensor_id)
                    merged.cached_readings.append(reading)
                merged.cached_sketches.extend(answer.cached_sketches)
                merged.cached_sketch_nodes.extend(answer.cached_sketch_nodes)
        result = PortalResult(
            query=query,
            groups=[],
            answers=[merged],
            processing_seconds=0.0,
            collection_seconds=0.0,
            sample_requested=None,
        )
        return _Composed(
            result=result,
            tiles=len(entries),
            oldest_timestamp=oldest,
            regions=regions,
        )

    def _compose_polygon(
        self,
        query: SensorQuery,
        entries: list[tuple[tuple[int, int], _Entry]],
        locate,
    ) -> _Composed | None:
        """Merge per-tile answers into one exact polygon answer.

        Tiles fully inside the polygon pass their answers wholesale
        (readings *and* aggregate sketches); boundary tiles are cropped
        per sensor via ``locate`` + ``contains_point``.  A boundary tile
        whose cached answer carries anonymous node sketches cannot be
        cropped — the compose reports failure (``None``) and the caller
        falls through to the portal's exact polygon path.
        """
        from repro.core.lookup import QueryAnswer

        region = query.region
        assert isinstance(region, Polygon)
        merged = QueryAnswer()
        seen: set[int] = set()
        oldest = math.inf
        regions: list[Rect] = []
        for _, entry in entries:
            interior = region.contains_rect(entry.region)
            if not interior and any(
                answer.cached_sketches for answer in entry.result.answers
            ):
                return None
            regions.append(entry.region)
            oldest = min(oldest, entry.oldest_timestamp)
            for answer in entry.result.answers:
                for reading in list(answer.probed_readings) + list(
                    answer.cached_readings
                ):
                    if reading.sensor_id in seen:
                        continue
                    if not interior:
                        location = locate(reading.sensor_id)
                        if location is None or not region.contains_point(
                            location
                        ):
                            continue
                    seen.add(reading.sensor_id)
                    merged.cached_readings.append(reading)
                if interior:
                    merged.cached_sketches.extend(answer.cached_sketches)
                    merged.cached_sketch_nodes.extend(
                        answer.cached_sketch_nodes
                    )
        result = PortalResult(
            query=query,
            groups=[],
            answers=[merged],
            processing_seconds=0.0,
            collection_seconds=0.0,
            sample_requested=None,
        )
        return _Composed(
            result=result,
            tiles=len(entries),
            oldest_timestamp=oldest,
            regions=regions,
        )

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_region(self, dirty: Rect) -> int:
        """Drop every entry overlapping a write delta.  Called from the
        trees' ingest listeners (in-process) or by the front door after
        a probing execution (process backend)."""
        dropped = 0
        for store in (self._l1, self._l2):
            doomed = [
                key
                for key, entry in store.items()
                if (
                    any(cell.intersects(dirty) for cell in entry.cells)
                    if entry.cells is not None
                    else entry.region.intersects(dirty)
                )
            ]
            for key in doomed:
                del store[key]
                dropped += 1
        self.stats.invalidated_write += dropped
        return dropped

    def clear(self) -> int:
        """Drop everything (index rebuild / generation change)."""
        dropped = len(self._l1) + len(self._l2)
        self._l1.clear()
        self._l2.clear()
        self.stats.invalidated_generation += dropped
        return dropped

    def __len__(self) -> int:
        return len(self._l1) + len(self._l2)
