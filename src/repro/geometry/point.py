"""Points and distance metrics.

Coordinates are stored as plain floats.  For geographic data we follow the
``(x=longitude, y=latitude)`` convention so that planar math (bounding
boxes, overlap fractions) and geographic math (haversine miles for the
``CLUSTER`` radius) can coexist on the same objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_EARTH_RADIUS_MILES = 3958.7613


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """An immutable 2-D point.

    ``x`` is longitude (degrees) and ``y`` is latitude (degrees) for
    geographic workloads, but any planar coordinate system works for the
    index logic, which never assumes units.
    """

    x: float
    y: float

    @property
    def lon(self) -> float:
        """Longitude alias for ``x``."""
        return self.x

    @property
    def lat(self) -> float:
        """Latitude alias for ``y``."""
        return self.y

    def planar_distance(self, other: "GeoPoint") -> float:
        """Euclidean distance in coordinate units."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def haversine_miles(self, other: "GeoPoint") -> float:
        """Great-circle distance in miles, treating (x, y) as (lon, lat)."""
        return haversine_miles(self.y, self.x, other.y, other.x)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def planar_distance(a: GeoPoint, b: GeoPoint) -> float:
    """Euclidean distance between two points in coordinate units."""
    return a.planar_distance(b)


def haversine_miles(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in miles between two (lat, lon) pairs.

    Used by the portal's ``CLUSTER <miles>`` grouping and by workload
    generators that scatter sensors around city centers.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_MILES * math.asin(min(1.0, math.sqrt(a)))


def miles_to_degrees_lat(miles: float) -> float:
    """Approximate degrees of latitude spanned by ``miles``."""
    return miles / 69.0


def miles_to_degrees_lon(miles: float, at_lat: float) -> float:
    """Approximate degrees of longitude spanned by ``miles`` at a latitude.

    Longitude degrees shrink with the cosine of the latitude; we clamp the
    cosine away from zero so polar queries stay finite.
    """
    cos_lat = max(0.05, math.cos(math.radians(at_lat)))
    return miles / (69.0 * cos_lat)
