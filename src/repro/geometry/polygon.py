"""Simple polygons for ``WITHIN Polygon(<lat,long>)`` query regions.

SensorMap users may draw arbitrary polygonal regions of interest; the
portal's query dialect carries them as a vertex list.  Internally the
index prunes with the polygon's bounding box (rectangle math is cheap)
and only falls back to exact point-in-polygon / rectangle-relation tests
where the bounding box is ambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.geometry.point import GeoPoint
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Polygon:
    """A simple (non self-intersecting) polygon given by its vertices.

    The vertex ring may be given in either winding order and need not be
    explicitly closed.  At least three vertices are required.
    """

    vertices: tuple[GeoPoint, ...]
    _bbox: Rect = field(init=False, repr=False, compare=False)

    def __init__(self, vertices: Iterable[GeoPoint]) -> None:
        verts = tuple(vertices)
        if len(verts) >= 2 and verts[0] == verts[-1]:
            verts = verts[:-1]
        if len(verts) < 3:
            raise ValueError("a polygon needs at least 3 distinct vertices")
        object.__setattr__(self, "vertices", verts)
        object.__setattr__(self, "_bbox", Rect.from_points(verts))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        """The rectangle as a 4-vertex polygon."""
        return cls(rect.corners())

    @classmethod
    def from_latlon_pairs(cls, pairs: Sequence[tuple[float, float]]) -> "Polygon":
        """Build from ``(lat, lon)`` pairs, the order used by the paper's
        query dialect (``Polygon(<lat,long>)``)."""
        return cls(GeoPoint(lon, lat) for lat, lon in pairs)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def bounding_box(self) -> Rect:
        return self._bbox

    @property
    def area(self) -> float:
        """Unsigned area via the shoelace formula."""
        total = 0.0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return abs(total) / 2.0

    def as_rect(self) -> "Rect | None":
        """The equivalent axis-aligned rectangle, when this polygon is
        exactly one (its four vertices are the four corners of its own
        bounding box), else ``None``.

        The polygon query planners use this to detect rectangles drawn
        as polygons and route them down the plain rectangle path, which
        keeps ``execute_polygon`` bit-identical to ``execute`` on such
        regions.  Degenerate (zero-area) rings are never rectangles.
        """
        if len(self.vertices) != 4:
            return None
        bbox = self._bbox
        if bbox.area <= 0.0:
            return None
        corners = {(c.x, c.y) for c in bbox.corners()}
        if {(v.x, v.y) for v in self.vertices} != corners:
            return None
        return bbox

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def contains_point(self, p: GeoPoint) -> bool:
        """Even-odd point-in-polygon test; boundary points count inside."""
        if not self._bbox.contains_point(p):
            return False
        verts = self.vertices
        n = len(verts)
        inside = False
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            if _on_segment(p, a, b):
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def intersects_rect(self, rect: Rect) -> bool:
        """True when the polygon and the rectangle share any point."""
        if not self._bbox.intersects(rect):
            return False
        # Any polygon vertex inside the rect, or any rect corner inside
        # the polygon, or any edge pair crossing.
        if any(rect.contains_point(v) for v in self.vertices):
            return True
        if any(self.contains_point(c) for c in rect.corners()):
            return True
        rect_edges = _rect_edges(rect)
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            for c, d in rect_edges:
                if _segments_intersect(a, b, c, d):
                    return True
        return False

    def clip_to_rect(self, rect: Rect) -> "Polygon | None":
        """The intersection of this polygon with a rectangle, or ``None``
        when it is empty or degenerate (fewer than 3 distinct vertices).

        Sutherland–Hodgman clipping against the rectangle's four
        half-planes; the clip region is convex, so a simple input yields
        a simple output.  Used by the shard directory to weight scatter
        shares by *actual* polygon overlap instead of the bounding-box
        approximation (which over-admits shards the polygon never
        touches), and by the geoblock planner to build boundary-cell
        sub-queries.

        The output is canonical: consecutive duplicates and exactly
        collinear vertices introduced by clipping are collapsed, and a
        result that degenerates to zero area (the polygon merely touches
        the rectangle along an edge or at a corner, or the input ring
        itself was flat) is reported as ``None``.  Canonicalisation
        makes clipping idempotent — ``clip(clip(p, r), r) ==
        clip(p, r)`` — which the geometry property suite pins.
        """
        verts: list[GeoPoint] = list(self.vertices)
        for inside, intersect in _rect_half_planes(rect):
            if not verts:
                return None
            clipped: list[GeoPoint] = []
            prev = verts[-1]
            prev_in = inside(prev)
            for curr in verts:
                curr_in = inside(curr)
                if curr_in:
                    if not prev_in:
                        clipped.append(intersect(prev, curr))
                    clipped.append(curr)
                elif prev_in:
                    clipped.append(intersect(prev, curr))
                prev, prev_in = curr, curr_in
            verts = clipped
        # Collapse consecutive duplicates introduced by vertices lying
        # exactly on a clip edge.
        unique: list[GeoPoint] = []
        for v in verts:
            if not unique or (
                abs(v.x - unique[-1].x) > 1e-12 or abs(v.y - unique[-1].y) > 1e-12
            ):
                unique.append(v)
        if len(unique) >= 2 and (
            abs(unique[0].x - unique[-1].x) <= 1e-12
            and abs(unique[0].y - unique[-1].y) <= 1e-12
        ):
            unique.pop()
        unique = _collapse_collinear(unique)
        if len(unique) < 3:
            return None
        if _ring_area(unique) == 0.0:
            return None
        return Polygon(unique)

    def contains_rect(self, rect: Rect) -> bool:
        """True when the rectangle lies entirely inside the polygon.

        For a simple polygon it suffices that all four corners are inside
        and no polygon edge crosses a rectangle edge.
        """
        if not self._bbox.contains_rect(rect):
            return False
        if not all(self.contains_point(c) for c in rect.corners()):
            return False
        rect_edges = _rect_edges(rect)
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            for c, d in rect_edges:
                if _segments_properly_intersect(a, b, c, d):
                    return False
        return True


def _rect_half_planes(rect: Rect):
    """The rectangle's four clip predicates as ``(inside, intersect)``
    pairs for Sutherland–Hodgman clipping."""

    def cross_x(bound: float):
        def intersect(a: GeoPoint, b: GeoPoint) -> GeoPoint:
            t = (bound - a.x) / (b.x - a.x)
            return GeoPoint(bound, a.y + t * (b.y - a.y))

        return intersect

    def cross_y(bound: float):
        def intersect(a: GeoPoint, b: GeoPoint) -> GeoPoint:
            t = (bound - a.y) / (b.y - a.y)
            return GeoPoint(a.x + t * (b.x - a.x), bound)

        return intersect

    return [
        (lambda p, b=rect.min_x: p.x >= b, cross_x(rect.min_x)),
        (lambda p, b=rect.max_x: p.x <= b, cross_x(rect.max_x)),
        (lambda p, b=rect.min_y: p.y >= b, cross_y(rect.min_y)),
        (lambda p, b=rect.max_y: p.y <= b, cross_y(rect.max_y)),
    ]


def _ring_area(points: Sequence[GeoPoint]) -> float:
    """Unsigned shoelace area of a vertex ring (no Polygon required, so
    degenerate rings can be measured before construction)."""
    total = 0.0
    n = len(points)
    for i in range(n):
        a = points[i]
        b = points[(i + 1) % n]
        total += a.x * b.y - b.x * a.y
    return abs(total) / 2.0


def _collapse_collinear(points: list[GeoPoint]) -> list[GeoPoint]:
    """Drop vertices that are *exactly* collinear with their cyclic
    neighbours.

    Clipping against an axis-aligned boundary stamps the clamped
    coordinate exactly, so every spurious mid-edge vertex it introduces
    is exactly collinear with its neighbours — an exact-zero orientation
    test removes all of them without perturbing genuine geometry (a
    tolerance here would silently move near-degenerate edges)."""
    out = list(points)
    changed = True
    while changed and len(out) >= 3:
        changed = False
        for i in range(len(out)):
            a = out[i - 1]
            b = out[i]
            c = out[(i + 1) % len(out)]
            if _orient(a, b, c) == 0.0:
                del out[i]
                changed = True
                break
    return out


def _rect_edges(rect: Rect) -> list[tuple[GeoPoint, GeoPoint]]:
    c0, c1, c2, c3 = rect.corners()
    return [(c0, c1), (c1, c2), (c2, c3), (c3, c0)]


def _orient(a: GeoPoint, b: GeoPoint, c: GeoPoint) -> float:
    """Signed area of the triangle (a, b, c); >0 means counterclockwise."""
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def _on_segment(p: GeoPoint, a: GeoPoint, b: GeoPoint) -> bool:
    """True when ``p`` lies on the closed segment ``ab``."""
    if abs(_orient(a, b, p)) > 1e-12 * (1.0 + abs(a.x) + abs(b.x) + abs(a.y) + abs(b.y)):
        return False
    return (
        min(a.x, b.x) - 1e-12 <= p.x <= max(a.x, b.x) + 1e-12
        and min(a.y, b.y) - 1e-12 <= p.y <= max(a.y, b.y) + 1e-12
    )


def _segments_intersect(a: GeoPoint, b: GeoPoint, c: GeoPoint, d: GeoPoint) -> bool:
    """Closed-segment intersection (touching endpoints count)."""
    o1 = _orient(a, b, c)
    o2 = _orient(a, b, d)
    o3 = _orient(c, d, a)
    o4 = _orient(c, d, b)
    if ((o1 > 0) != (o2 > 0)) and ((o3 > 0) != (o4 > 0)) and o1 != 0 and o2 != 0 and o3 != 0 and o4 != 0:
        return True
    return (
        _on_segment(c, a, b)
        or _on_segment(d, a, b)
        or _on_segment(a, c, d)
        or _on_segment(b, c, d)
    )


def _segments_properly_intersect(a: GeoPoint, b: GeoPoint, c: GeoPoint, d: GeoPoint) -> bool:
    """Proper crossing test: the segments cross at an interior point."""
    o1 = _orient(a, b, c)
    o2 = _orient(a, b, d)
    o3 = _orient(c, d, a)
    o4 = _orient(c, d, b)
    return ((o1 > 0) != (o2 > 0)) and ((o3 > 0) != (o4 > 0)) and 0 not in (o1, o2, o3, o4)
