"""Spatial primitives used throughout the COLR-Tree reproduction.

The index itself works in planar (x, y) coordinates; for geographic
workloads we map longitude to ``x`` and latitude to ``y``.  Distances in
miles (for the ``CLUSTER`` clause of portal queries) use the haversine
formula from :mod:`repro.geometry.point`.

Public classes
--------------
``GeoPoint``
    An immutable 2-D point with planar and great-circle distance helpers.
``Rect``
    An axis-aligned rectangle: the bounding-box type of tree nodes and of
    viewport queries.  Provides intersection, containment, area and the
    *overlap fraction* used by layered sampling (line 9 / 17 of
    Algorithm 1 in the paper).
``Polygon``
    A simple polygon for ``WITHIN Polygon(...)`` query regions, with
    point-in-polygon and rectangle-relation tests.
"""

from repro.geometry.point import GeoPoint, haversine_miles, planar_distance
from repro.geometry.rect import Rect
from repro.geometry.polygon import Polygon

__all__ = [
    "GeoPoint",
    "Rect",
    "Polygon",
    "haversine_miles",
    "planar_distance",
]
