"""Axis-aligned rectangles.

``Rect`` is the bounding-box type used for COLR-Tree node extents and for
viewport (range) queries.  Beyond the usual intersection / containment
tests it implements ``overlap_fraction``, the ``Overlap(BB(i), A)`` term
of the paper's layered-sampling Algorithm 1: the fraction of *this*
rectangle's area that lies inside another region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geometry.point import GeoPoint


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate rectangles (zero width or height) are allowed; they arise
    naturally as bounding boxes of single points or collinear sensors.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"invalid Rect: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[GeoPoint]) -> "Rect":
        """Bounding box of a non-empty collection of points."""
        xs: list[float] = []
        ys: list[float] = []
        for p in points:
            xs.append(p.x)
            ys.append(p.y)
        if not xs:
            raise ValueError("cannot build a Rect from zero points")
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def from_center(cls, center: GeoPoint, half_width: float, half_height: float) -> "Rect":
        """Rectangle centered at ``center`` with the given half extents."""
        if half_width < 0 or half_height < 0:
            raise ValueError("half extents must be non-negative")
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @classmethod
    def union_of(cls, rects: Sequence["Rect"]) -> "Rect":
        """Smallest rectangle covering every rectangle in ``rects``."""
        if not rects:
            raise ValueError("cannot union zero rectangles")
        return cls(
            min(r.min_x for r in rects),
            min(r.min_y for r in rects),
            max(r.max_x for r in rects),
            max(r.max_y for r in rects),
        )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> GeoPoint:
        return GeoPoint((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def contains_point(self, p: GeoPoint) -> bool:
        """Closed containment test for a point."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least a boundary point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def intersects_rect(self, rect: "Rect") -> bool:
        """Alias of :meth:`intersects` so ``Rect`` and ``Polygon`` expose
        the same region protocol (``intersects_rect`` / ``contains_rect``
        / ``contains_point``) to the index."""
        return self.intersects(rect)

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def overlap_fraction(self, region: "Rect") -> float:
        """Fraction of *this* rectangle's area inside ``region``.

        This is ``Overlap(BB(i), A)`` from Algorithm 1.  For a degenerate
        (zero-area) rectangle the fraction degrades gracefully: 1.0 when
        the center lies inside the region, otherwise 0.0 — a point-like
        node either contributes fully or not at all.
        """
        inter = self.intersection(region)
        if inter is None:
            return 0.0
        if self.area <= 0.0:
            return 1.0 if region.contains_point(self.center) else 0.0
        return inter.area / self.area

    def expanded(self, margin: float) -> "Rect":
        """A rectangle grown by ``margin`` on every side."""
        if margin < 0 and (self.width < -2 * margin or self.height < -2 * margin):
            raise ValueError("negative margin would invert the rectangle")
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def corners(self) -> tuple[GeoPoint, GeoPoint, GeoPoint, GeoPoint]:
        """The four corner points, counterclockwise from the lower-left."""
        return (
            GeoPoint(self.min_x, self.min_y),
            GeoPoint(self.max_x, self.min_y),
            GeoPoint(self.max_x, self.max_y),
            GeoPoint(self.min_x, self.max_y),
        )

    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def distance_to_point(self, p: GeoPoint) -> float:
        """Euclidean distance from ``p`` to the rectangle (0 when inside)."""
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)
