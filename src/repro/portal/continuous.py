"""Continuous queries: standing viewports refreshed on a schedule.

A SensorMap user keeps a map open; the portal periodically re-executes
the viewport's query and pushes *changes* to the front end rather than
re-sending the whole result.  ``ContinuousQueryManager`` implements
that loop over the simulated clock: subscriptions carry a refresh
interval (defaulting to the query's staleness bound — data older than
that is no longer acceptable anyway), ``tick()`` runs everything due,
and each run produces a :class:`ResultDelta` of appeared / changed /
departed sensors plus the aggregate drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.portal.portal import PortalResult, SensorMapPortal
from repro.portal.query import SensorQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.geoblocks.windows import SlidingWindow


@dataclass(frozen=True, slots=True)
class ResultDelta:
    """What changed between two executions of a standing query."""

    appeared: tuple[int, ...]
    departed: tuple[int, ...]
    changed: tuple[int, ...]
    aggregate_before: float | None
    aggregate_after: float | None

    @property
    def is_empty(self) -> bool:
        return not (self.appeared or self.departed or self.changed) and (
            self.aggregate_before == self.aggregate_after
        )


DeltaCallback = Callable[["Subscription", ResultDelta, PortalResult], None]


@dataclass
class Subscription:
    """One standing query."""

    subscription_id: int
    query: SensorQuery
    refresh_seconds: float
    callback: DeltaCallback | None = None
    phase_seconds: float = 0.0
    created_at: float = 0.0
    last_executed_at: float | None = None
    last_result: PortalResult | None = None
    _last_values: dict[int, float] = field(default_factory=dict)
    executions: int = 0
    # Analytic-window subscriptions (see subscribe_window): each refresh
    # steps the sliding window over the viewport ``region_fn`` reports
    # for the current instant, reusing still-valid cell aggregates from
    # the previous step instead of re-executing the whole query.
    window: "SlidingWindow | None" = None
    region_fn: Callable[[float], object] | None = None

    def due_at(self) -> float:
        """Next execution instant (the first run waits out the phase
        offset; with no offset that is the creation instant)."""
        if self.last_executed_at is None:
            return self.created_at + self.phase_seconds
        return self.last_executed_at + self.refresh_seconds


# Fractional part of the golden ratio: consecutive multiples mod 1 are
# maximally spread over [0, 1), so auto-assigned phases never cluster.
_PHASE_GOLDEN = 0.6180339887498949


class ContinuousQueryManager:
    """Drives standing queries against one portal.

    ``portal`` may equally be a
    :class:`~repro.federation.federated.FederatedPortal` — the manager
    only relies on ``clock`` / ``transport_enabled`` / ``execute`` /
    ``execute_batch``, which the coordinator mirrors.

    When ``stagger_seconds`` is set, each new subscription gets an
    automatic first-run phase offset (golden-ratio spaced over
    ``[0, stagger_seconds)``) so a thundering herd of same-interval
    subscriptions spreads across ticks instead of all firing at once.
    Once offset, subscriptions keep their relative phases forever —
    each next run is ``last_executed_at + refresh_seconds``.  Probes
    shared by viewports that still land on the same tick are absorbed
    by the transport dispatcher's in-flight/recently-probed tables.
    """

    def __init__(
        self,
        portal: SensorMapPortal,
        stagger_seconds: float | None = None,
        gather_deadline_seconds: float | None = None,
    ) -> None:
        """``gather_deadline_seconds`` opts ticks into streaming
        gathers when the portal offers them (``FederatedPortal`` on
        either backend): each due subscription publishes the
        partial-but-monotone answer available at the deadline instead
        of waiting out the slowest shard, and late shard answers simply
        ride the next refresh.  ``None`` (the default) keeps the
        synchronous gather.  Unsharded portals ignore the deadline —
        there is no gather to stream."""
        if stagger_seconds is not None and stagger_seconds < 0:
            raise ValueError("stagger_seconds must be non-negative")
        if gather_deadline_seconds is not None and gather_deadline_seconds <= 0:
            raise ValueError("gather_deadline_seconds must be positive or None")
        self.portal = portal
        self.stagger_seconds = stagger_seconds
        self.gather_deadline_seconds = gather_deadline_seconds
        self._subscriptions: dict[int, Subscription] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query: SensorQuery,
        refresh_seconds: float | None = None,
        callback: DeltaCallback | None = None,
        phase_seconds: float | None = None,
    ) -> Subscription:
        """Register a standing query.

        The refresh interval defaults to the query's staleness bound —
        by then the previous answer has aged out of acceptability.
        ``phase_seconds`` delays the first run; when omitted it is 0,
        or golden-ratio auto-staggered when the manager was built with
        ``stagger_seconds``.
        """
        interval = (
            refresh_seconds if refresh_seconds is not None else query.staleness_seconds
        )
        if interval <= 0:
            raise ValueError("refresh interval must be positive")
        if phase_seconds is None:
            phase = 0.0
            if self.stagger_seconds:
                phase = (self._next_id * _PHASE_GOLDEN) % 1.0 * self.stagger_seconds
        elif phase_seconds < 0:
            raise ValueError("phase_seconds must be non-negative")
        else:
            phase = float(phase_seconds)
        subscription = Subscription(
            subscription_id=self._next_id,
            query=query,
            refresh_seconds=float(interval),
            callback=callback,
            phase_seconds=phase,
            created_at=self.portal.clock.now(),
        )
        self._subscriptions[subscription.subscription_id] = subscription
        self._next_id += 1
        return subscription

    def subscribe_window(
        self,
        window: "SlidingWindow",
        region_fn: Callable[[float], object],
        refresh_seconds: float | None = None,
        callback: DeltaCallback | None = None,
        phase_seconds: float | None = None,
    ) -> Subscription:
        """Register a sliding analytic window as a standing query.

        ``region_fn(now)`` reports the viewport (``Rect`` or
        ``Polygon``) the window should cover at each refresh — a moving
        viewport is just a time-dependent region.  Each due tick runs
        ``window.step(region_fn(now))`` instead of a portal execution,
        so consecutive refreshes recompute only the cells the viewport
        (or the data under it) actually changed; deltas and callbacks
        behave exactly like a plain subscription's.
        """
        now = self.portal.clock.now()
        subscription = self.subscribe(
            SensorQuery(
                region=region_fn(now),
                staleness_seconds=window.staleness_seconds,
                sensor_type=window.sensor_type,
            ),
            refresh_seconds=refresh_seconds,
            callback=callback,
            phase_seconds=phase_seconds,
        )
        subscription.window = window
        subscription.region_fn = region_fn
        return subscription

    def unsubscribe(self, subscription_id: int) -> None:
        if subscription_id not in self._subscriptions:
            raise KeyError(f"no subscription {subscription_id}")
        del self._subscriptions[subscription_id]

    def __len__(self) -> int:
        return len(self._subscriptions)

    def subscriptions(self) -> list[Subscription]:
        return [self._subscriptions[i] for i in sorted(self._subscriptions)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def tick(self) -> list[tuple[Subscription, ResultDelta]]:
        """Execute every subscription due at the portal's current time.

        The due subscriptions form a natural batch — one tick, one
        clock instant, many overlapping viewports — so two or more run
        through :meth:`SensorMapPortal.execute_batch` (shared
        traversals, each sensor probed at most once this tick); a lone
        due subscription takes the single-query path, which is
        bit-identical anyway.

        Returns the (subscription, delta) pairs that ran, in
        subscription order.  Callbacks fire after each run.
        """
        now = self.portal.clock.now()
        due = [s for s in self.subscriptions() if s.due_at() <= now]
        if not due:
            return []
        # Analytic-window subscriptions step their sliding window (cell
        # reuse + symmetric-difference recompute) instead of running a
        # portal execution; plain subscriptions keep the batch paths.
        windows = [s for s in due if s.window is not None]
        plain = [s for s in due if s.window is None]
        out: list[tuple[Subscription, ResultDelta]] = []
        for subscription in windows:
            assert subscription.region_fn is not None
            result = subscription.window.step(subscription.region_fn(now))
            subscription.query = result.query
            out.append((subscription, self._apply_result(subscription, result)))
        out.extend(self._tick_plain(plain))
        out.sort(key=lambda pair: pair[0].subscription_id)
        return out

    def _tick_plain(
        self, due: list[Subscription]
    ) -> list[tuple[Subscription, ResultDelta]]:
        if not due:
            return []
        if self.gather_deadline_seconds is not None and hasattr(
            self.portal, "execute_streaming"
        ):
            # Streaming gathers run per subscription (no cross-query
            # batching — each standing viewport publishes at its own
            # deadline).  The published result is the deadline answer;
            # a deferred shard's late readings arrive with the next
            # refresh, so the front end only ever gains sensors.
            out = []
            for subscription in due:
                gather = self.portal.execute_streaming(
                    subscription.query, self.gather_deadline_seconds
                )
                out.append(
                    (subscription, self._apply_result(subscription, gather.first))
                )
            return out
        if len(due) == 1 and not self.portal.transport_enabled:
            subscription = due[0]
            return [(subscription, self._execute(subscription))]
        # With the transport dispatcher on, even a lone subscription runs
        # through the batch path so a type-less query's per-tree probe
        # rounds overlap (answers are identical either way).
        batch = self.portal.execute_batch([s.query for s in due])
        return [
            (subscription, self._apply_result(subscription, result))
            for subscription, result in zip(due, batch.results)
        ]

    def run_for(self, duration: float, step: float) -> int:
        """Advance the clock in ``step`` increments for ``duration``
        seconds, ticking at each step; returns the execution count."""
        if step <= 0 or duration < 0:
            raise ValueError("need a positive step and non-negative duration")
        executed = 0
        elapsed = 0.0
        while elapsed < duration:
            self.portal.clock.advance(step)
            elapsed += step
            executed += len(self.tick())
        return executed

    def _execute(self, subscription: Subscription) -> ResultDelta:
        return self._apply_result(subscription, self.portal.execute(subscription.query))

    def _apply_result(
        self, subscription: Subscription, result: PortalResult
    ) -> ResultDelta:
        """Fold one execution's result into the subscription: compute
        the delta against the previous run, update the baseline, and
        fire the callback."""
        new_values: dict[int, float] = {}
        for answer in result.answers:
            for reading in list(answer.probed_readings) + list(answer.cached_readings):
                new_values[reading.sensor_id] = reading.value
        old_values = subscription._last_values
        appeared = tuple(sorted(set(new_values) - set(old_values)))
        departed = tuple(sorted(set(old_values) - set(new_values)))
        changed = tuple(
            sorted(
                sid
                for sid in set(new_values) & set(old_values)
                if new_values[sid] != old_values[sid]
            )
        )
        try:
            agg_after: float | None = result.aggregate()
        except ValueError:
            agg_after = None
        agg_before: float | None = None
        if subscription.last_result is not None:
            try:
                agg_before = subscription.last_result.aggregate()
            except ValueError:
                agg_before = None
        delta = ResultDelta(
            appeared=appeared,
            departed=departed,
            changed=changed,
            aggregate_before=agg_before,
            aggregate_after=agg_after,
        )
        subscription.last_executed_at = self.portal.clock.now()
        subscription.last_result = result
        subscription._last_values = new_values
        subscription.executions += 1
        if subscription.callback is not None:
            subscription.callback(subscription, delta, result)
        return delta
