"""The SensorMap portal facade.

``SensorMapPortal`` wires the whole reproduction together the way the
deployed portal wires SQL Server, the data collector and the web front
end: publishers register sensors, the portal (re)builds one COLR-Tree
per sensor type (the paper rebuilds periodically to absorb location
changes; we rebuild lazily when the population changed), and user
queries — SQL text or :class:`SensorQuery` objects — are executed
against the index with probe-budget sampling, viewport grouping and
latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.config import COLRTreeConfig
from repro.core.lookup import QueryAnswer
from repro.core.stats import ProcessingCostModel
from repro.core.tree import COLRTree
from repro.geometry import GeoPoint
from repro.portal.grouping import DisplayGroup, group_answer, group_by_terminal
from repro.portal.parser import parse_query
from repro.portal.query import SensorQuery
from repro.sensors.availability import AvailabilityModel
from repro.sensors.clock import SimClock
from repro.sensors.network import SensorNetwork
from repro.sensors.registry import SensorRegistry
from repro.sensors.sensor import Sensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.geoblocks.config import GeoBlockConfig
    from repro.geoblocks.grid import GeoBlockGrid
    from repro.portal.batch import BatchResult
    from repro.sensors.sensor import Reading
    from repro.storage.config import StorageConfig
    from repro.storage.engine import RecoveredState, StorageEngine
    from repro.transport.config import TransportConfig
    from repro.transport.dispatcher import ProbeDispatcher


@dataclass
class PortalResult:
    """What a portal query returns to the front end.

    ``sample_requested`` is the portal's *effective* sample target for
    the query (cap semantics applied, summed across the per-type trees
    it fanned out to), or ``None`` for an exact lookup.  Together with
    :attr:`sample_achieved` / :attr:`pool_exhausted` it surfaces the
    achieved-vs-requested story the layered sampler used to keep to
    itself — the federation coordinator reads these to decide whether a
    shard's shortfall is worth redistributing and whether the shard has
    pool left to borrow.
    """

    query: SensorQuery
    groups: list[DisplayGroup]
    answers: list[QueryAnswer]
    processing_seconds: float
    collection_seconds: float
    sample_requested: int | None = None

    @property
    def end_to_end_seconds(self) -> float:
        return self.processing_seconds + self.collection_seconds

    @property
    def result_weight(self) -> int:
        return sum(a.result_weight for a in self.answers)

    @property
    def sample_achieved(self) -> int:
        """Readings represented in the answer — what the request got."""
        return self.result_weight

    @property
    def sample_shortfall(self) -> int:
        """How far the answer fell short of the requested sample size
        (0 for exact lookups and for answers that met or over-delivered
        the target, e.g. via cached aggregates)."""
        if self.sample_requested is None:
            return 0
        return max(0, self.sample_requested - self.result_weight)

    @property
    def pool_exhausted(self) -> bool:
        """True when any terminal genuinely ran out of in-region
        sensors (as opposed to rounding noise or probe failures)."""
        return any(a.stats.pool_exhausted_terminals > 0 for a in self.answers)

    def aggregate(self) -> float:
        """The requested aggregate over the whole answer."""
        from repro.core.aggregates import combine

        total = combine(a.combined_sketch() for a in self.answers)
        return total.result(self.query.aggregate)


class SensorMapPortal:
    """The rendezvous point of publishers and map users."""

    def __init__(
        self,
        config: COLRTreeConfig | None = None,
        cost_model: ProcessingCostModel | None = None,
        value_fn=None,
        network_seed: int = 0,
        clock: SimClock | None = None,
        max_sensors_per_query: int | None = 1000,
        transport: "TransportConfig | None" = None,
        network_options: dict[str, object] | None = None,
        storage: "StorageConfig | None" = None,
        geoblocks: "GeoBlockConfig | None" = None,
    ) -> None:
        """``max_sensors_per_query`` is the portal-wide collection cap of
        Section III-B: a whole-world query is answered from at most this
        many sensors, roughly uniformly distributed, instead of trying
        to contact everything.  ``None`` disables the cap.

        ``transport`` opts the portal into the probe-transport
        dispatcher (``repro.transport``): all probing is routed through
        one shared ``ProbeDispatcher`` with in-flight dedup,
        retry/backoff/cooldown and overlapping rounds.  ``None`` (or a
        config with ``enabled=False``) keeps the direct synchronous
        ``network.probe`` path.  ``network_options`` forwards extra
        keyword arguments (``rtt_seconds``, ``parallelism``,
        ``latency_jitter``, ``timeout_seconds``) to the
        ``SensorNetwork`` built on each index rebuild.

        ``storage`` opts the portal into the durable storage engine
        (``repro.storage``): registrations and acknowledged slot-cache
        ingestions are write-ahead logged, ``checkpoint()`` compacts
        the log into an immutable page file, and opening a portal on an
        existing data directory *recovers* — the registry reloads from
        disk, the deterministic tree rebuilds, and the recovered cache
        batches re-install so the first tick after restart is
        probe-free for fresh slots.  ``None`` (the default) keeps the
        historical in-memory behavior bit-identical.

        ``geoblocks`` configures the pre-aggregated geoblock grid behind
        ``execute_polygon`` (``repro.geoblocks``); ``None`` uses the
        default grid config.  The grid itself is built lazily on the
        first polygon query that needs it."""
        if max_sensors_per_query is not None and max_sensors_per_query < 1:
            raise ValueError("max_sensors_per_query must be positive or None")
        self.config = config if config is not None else COLRTreeConfig()
        self.max_sensors_per_query = max_sensors_per_query
        self.cost_model = cost_model if cost_model is not None else ProcessingCostModel()
        self.registry = SensorRegistry()
        self.availability = AvailabilityModel()
        self.clock = clock if clock is not None else SimClock()
        self._value_fn = value_fn
        self._network_seed = network_seed
        self._network_options = dict(network_options) if network_options else {}
        self.transport_config = transport
        self._dispatcher: "ProbeDispatcher | None" = None
        self._network: SensorNetwork | None = None
        self._trees: dict[str, COLRTree] = {}
        self._index_dirty = True
        # Monotone build counter: bumped by every rebuild_index() so
        # layers above the portal (the front-door result cache) can
        # detect that cached answers predate the current index.
        self.index_generation = 0
        # Durable storage (optional).  Opening the engine performs
        # recovery: the durable registry reloads immediately, the
        # recovered cache batches wait in ``_recovered_pending`` until
        # the first ``rebuild_index()`` re-installs them (priming runs
        # with the WAL sink detached, so replay is never re-journaled).
        # Geoblock grid (lazy; see geoblocks()).
        self.geoblocks_config = geoblocks
        self._geoblocks: "GeoBlockGrid | None" = None
        self.storage_config = storage
        self.storage: "StorageEngine | None" = None
        self.last_recovery: "RecoveredState | None" = None
        self._recovered_pending: list[tuple[float, list["Reading"]]] = []
        self._recovery_maintenance_ops = 0
        if storage is not None:
            from repro.storage.engine import StorageEngine

            self.storage = StorageEngine(storage)
            recovered = self.storage.recovered
            self.last_recovery = recovered
            if recovered.sensors:
                self.registry.register_all(recovered.sensors)
                self._recovered_pending = list(recovered.batches)
            self.clock.advance_to(recovered.clock_now)

    @property
    def transport_enabled(self) -> bool:
        """True when probing routes through the transport dispatcher."""
        return self.transport_config is not None and self.transport_config.enabled

    @property
    def dispatcher(self) -> "ProbeDispatcher | None":
        """The portal-wide probe dispatcher (None when transport is
        disabled or the index is not built yet)."""
        return self._dispatcher

    # ------------------------------------------------------------------
    # Publisher side
    # ------------------------------------------------------------------
    def register_sensor(
        self,
        location: GeoPoint,
        expiry_seconds: float,
        sensor_type: str = "generic",
        availability: float = 1.0,
        metadata: dict[str, str] | None = None,
    ) -> Sensor:
        """Register one sensor; the index rebuilds before the next query."""
        sensor = self.registry.register(
            location,
            expiry_seconds,
            sensor_type=sensor_type,
            availability=availability,
            metadata=metadata,
        )
        if self.storage is not None:
            self.storage.journal_register(sensor)
        self._index_dirty = True
        return sensor

    def register_all(self, sensors: list[Sensor]) -> None:
        if self.storage is not None:
            # A durable portal may already hold (some of) these sensors
            # from recovery: re-registering the identical sensor is a
            # no-op, a conflicting definition under a recovered id is an
            # error, and only genuinely fresh sensors are journaled.
            existing = {s.sensor_id: s for s in self.registry}
            fresh: list[Sensor] = []
            for sensor in sensors:
                prior = existing.get(sensor.sensor_id)
                if prior is not None:
                    if prior != sensor:
                        raise ValueError(
                            f"sensor {sensor.sensor_id} conflicts with the "
                            "recovered definition in the data directory"
                        )
                    continue
                fresh.append(sensor)
            self.registry.register_all(fresh)
            for sensor in fresh:
                self.storage.journal_register(sensor)
        else:
            self.registry.register_all(sensors)
        self._index_dirty = True

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def rebuild_index(self) -> None:
        """(Re)build one COLR-Tree per registered sensor type — the
        paper's periodic batch reconstruction."""
        if len(self.registry) == 0:
            raise ValueError("no sensors registered")
        self._network = SensorNetwork(
            self.registry.all(),
            value_fn=self._value_fn,
            availability_model=self.availability,
            seed=self._network_seed,
            **self._network_options,
        )
        if self.transport_enabled:
            from repro.transport.dispatcher import ProbeDispatcher

            self._dispatcher = ProbeDispatcher(self._network, self.transport_config)
        else:
            self._dispatcher = None
        self._trees = {}
        by_type: dict[str, list[Sensor]] = {}
        for sensor in self.registry:
            by_type.setdefault(sensor.sensor_type, []).append(sensor)
        for sensor_type, sensors in by_type.items():
            self._trees[sensor_type] = COLRTree(
                sensors,
                self.config,
                network=self._network,
                availability_model=self.availability,
                cost_model=self.cost_model,
                transport=self._dispatcher,
            )
        if self.storage is not None:
            # Prime the recovered cache batches BEFORE attaching the WAL
            # sink, so replay is never re-journaled; afterwards every
            # acknowledged ingestion flows back into the log and every
            # query meters the disk I/O it caused.
            self._prime_recovered()
            for tree in self._trees.values():
                tree.wal_sink = self._journal_ingest
                tree.storage_meter = self.storage.stats
        self._index_dirty = False
        self.index_generation += 1

    # ------------------------------------------------------------------
    # Durable storage
    # ------------------------------------------------------------------
    def _prime_recovered(self) -> None:
        """Re-install recovered cache batches into freshly built trees.

        Replay preserves the original batch boundaries, so grouped-delta
        ingestion reproduces counts/extremes/weights bit-exactly (sums
        agree up to summation order once a checkpoint has compacted
        batches; see the batch-equivalence note in ``COLRTree``).
        Expired readings are *not* filtered here — query-time staleness
        pruning then behaves exactly as it would have pre-crash."""
        if not self._recovered_pending:
            return
        type_of = {s.sensor_id: s.sensor_type for s in self.registry}
        ops = 0
        for fetched_at, readings in self._recovered_pending:
            split: dict[str, list["Reading"]] = {}
            for reading in readings:
                sensor_type = type_of.get(reading.sensor_id)
                if sensor_type is None or sensor_type not in self._trees:
                    continue
                split.setdefault(sensor_type, []).append(reading)
            for sensor_type, batch in split.items():
                ops += self._trees[sensor_type].insert_readings_batch(
                    batch, fetched_at=fetched_at
                )
        self._recovery_maintenance_ops += ops
        self._recovered_pending = []

    def _journal_ingest(self, readings, fetched_at: float) -> None:
        """WAL sink for the trees: journal one acknowledged slot-cache
        batch, crediting the I/O it caused to the network meters."""
        engine = self.storage
        assert engine is not None
        before = engine.stats.io_counters()
        engine.journal_batch(list(readings), fetched_at)
        after = engine.stats.io_counters()
        if self._network is not None:
            net = self._network.stats
            net.page_reads += after[0] - before[0]
            net.page_writes += after[1] - before[1]
            net.wal_appends += after[2] - before[2]
            net.wal_fsyncs += after[3] - before[3]

    def _cached_entries(self) -> list[tuple["Reading", float]]:
        """Every cached leaf reading with its fetch stamp, across all
        per-type trees (the checkpoint's cache image)."""
        entries: list[tuple["Reading", float]] = []
        for tree in self._trees.values():
            for node in tree.nodes():
                if node.leaf_cache is None:
                    continue
                for cached in node.leaf_cache.entries():
                    entries.append((cached.reading, cached.fetched_at))
        return entries

    def export_cache(
        self, sensor_ids: "Sequence[int] | None" = None
    ) -> list[tuple["Reading", float]]:
        """Cached readings (with fetch stamps) for migration shipping.

        ``sensor_ids`` filters to the sensors leaving this shard; the
        default exports everything (a full warm image, as a checkpoint
        would see it).  Read-only: no probes, no cache mutation."""
        self._ensure_index()
        entries = self._cached_entries()
        if sensor_ids is None:
            return entries
        wanted = set(sensor_ids)
        return [e for e in entries if e[0].sensor_id in wanted]

    def install_cache_entries(
        self, entries: "Sequence[tuple[Reading, float]]"
    ) -> int:
        """Prime migrated slot-cache entries into this portal's trees.

        The inverse of :meth:`export_cache` on the receiving shard:
        readings are grouped by their *original* fetch stamp (batch
        boundaries preserved, first-seen order — the same discipline as
        ``_prime_recovered``) and inserted as maintenance batches, never
        probes.  The WAL sink is detached while priming — durability for
        migrated state comes from the checkpoint the rebalance protocol
        issues right after the install, not from re-journaling readings
        another shard already acknowledged.  Returns readings installed
        (readings for unknown sensors/types are skipped)."""
        self._ensure_index()
        type_of = {s.sensor_id: s.sensor_type for s in self.registry}
        batches: dict[float, dict[str, list["Reading"]]] = {}
        order: list[float] = []
        for reading, fetched_at in entries:
            sensor_type = type_of.get(reading.sensor_id)
            if sensor_type is None or sensor_type not in self._trees:
                continue
            if fetched_at not in batches:
                batches[fetched_at] = {}
                order.append(fetched_at)
            batches[fetched_at].setdefault(sensor_type, []).append(reading)
        installed = 0
        saved_sinks = {name: tree.wal_sink for name, tree in self._trees.items()}
        try:
            for tree in self._trees.values():
                tree.wal_sink = None
            for fetched_at in order:
                for sensor_type, batch in batches[fetched_at].items():
                    self._trees[sensor_type].insert_readings_batch(
                        batch, fetched_at=fetched_at
                    )
                    installed += len(batch)
        finally:
            for name, tree in self._trees.items():
                tree.wal_sink = saved_sinks[name]
        return installed

    def checkpoint(self) -> None:
        """Compact the WAL into a fresh checkpoint page file.

        After a checkpoint the WAL is empty, so the next open replays
        only the page file plus whatever lands in the log afterwards."""
        if self.storage is None:
            raise RuntimeError("portal has no storage attached")
        self._ensure_index()
        before = self.storage.stats.io_counters()
        self.storage.checkpoint(
            sensors=self.registry.all(),
            cached=self._cached_entries(),
            clock_now=self.clock.now(),
        )
        after = self.storage.stats.io_counters()
        if self._network is not None:
            net = self._network.stats
            net.page_reads += after[0] - before[0]
            net.page_writes += after[1] - before[1]

    @property
    def recovery_seconds(self) -> float:
        """Modeled cost of the open-time recovery this portal performed:
        disk replay (engine cost model) plus the cache-maintenance work
        of re-installing the recovered batches (portal cost model)."""
        if self.storage is None:
            return 0.0
        return (
            self.storage.recovery_cost_seconds
            + self._recovery_maintenance_ops * self.cost_model.per_maintenance_op
        )

    def close(self) -> None:
        """Flush and close the storage engine (no-op without storage)."""
        if self.storage is not None and not self.storage.closed:
            self.storage.close()

    def crash(self) -> None:
        """Simulate abrupt process death: abandon the WAL mid-flight
        (no final fsync, no checkpoint).  Reopening the same data
        directory then exercises real recovery."""
        if self.storage is not None and not self.storage.closed:
            self.storage.crash()

    def __enter__(self) -> "SensorMapPortal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def network(self) -> SensorNetwork:
        if self._network is None:
            raise RuntimeError("index not built yet; call rebuild_index()")
        return self._network

    def tree(self, sensor_type: str) -> COLRTree:
        """The index of one sensor type (for inspection/tests)."""
        self._ensure_index()
        return self._trees[sensor_type]

    def sensor_types(self) -> list[str]:
        self._ensure_index()
        return sorted(self._trees)

    def _ensure_index(self) -> None:
        if self._index_dirty or not self._trees:
            self.rebuild_index()

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def execute_sql(self, sql: str) -> PortalResult:
        """Parse and execute one query in the SQL-ish dialect."""
        return self.execute(parse_query(sql))

    def execute(self, query: SensorQuery) -> PortalResult:
        """Execute one portal query at the current simulated time."""
        self._ensure_index()
        now = self.clock.now()
        if query.sensor_type is not None:
            if query.sensor_type not in self._trees:
                raise KeyError(f"no sensors of type {query.sensor_type!r} registered")
            trees = [self._trees[query.sensor_type]]
        else:
            trees = list(self._trees.values())
        answers: list[QueryAnswer] = []
        groups: list[DisplayGroup] = []
        processing = 0.0
        collection = 0.0
        sample_size = self._effective_sample_size(query.sample_size, len(trees))
        for tree in trees:
            answer = tree.query(
                query.region,
                now=now,
                max_staleness=query.staleness_seconds,
                sample_size=sample_size,
                terminal_level=query.zoom_level,
            )
            answers.append(answer)
            processing += self.cost_model.processing_seconds(answer.stats)
            collection += answer.stats.collection_latency_seconds
            if query.zoom_level is not None:
                groups.extend(group_by_terminal(answer, tree, query.zoom_level))
            else:
                groups.extend(group_answer(answer, query.cluster_miles, tree=tree))
        return PortalResult(
            query=query,
            groups=groups,
            answers=answers,
            processing_seconds=processing,
            collection_seconds=collection,
            sample_requested=(
                sample_size * len(trees)
                if sample_size and self.config.sampling_enabled
                else None
            ),
        )

    def execute_batch(self, queries: "Sequence[SensorQuery]") -> "BatchResult":
        """Execute a set of in-flight queries as one batch tick.

        Distinct regions classify once per batch, each live sensor is
        probed at most once (readings fan out to every requesting
        query), and probed readings enter the caches as grouped deltas.
        ``execute_batch([q])`` is bit-identical to ``execute(q)``; see
        :mod:`repro.portal.batch`.
        """
        from repro.portal.batch import execute_batch

        return execute_batch(self, queries)

    def geoblocks(self) -> "GeoBlockGrid":
        """The portal's (lazily built) geoblock grid, synced to the
        current index generation; see :mod:`repro.geoblocks.grid`."""
        if self._geoblocks is None:
            from repro.geoblocks.grid import GeoBlockGrid

            self._geoblocks = GeoBlockGrid(self, self.geoblocks_config)
        self._geoblocks.sync()
        return self._geoblocks

    def execute_polygon(self, query: SensorQuery) -> PortalResult:
        """Execute a polygon-region query via the geoblock planner.

        An axis-aligned rectangular polygon (or a plain ``Rect`` region)
        is answered bit-identically to :meth:`execute`; a genuine
        polygon on an uncapped portal composes grid-served interior
        cells with exact clipped boundary sub-queries; everything else
        falls back to :meth:`execute` (``Polygon`` is a full Region).
        See :mod:`repro.geoblocks.executor`.
        """
        from repro.geoblocks.executor import execute_polygon

        return execute_polygon(self, query)

    def stats(self) -> dict[str, object]:
        """Operational summary: per-type index shape, cache occupancy,
        cumulative query/probe totals, and network meters."""
        self._ensure_index()
        per_type = {}
        for name, tree in self._trees.items():
            per_type[name] = {
                "sensors": len(tree),
                "height": tree.height(),
                "cached_readings": tree.cached_reading_count,
                "queries": tree.stats.queries,
                "sensors_probed": tree.stats.totals.sensors_probed,
                "cached_nodes_accessed": tree.stats.totals.cached_nodes_accessed,
            }
        net = self.network.stats
        summary: dict[str, object] = {
            "types": per_type,
            "total_sensors": len(self.registry),
            "network": {
                "probes_attempted": net.probes_attempted,
                "probes_succeeded": net.probes_succeeded,
                "probes_unavailable": net.probes_unavailable,
                "probes_timed_out": net.probes_timed_out,
                "batches": net.batches,
                "total_collection_seconds": net.total_latency_seconds,
                "page_reads": net.page_reads,
                "page_writes": net.page_writes,
                "wal_appends": net.wal_appends,
                "wal_fsyncs": net.wal_fsyncs,
            },
        }
        if self._dispatcher is not None:
            t = self._dispatcher.stats
            summary["transport"] = {
                "rounds": t.rounds,
                "attempts": t.attempts,
                "retries": t.retries,
                "timeouts": t.timeouts,
                "dedup_hits": t.dedup_hits,
                "cooldown_skips": t.cooldown_skips,
                "overlapped_rounds": t.overlapped_rounds,
                "streamed_readings": t.streamed_readings,
            }
        if self.storage is not None:
            from dataclasses import asdict

            summary["storage"] = asdict(self.storage.stats)
        return summary

    def explain(self, query: SensorQuery) -> dict[str, object]:
        """EXPLAIN for a portal query: per-type plans plus totals,
        without probing anything.

        Returns ``{"plans": {type: QueryPlan}, "expected_probes": float,
        "cache_coverage": float}``.
        """
        self._ensure_index()
        if query.sensor_type is not None:
            if query.sensor_type not in self._trees:
                raise KeyError(f"no sensors of type {query.sensor_type!r} registered")
            trees = {query.sensor_type: self._trees[query.sensor_type]}
        else:
            trees = dict(self._trees)
        sample_size = self._effective_sample_size(query.sample_size, len(trees))
        plans = {
            name: tree.explain(
                query.region,
                now=self.clock.now(),
                max_staleness=query.staleness_seconds,
                sample_size=sample_size,
                terminal_level=query.zoom_level,
            )
            for name, tree in trees.items()
        }
        expected = sum(p.expected_probes for p in plans.values())
        coverages = [p.cache_coverage for p in plans.values()]
        return {
            "plans": plans,
            "expected_probes": expected,
            "cache_coverage": sum(coverages) / len(coverages) if coverages else 1.0,
        }

    def _effective_sample_size(
        self, requested: int | None, n_trees: int
    ) -> int | None:
        """Apply the portal-wide collection cap (Section III-B).

        A missing SAMPLESIZE on an uncapped portal stays exact; with a
        cap, exact queries are demoted to sampling at the cap, and
        explicit sample sizes are clamped to it.  The cap is split
        across the per-type trees a type-less query fans out to.
        """
        if self.max_sensors_per_query is None:
            # No cap: a query without SAMPLESIZE is exact (0 disables
            # sampling at the tree level).
            return 0 if requested is None else requested
        per_tree_cap = max(1, self.max_sensors_per_query // max(1, n_trees))
        if requested is None or requested == 0:
            return per_tree_cap
        return min(requested, per_tree_cap)
