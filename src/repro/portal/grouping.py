"""Viewport grouping (the ``CLUSTER`` clause).

A query over a large region in a fixed-size viewport would paint
overlapping icons; SensorMap instead groups near-by sensors and shows a
per-group aggregate (Section III-B).  We group raw result readings on a
grid of ``cluster_miles`` cells (two sensors in one cell are within
roughly the cluster distance) and pass cached node-level aggregates
through as their own groups anchored at the node's bounding-box center.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.aggregates import AggregateSketch
from repro.core.lookup import QueryAnswer
from repro.geometry import GeoPoint
from repro.geometry.point import miles_to_degrees_lat, miles_to_degrees_lon
from repro.sensors.sensor import Reading

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import COLRTree


@dataclass
class DisplayGroup:
    """One icon-group on the map: a location, the member readings (when
    raw), and the aggregate sketch to render."""

    center: GeoPoint
    sketch: AggregateSketch
    readings: list[Reading] = field(default_factory=list)
    from_cache_node: int | None = None

    @property
    def size(self) -> int:
        return self.sketch.count

    def result(self, function: str) -> float:
        return self.sketch.result(function)


def group_answer(
    answer: QueryAnswer,
    cluster_miles: float | None,
    tree: "COLRTree | None" = None,
    sensor_location=None,
) -> list[DisplayGroup]:
    """Group a query answer for display.

    ``sensor_location`` maps a sensor id to a :class:`GeoPoint`; when
    omitted, ``tree.sensor`` is used.  With ``cluster_miles=None`` every
    reading becomes its own group (full zoom).
    """
    if sensor_location is None:
        if tree is None:
            raise ValueError("need a tree or a sensor_location function")
        sensor_location = lambda sid: tree.sensor(sid).location  # noqa: E731

    groups: list[DisplayGroup] = []
    readings = list(answer.probed_readings) + list(answer.cached_readings)
    if cluster_miles is None:
        for reading in readings:
            sketch = AggregateSketch()
            sketch.add(reading.value, reading.timestamp)
            groups.append(
                DisplayGroup(center=sensor_location(reading.sensor_id), sketch=sketch,
                             readings=[reading])
            )
    else:
        cells: dict[tuple[int, int], DisplayGroup] = {}
        dlat = miles_to_degrees_lat(cluster_miles)
        for reading in readings:
            loc = sensor_location(reading.sensor_id)
            dlon = miles_to_degrees_lon(cluster_miles, at_lat=loc.lat)
            key = (int(loc.x // dlon), int(loc.y // dlat))
            group = cells.get(key)
            if group is None:
                group = DisplayGroup(center=loc, sketch=AggregateSketch())
                cells[key] = group
                groups.append(group)
            group.sketch.add(reading.value, reading.timestamp)
            group.readings.append(reading)
        # Re-center each group on its members.
        for group in groups:
            if group.readings:
                xs = [sensor_location(r.sensor_id).x for r in group.readings]
                ys = [sensor_location(r.sensor_id).y for r in group.readings]
                group.center = GeoPoint(sum(xs) / len(xs), sum(ys) / len(ys))

    # Cached node-level aggregates stay whole: their membership is
    # opaque, so each becomes one group at the node's center.
    for sketch, node_id in zip(answer.cached_sketches, answer.cached_sketch_nodes):
        if tree is not None:
            center = tree.node(node_id).bbox.center
        else:
            center = GeoPoint(0.0, 0.0)
        groups.append(
            DisplayGroup(center=center, sketch=sketch.copy(), from_cache_node=node_id)
        )
    return groups


def group_by_terminal(
    answer: QueryAnswer,
    tree: "COLRTree",
    level: int,
) -> list[DisplayGroup]:
    """Multi-resolution grouping: one group per tree node at ``level``.

    This is the paper's zoom-level presentation — "one sample (or
    aggregate computed over the sample) is returned for each non-leaf
    node at level T".  Each raw reading is assigned to its level-
    ``level`` ancestor (or its leaf, for shallow subtrees); cached
    aggregates are assigned to their source node's ancestor the same
    way.
    """
    if level < 0:
        raise ValueError("level must be non-negative")
    groups: dict[int, DisplayGroup] = {}

    def group_for(node_id: int) -> DisplayGroup:
        anchor = _ancestor_at_level(tree, node_id, level)
        group = groups.get(anchor.node_id)
        if group is None:
            group = DisplayGroup(center=anchor.bbox.center, sketch=AggregateSketch())
            groups[anchor.node_id] = group
        return group

    for reading in list(answer.probed_readings) + list(answer.cached_readings):
        leaf = tree.leaf_for(reading.sensor_id)
        group = group_for(leaf.node_id)
        group.sketch.add(reading.value, reading.timestamp)
        group.readings.append(reading)
    for sketch, node_id in zip(answer.cached_sketches, answer.cached_sketch_nodes):
        group = group_for(node_id)
        group.sketch.merge(sketch.copy())
        if group.from_cache_node is None:
            group.from_cache_node = node_id
    return list(groups.values())


def _ancestor_at_level(tree: "COLRTree", node_id: int, level: int):
    node = tree.node(node_id)
    anchor = node
    for candidate in node.path_to_root():
        anchor = candidate
        if candidate.level <= level:
            break
    return anchor
