"""The SensorMap portal layer (Section III).

The portal is the application COLR-Tree was built for: publishers
register live sensors, users pan/zoom a map and issue spatio-temporal
queries with a ``CLUSTER`` distance (viewport grouping) and a
``SAMPLESIZE`` bound (probe budget).  This package provides:

``SensorQuery`` / ``parse_query``
    The query model and a parser for the paper's SQL-ish dialect
    (``SELECT count(*) FROM sensor S WHERE S.location WITHIN
    Polygon(...) AND S.time BETWEEN now()-10 AND now() mins CLUSTER 10
    miles SAMPLESIZE 30``).
``group_answer``
    Viewport grouping: near-by result sensors merged into groups with
    per-group aggregates, cached aggregates placed at their node's
    center.
``SensorMapPortal``
    The end-to-end facade: registration, index (re)builds, query
    execution with latency accounting.
``execute_batch`` (``SensorMapPortal.execute_batch``)
    One tick's in-flight queries as a batch: shared traversals,
    coalesced sensor probes, grouped cache ingestion.
"""

from repro.portal.query import SensorQuery
from repro.portal.parser import QueryParseError, parse_query
from repro.portal.grouping import DisplayGroup, group_answer, group_by_terminal
from repro.portal.portal import PortalResult, SensorMapPortal
from repro.portal.batch import BatchResult, BatchStats
from repro.portal.continuous import (
    ContinuousQueryManager,
    ResultDelta,
    Subscription,
)

__all__ = [
    "BatchResult",
    "BatchStats",
    "ContinuousQueryManager",
    "DisplayGroup",
    "PortalResult",
    "QueryParseError",
    "ResultDelta",
    "SensorMapPortal",
    "SensorQuery",
    "Subscription",
    "group_answer",
    "group_by_terminal",
    "parse_query",
]
