"""The portal's query model.

A ``SensorQuery`` is the parsed form of the SQL-ish queries SensorMap
issues to the back-end database (Section III-B): a spatial region, a
freshness window, an aggregate to compute, and the two COLR-Tree
extensions — ``CLUSTER`` (viewport grouping distance in miles) and
``SAMPLESIZE`` (the probe budget R).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Polygon, Rect

_AGGREGATES = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class SensorQuery:
    """One spatio-temporal portal query.

    Parameters
    ----------
    region:
        The polygonal or rectangular region of interest.
    staleness_seconds:
        The maximum data staleness the user accepts (the ``S.time
        BETWEEN now()-w AND now()`` window).
    aggregate:
        Aggregate function over the result (``count`` by default).
    cluster_miles:
        Group sensors within this distance for display; ``None``
        disables grouping.
    sample_size:
        Probe budget ``R``; ``None`` means exact (probe everything
        relevant).
    sensor_type:
        Restrict to one registered sensor type, or ``None`` for all.
    zoom_level:
        Map zoom expressed as a tree level: sampling terminates below
        this level and results are grouped per node at it (one
        aggregate icon per node).  ``None`` uses the index defaults and
        grid-based ``CLUSTER`` grouping.
    """

    region: Rect | Polygon
    staleness_seconds: float
    aggregate: str = "count"
    cluster_miles: float | None = None
    sample_size: int | None = None
    sensor_type: str | None = None
    zoom_level: int | None = None

    def __post_init__(self) -> None:
        if self.staleness_seconds < 0:
            raise ValueError("staleness_seconds must be non-negative")
        if self.aggregate not in _AGGREGATES:
            raise ValueError(
                f"unsupported aggregate {self.aggregate!r}; use one of {_AGGREGATES}"
            )
        if self.cluster_miles is not None and self.cluster_miles <= 0:
            raise ValueError("cluster_miles must be positive when given")
        if self.sample_size is not None and self.sample_size < 0:
            raise ValueError("sample_size must be non-negative when given")
        if self.zoom_level is not None and self.zoom_level < 0:
            raise ValueError("zoom_level must be non-negative when given")
