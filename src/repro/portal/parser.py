"""Parser for the paper's SQL-ish query dialect.

The grammar covers exactly what Section III-B's example exercises, plus
a rectangle shorthand and a type filter::

    SELECT <agg>(*|value)
    FROM sensor S
    WHERE S.location WITHIN Polygon((lat, lon), (lat, lon), ...)
      [AND S.type = '<type>']
      AND S.time BETWEEN now()-<n> AND now() [mins|secs|hours]
    [CLUSTER <d> miles]
    [SAMPLESIZE <r>]
    [ZOOM <level>]

``Rect(min_lat, min_lon, max_lat, max_lon)`` may be used in place of
``Polygon``.  Keywords are case-insensitive; whitespace is free-form.
"""

from __future__ import annotations

import re

from repro.geometry import Polygon, Rect
from repro.portal.query import SensorQuery


class QueryParseError(ValueError):
    """Raised with a human-readable message when a query is malformed."""


_SELECT_RE = re.compile(
    r"^\s*select\s+(count|sum|avg|min|max)\s*\(\s*(?:\*|value|s\.value)\s*\)\s+"
    r"from\s+sensor(?:\s+s)?\s+where\s+",
    re.IGNORECASE,
)
_POLYGON_RE = re.compile(
    r"s\.location\s+within\s+polygon\s*\(\s*(.*?)\s*\)\s*(?=and|cluster|samplesize|$)",
    re.IGNORECASE | re.DOTALL,
)
_RECT_RE = re.compile(
    r"s\.location\s+within\s+rect\s*\(\s*([^)]*?)\s*\)",
    re.IGNORECASE,
)
_TIME_RE = re.compile(
    r"s\.time\s+between\s+now\s*\(\s*\)\s*-\s*(\d+(?:\.\d+)?)\s+and\s+now\s*\(\s*\)"
    r"\s*(mins?|minutes?|secs?|seconds?|hours?)?",
    re.IGNORECASE,
)
_TYPE_RE = re.compile(r"s\.type\s*=\s*'([^']*)'", re.IGNORECASE)
_CLUSTER_RE = re.compile(r"cluster\s+(\d+(?:\.\d+)?)\s*miles?", re.IGNORECASE)
_SAMPLE_RE = re.compile(r"samplesize\s+(\d+)", re.IGNORECASE)
_ZOOM_RE = re.compile(r"zoom\s+(\d+)", re.IGNORECASE)
_PAIR_RE = re.compile(r"\(?\s*(-?\d+(?:\.\d+)?)\s*,\s*(-?\d+(?:\.\d+)?)\s*\)?")

_UNIT_SECONDS = {
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "hour": 3600.0,
    "hours": 3600.0,
}


def parse_query(sql: str) -> SensorQuery:
    """Parse one query; raises :class:`QueryParseError` on any problem."""
    head = _SELECT_RE.match(sql)
    if head is None:
        raise QueryParseError(
            "query must start with SELECT <agg>(*) FROM sensor S WHERE ..."
        )
    aggregate = head.group(1).lower()
    region = _parse_region(sql)
    staleness = _parse_time_window(sql)

    type_match = _TYPE_RE.search(sql)
    cluster_match = _CLUSTER_RE.search(sql)
    sample_match = _SAMPLE_RE.search(sql)
    zoom_match = _ZOOM_RE.search(sql)
    return SensorQuery(
        region=region,
        staleness_seconds=staleness,
        aggregate=aggregate,
        cluster_miles=float(cluster_match.group(1)) if cluster_match else None,
        sample_size=int(sample_match.group(1)) if sample_match else None,
        sensor_type=type_match.group(1) if type_match else None,
        zoom_level=int(zoom_match.group(1)) if zoom_match else None,
    )


def _parse_region(sql: str) -> Rect | Polygon:
    rect_match = _RECT_RE.search(sql)
    if rect_match is not None:
        parts = [p.strip() for p in rect_match.group(1).split(",")]
        if len(parts) != 4:
            raise QueryParseError("Rect(...) needs min_lat, min_lon, max_lat, max_lon")
        try:
            min_lat, min_lon, max_lat, max_lon = (float(p) for p in parts)
        except ValueError as exc:
            raise QueryParseError(f"bad Rect coordinates: {exc}") from None
        if min_lat > max_lat or min_lon > max_lon:
            raise QueryParseError("Rect bounds are inverted")
        return Rect(min_lon, min_lat, max_lon, max_lat)
    poly_match = _POLYGON_RE.search(sql)
    if poly_match is None:
        raise QueryParseError(
            "query needs S.location WITHIN Polygon(...) or Rect(...)"
        )
    pairs = [(float(a), float(b)) for a, b in _PAIR_RE.findall(poly_match.group(1))]
    if len(pairs) < 3:
        raise QueryParseError("Polygon(...) needs at least 3 (lat, lon) vertices")
    try:
        return Polygon.from_latlon_pairs(pairs)
    except ValueError as exc:
        raise QueryParseError(f"bad polygon: {exc}") from None


def _parse_time_window(sql: str) -> float:
    time_match = _TIME_RE.search(sql)
    if time_match is None:
        raise QueryParseError(
            "query needs S.time BETWEEN now()-<n> AND now() [mins]"
        )
    amount = float(time_match.group(1))
    unit = (time_match.group(2) or "mins").lower()
    if unit not in _UNIT_SECONDS:
        raise QueryParseError(f"unknown time unit {unit!r}")
    return amount * _UNIT_SECONDS[unit]
