"""The batch query executor: one tick's queries as one unit of work.

``execute_batch`` gives a set of in-flight queries the amortization the
paper's portal workload demands (Section II: many users, overlapping
viewports, the same live sensors).  Per sensor-type tree it

1. runs every exact scan through
   :func:`repro.core.shared_scan.shared_range_scan`, classifying each
   distinct region once per batch;
2. coalesces the probe lists — each sensor is contacted **at most once
   per batch tick**, in one network batch per tree, and its reading is
   fanned out to every requesting query; and
3. ingests the probed readings through
   :meth:`repro.core.tree.COLRTree.insert_readings_batch`, so ancestor
   aggregates receive one merged delta per slot instead of one walk per
   reading.

Probe work is attributed to each sensor's *owner* (the first requesting
query); later requesters record ``probes_coalesced``.  Sampled queries
cannot share traversals (layered sampling probes mid-descent through
the tree RNG), so they execute sequentially after the exact phase.

A singleton batch is bit-identical to ``SensorMapPortal.execute``: same
plan-cache interaction, same probe order (hence the same network RNG
draws), same ingestion, same stats.  The property tests in
``tests/property/test_batch_parity.py`` enforce this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.shared_scan import ScanRequest, coalesce_probes, shared_range_scan
from repro.portal.grouping import DisplayGroup, group_answer, group_by_terminal
from repro.portal.portal import PortalResult
from repro.portal.query import SensorQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.lookup import QueryAnswer
    from repro.core.tree import COLRTree
    from repro.portal.portal import SensorMapPortal
    from repro.sensors.sensor import Reading

__all__ = ["BatchResult", "BatchStats", "execute_batch"]


@dataclass
class BatchStats:
    """What one batch tick cost — and what coalescing saved.

    ``probes_requested`` counts probe requests across all queries (what
    sequential execution would have issued from the same cache state);
    ``probes_issued`` is what actually went over the network after
    coalescing; the difference is ``probes_coalesced``.

    With the transport dispatcher attached, ``probes_contacted`` is what
    actually hit the wire after the dispatcher's dedup/cooldown tables
    (≤ ``probes_issued``), the transport counters break the difference
    down, ``maintenance_ops`` carries the streamed-ingestion trigger
    work (not attributed to individual queries), and
    ``collection_seconds`` becomes the tick's *makespan* (rounds
    overlap) instead of a sequential per-tree sum.

    ``collection_seconds`` is *modeled* (simulated-clock) time;
    ``wall_seconds`` is the real time this process spent executing the
    batch.  Wall time is measurement noise, not an answer property, so
    it is excluded from equality — parity tests compare everything
    else bit-for-bit across executors and federation backends.
    """

    queries: int = 0
    probes_requested: int = 0
    probes_issued: int = 0
    probes_contacted: int = 0
    probes_coalesced: int = 0
    probes_deduped: int = 0
    probes_cooldown_skipped: int = 0
    probes_retried: int = 0
    probes_timed_out: int = 0
    batch_shared_plans: int = 0
    maintenance_ops: int = 0
    collection_seconds: float = 0.0
    wall_seconds: float = field(default=0.0, compare=False)


@dataclass
class BatchResult:
    """Per-query results (aligned with the submitted queries) plus the
    batch-level accounting."""

    results: list[PortalResult] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)


def execute_batch(
    portal: "SensorMapPortal", queries: Sequence[SensorQuery]
) -> BatchResult:
    """Execute a set of queries as one batch tick.

    Implementation of :meth:`SensorMapPortal.execute_batch`; see the
    module docstring for the phase structure.
    """
    wall_start = time.perf_counter()
    stats = BatchStats(queries=len(queries))
    if not queries:
        return BatchResult(stats=stats)
    portal._ensure_index()
    now = portal.clock.now()

    # Resolve each query's trees and effective sample size exactly as
    # execute() would, surfacing unknown-type errors before any work.
    per_query_trees: list[list["COLRTree"]] = []
    per_query_sample: list[int] = []
    for query in queries:
        if query.sensor_type is not None:
            if query.sensor_type not in portal._trees:
                raise KeyError(f"no sensors of type {query.sensor_type!r} registered")
            trees = [portal._trees[query.sensor_type]]
        else:
            trees = list(portal._trees.values())
        per_query_trees.append(trees)
        per_query_sample.append(
            portal._effective_sample_size(query.sample_size, len(trees))
        )

    # Partition (query, tree) pairs: exact scans batch per tree; sampled
    # ones run alone (their probes happen mid-traversal, RNG-driven).
    sampling_on = portal.config.sampling_enabled
    exact_by_tree: dict[int, tuple["COLRTree", list[int]]] = {}
    sampled_pairs: list[tuple[int, "COLRTree"]] = []
    for qi, trees in enumerate(per_query_trees):
        sampled = sampling_on and per_query_sample[qi] > 0
        for tree in trees:
            if sampled:
                sampled_pairs.append((qi, tree))
            else:
                exact_by_tree.setdefault(id(tree), (tree, []))[1].append(qi)

    # Answers keyed by (query index, tree identity) so assembly below
    # can emit them in each query's own tree order.
    answers: list[dict[int, "QueryAnswer"]] = [{} for _ in queries]

    # Pass 1 — per tree: prune, classify (shared scans), coalesce, and
    # *issue* the probe round.  Without a dispatcher the synchronous
    # network.probe runs inline, exactly where it always did (same
    # network-RNG order); with one, the round is submitted and all trees'
    # rounds are drained together below, which is what lets them overlap
    # in simulated wall time.
    dispatcher = portal.dispatcher
    tree_work: list[tuple] = []
    for tree, query_indices in exact_by_tree.values():
        tree._prune_expired(now)
        scans = shared_range_scan(
            tree,
            [
                ScanRequest(queries[qi].region, queries[qi].staleness_seconds)
                for qi in query_indices
            ],
            now,
        )
        union, owner = coalesce_probes([to_probe for _, to_probe in scans])
        stats.probes_issued += len(union)
        rnd = None
        probe_result = None
        if union:
            if tree.network is None:
                raise RuntimeError("this tree has no sensor network attached")
            if dispatcher is not None:
                staleness = min(
                    queries[qi].staleness_seconds for qi in query_indices
                )
                rnd = dispatcher.submit(
                    union, now, tree=tree, max_staleness=staleness
                )
            else:
                probe_result = tree.network.probe(union, now)
        tree_work.append((tree, query_indices, scans, union, owner, rnd, probe_result))

    # Pass 2 — drain every submitted round to resolution (in overlap
    # mode the rounds share the connection pool and event queue; in
    # parity mode they resolve one at a time in submission order, which
    # is bit-identical to the inline probes above).
    if dispatcher is not None:
        dispatcher.drain([w[5] for w in tree_work if w[5] is not None])

    # Pass 3 — per-query attribution, identical to the sequential
    # executor's accounting.
    streaming = dispatcher is not None and dispatcher.streams_ingestion
    round_latencies: list[float] = []
    for tree, query_indices, scans, union, owner, rnd, probe_result in tree_work:
        readings: Mapping[int, "Reading"] = {}
        latency = 0.0
        deduped_set: frozenset[int] = frozenset()
        cooldown_set: frozenset[int] = frozenset()
        timed_set: frozenset[int] = frozenset()
        retries_by_sensor: dict[int, int] = {}
        if rnd is not None:
            readings = rnd.readings
            latency = rnd.latency_seconds
            deduped_set = rnd.deduped_set
            cooldown_set = rnd.cooldown_set
            timed_set = frozenset(rnd.timed_out)
            retries_by_sensor = rnd.retries_by_sensor
            stats.probes_contacted += len(rnd.contacted)
            stats.probes_deduped += len(rnd.deduped)
            stats.probes_cooldown_skipped += len(rnd.cooldown_skipped)
            stats.probes_retried += rnd.retries
            stats.probes_timed_out += len(rnd.timed_out)
            stats.maintenance_ops += rnd.maintenance_ops
            round_latencies.append(latency)
        elif probe_result is not None:
            readings = probe_result.readings
            latency = probe_result.latency_seconds
            stats.probes_contacted += len(union)
            round_latencies.append(latency)
        for local, (qi, (answer, to_probe)) in enumerate(zip(query_indices, scans)):
            qstats = answer.stats
            if qstats.batch_shared_nodes:
                stats.batch_shared_plans += 1
            stats.probes_requested += len(to_probe)
            owned = [sid for sid in to_probe if owner[sid] == local]
            coalesced = len(to_probe) - len(owned)
            qstats.sensors_probed += len(owned)
            qstats.probe_successes += sum(1 for sid in owned if sid in readings)
            qstats.probes_coalesced += coalesced
            stats.probes_coalesced += coalesced
            if rnd is not None and owned:
                qstats.probes_deduped += sum(1 for sid in owned if sid in deduped_set)
                qstats.probes_cooldown_skipped += sum(
                    1 for sid in owned if sid in cooldown_set
                )
                qstats.probes_timed_out += sum(1 for sid in owned if sid in timed_set)
                qstats.probes_retried += sum(
                    retries_by_sensor.get(sid, 0) for sid in owned
                )
            if to_probe:
                # The per-query view of the shared network batch: each
                # participant waited out the one collection round.
                qstats.probe_batches += 1
                qstats.collection_latency_seconds += latency
            answer.probed_readings.extend(
                readings[sid] for sid in to_probe if sid in readings
            )
            if not streaming:
                owned_readings = [
                    readings[sid]
                    for sid in owned
                    if sid in readings and sid not in deduped_set
                ]
                if owned_readings:
                    qstats.maintenance_ops += tree.insert_readings_batch(
                        owned_readings, fetched_at=now
                    )
            tree.stats.record(qstats)
            answers[qi][id(tree)] = answer
        if coalesced_total := sum(
            len(to_probe) for _, to_probe in scans
        ) - len(union):
            tree.network.record_coalesced(coalesced_total)

    # Collection accounting: sequential rounds sum; overlapping rounds
    # cost the tick their makespan.
    if dispatcher is not None and dispatcher.config.overlap_enabled:
        stats.collection_seconds += max(round_latencies, default=0.0)
    else:
        stats.collection_seconds += sum(round_latencies)

    for qi, tree in sampled_pairs:
        query = queries[qi]
        answers[qi][id(tree)] = tree.query(
            query.region,
            now=now,
            max_staleness=query.staleness_seconds,
            sample_size=per_query_sample[qi],
            terminal_level=query.zoom_level,
        )

    results: list[PortalResult] = []
    for qi, query in enumerate(queries):
        query_answers: list["QueryAnswer"] = []
        groups: list[DisplayGroup] = []
        processing = 0.0
        collection = 0.0
        for tree in per_query_trees[qi]:
            answer = answers[qi][id(tree)]
            query_answers.append(answer)
            processing += portal.cost_model.processing_seconds(answer.stats)
            collection += answer.stats.collection_latency_seconds
            if query.zoom_level is not None:
                groups.extend(group_by_terminal(answer, tree, query.zoom_level))
            else:
                groups.extend(group_answer(answer, query.cluster_miles, tree=tree))
        results.append(
            PortalResult(
                query=query,
                groups=groups,
                answers=query_answers,
                processing_seconds=processing,
                collection_seconds=collection,
                sample_requested=(
                    per_query_sample[qi] * len(per_query_trees[qi])
                    if per_query_sample[qi] and sampling_on
                    else None
                ),
            )
        )
    stats.wall_seconds = time.perf_counter() - wall_start
    return BatchResult(results=results, stats=stats)
