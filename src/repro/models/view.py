"""Model views over a COLR-Tree's cache.

A :class:`ModelView` gathers the fresh cached readings around a query
location (an expanding-radius search over the tree's leaf caches) and
fits a spatial model to them, answering point and region estimates with
**zero sensor probes**.  When the cache cannot support an estimate the
view either raises :class:`InsufficientSupport` or, in
``fallback="probe"`` mode, issues a bounded sampled query through the
tree to refill the cache and retries.
"""

from __future__ import annotations

from repro.core.tree import COLRTree
from repro.geometry import GeoPoint, Rect
from repro.models.interpolation import IDWModel, SpatialModel
from repro.sensors.sensor import Reading


class InsufficientSupport(RuntimeError):
    """Raised when too few fresh cached readings surround the query."""


class ModelView:
    """A read-only model-based view over one tree's cached data.

    Parameters
    ----------
    tree:
        The backing index (with caching enabled).
    model:
        A :class:`~repro.models.interpolation.SpatialModel`; a fresh
        instance is fitted per estimate.  Defaults to IDW.
    min_support:
        Minimum fresh cached readings required to answer.
    fallback:
        ``"raise"`` (default) or ``"probe"`` — on insufficient support,
        probe up to ``fallback_sample_size`` sensors through the tree
        (populating the cache) and retry once.
    """

    def __init__(
        self,
        tree: COLRTree,
        model: SpatialModel | None = None,
        min_support: int = 4,
        fallback: str = "raise",
        fallback_sample_size: int = 20,
    ) -> None:
        if not tree.config.caching_enabled:
            raise ValueError("model views need a caching-enabled tree")
        if fallback not in ("raise", "probe"):
            raise ValueError("fallback must be 'raise' or 'probe'")
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        self.tree = tree
        self._model = model if model is not None else IDWModel()
        self.min_support = int(min_support)
        self.fallback = fallback
        self.fallback_sample_size = int(fallback_sample_size)

    # ------------------------------------------------------------------
    # Cache harvesting
    # ------------------------------------------------------------------
    def cached_readings_near(
        self,
        p: GeoPoint,
        now: float,
        max_staleness: float,
        want: int,
    ) -> list[Reading]:
        """Fresh cached readings around ``p``, found by doubling a
        search rectangle until ``want`` readings (or the whole domain)
        are covered."""
        domain = self.tree.root.bbox
        radius = max(domain.width, domain.height) / 64.0 or 1.0
        seen: list[Reading] = []
        while True:
            probe_rect = Rect.from_center(p, radius, radius)
            seen = self._harvest(probe_rect, now, max_staleness)
            if len(seen) >= want or probe_rect.contains_rect(domain):
                return seen
            radius *= 2.0

    def _harvest(self, rect: Rect, now: float, max_staleness: float) -> list[Reading]:
        out: list[Reading] = []
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if not rect.intersects(node.bbox):
                continue
            if node.is_leaf:
                if node.leaf_cache is None:
                    continue
                for reading in node.leaf_cache.fresh_readings(now, max_staleness):
                    if rect.contains_point(self.tree.sensor(reading.sensor_id).location):
                        out.append(reading)
            else:
                stack.extend(node.children)
        return out

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_at(self, p: GeoPoint, now: float, max_staleness: float) -> float:
        """Estimate the sensed value at an arbitrary location."""
        readings = self.cached_readings_near(
            p, now, max_staleness, want=max(self.min_support, 8)
        )
        if len(readings) < self.min_support:
            readings = self._fallback_probe(p, now, max_staleness, readings)
        locations = [self.tree.sensor(r.sensor_id).location for r in readings]
        self._model.fit(locations, [r.value for r in readings])
        return self._model.predict(p)

    def estimate_region_mean(
        self,
        region: Rect,
        now: float,
        max_staleness: float,
        grid: int = 5,
    ) -> float:
        """Mean of the modelled surface over a region, evaluated on a
        ``grid x grid`` lattice of points."""
        if grid < 1:
            raise ValueError("grid must be at least 1")
        readings = self._harvest(region.expanded(max(region.width, region.height) / 2), now, max_staleness)
        if len(readings) < self.min_support:
            readings = self._fallback_probe(region.center, now, max_staleness, readings)
        locations = [self.tree.sensor(r.sensor_id).location for r in readings]
        self._model.fit(locations, [r.value for r in readings])
        total = 0.0
        for i in range(grid):
            for j in range(grid):
                x = region.min_x + (i + 0.5) * region.width / grid
                y = region.min_y + (j + 0.5) * region.height / grid
                total += self._model.predict(GeoPoint(x, y))
        return total / (grid * grid)

    def _fallback_probe(
        self,
        p: GeoPoint,
        now: float,
        max_staleness: float,
        readings: list[Reading],
    ) -> list[Reading]:
        if self.fallback != "probe":
            raise InsufficientSupport(
                f"only {len(readings)} fresh cached readings near "
                f"({p.x:.3f}, {p.y:.3f}); need {self.min_support}"
            )
        # One bounded sampled query through the index refills the cache.
        self.tree.query(
            self.tree.root.bbox,
            now=now,
            max_staleness=max_staleness,
            sample_size=self.fallback_sample_size,
        )
        refreshed = self.cached_readings_near(
            p, now, max_staleness, want=max(self.min_support, 8)
        )
        if len(refreshed) < self.min_support:
            raise InsufficientSupport(
                f"cache still too thin after probing "
                f"({len(refreshed)} < {self.min_support})"
            )
        return refreshed
