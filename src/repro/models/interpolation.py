"""Spatial interpolation models.

Both models predict a value at an unobserved location from nearby
observed samples; they differ in how distance discounts influence.
They are deliberately simple — the point of the model-view layer is the
*composition* with COLR-Tree's cache, not model sophistication — but
the protocol accommodates richer models.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.geometry import GeoPoint


@runtime_checkable
class SpatialModel(Protocol):
    """The model protocol the view layer consumes."""

    def fit(self, locations: Sequence[GeoPoint], values: Sequence[float]) -> None:
        """Absorb observed samples."""
        ...

    def predict(self, p: GeoPoint) -> float:
        """Estimate the value at an arbitrary location."""
        ...

    @property
    def support(self) -> int:
        """Number of samples the model was fitted on."""
        ...


class _FittedBase:
    """Shared storage/fitting for the sample-based models."""

    def __init__(self) -> None:
        self._xs = np.empty(0)
        self._ys = np.empty(0)
        self._values = np.empty(0)

    def fit(self, locations: Sequence[GeoPoint], values: Sequence[float]) -> None:
        if len(locations) != len(values):
            raise ValueError("locations and values must align")
        self._xs = np.array([p.x for p in locations], dtype=np.float64)
        self._ys = np.array([p.y for p in locations], dtype=np.float64)
        self._values = np.asarray(values, dtype=np.float64)

    @property
    def support(self) -> int:
        return int(self._values.size)

    def _require_fit(self) -> None:
        if self._values.size == 0:
            raise ValueError("model has no samples; call fit() first")

    def _distances(self, p: GeoPoint) -> np.ndarray:
        return np.hypot(self._xs - p.x, self._ys - p.y)


class IDWModel(_FittedBase):
    """Inverse-distance weighting: ``sum(w_i v_i) / sum(w_i)`` with
    ``w_i = 1 / d_i^power``.  A sample within ``snap_epsilon`` of the
    query point answers exactly."""

    def __init__(self, power: float = 2.0, snap_epsilon: float = 1e-9) -> None:
        super().__init__()
        if power <= 0:
            raise ValueError("power must be positive")
        self.power = float(power)
        self.snap_epsilon = float(snap_epsilon)

    def predict(self, p: GeoPoint) -> float:
        self._require_fit()
        d = self._distances(p)
        nearest = int(d.argmin())
        if d[nearest] <= self.snap_epsilon:
            return float(self._values[nearest])
        w = d ** (-self.power)
        return float((w * self._values).sum() / w.sum())


class KNNModel(_FittedBase):
    """Mean of the k nearest samples (uniform weights)."""

    def __init__(self, k: int = 5) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)

    def predict(self, p: GeoPoint) -> float:
        self._require_fit()
        d = self._distances(p)
        k = min(self.k, d.size)
        idx = np.argpartition(d, k - 1)[:k]
        return float(self._values[idx].mean())
