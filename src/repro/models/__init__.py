"""Model-based views over cached sensor data.

Section II notes that MauveDB-style model-based views are orthogonal to
COLR-Tree and that "COLR-Tree can maintain a model from its cached
data".  This package implements that composition: a
:class:`ModelView` answers *point* and *region* estimates from a model
fitted on the fly to the fresh readings already sitting in the tree's
leaf caches — zero sensor probes, graceful degradation to probing when
the cache cannot support an estimate.

Models implement a tiny protocol (fit to ``(location, value)`` samples,
predict at a point); inverse-distance weighting and k-nearest-neighbour
averaging are provided.
"""

from repro.models.interpolation import IDWModel, KNNModel, SpatialModel
from repro.models.view import InsufficientSupport, ModelView

__all__ = [
    "IDWModel",
    "KNNModel",
    "SpatialModel",
    "ModelView",
    "InsufficientSupport",
]
