"""Snapshot and restore: sensors, configuration and cache contents.

The deployed portal periodically reconstructs its index (Section
III-C); restarts must not begin with a cold cache, or the first minutes
of queries would re-probe the world.  A snapshot captures everything
needed to resume: the registered sensor metadata, the index
configuration, and the cached readings with their fetch times.  The
tree *structure* is not stored — the bulk build is deterministic given
the sensors and the config seed, so it is rebuilt on load and the
cached readings are re-inserted (re-running the aggregate maintenance,
which also re-validates them against the restored clock).

Two on-disk formats exist.  Version 2 (current) is the storage
engine's checkpoint container — a CRC-checksummed page file (see
``repro.storage.checkpoint``) holding the snapshot meta, the sensors
and the cached readings; it shares the exact codecs crash recovery
uses.  Version 1 is the original JSON document; it still loads (with a
``DeprecationWarning``) and can still be written explicitly via
``save_tree(..., format_version=1)``.  ``load_tree`` sniffs the file
magic, so both formats load through the same call.  Networks and
availability histories are runtime objects the caller re-wires.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any

from repro.core.config import COLRTreeConfig
from repro.core.tree import COLRTree
from repro.geometry import GeoPoint
from repro.sensors.availability import AvailabilityModel
from repro.sensors.network import SensorNetwork
from repro.sensors.sensor import Reading, Sensor

FORMAT_VERSION = 2
V1_FORMAT_VERSION = 1


class SnapshotError(ValueError):
    """Raised for malformed or incompatible snapshot files."""


def snapshot_tree(tree: COLRTree, now: float) -> dict[str, Any]:
    """Capture a tree as a JSON-serializable dict."""
    sensors = [
        {
            "sensor_id": s.sensor_id,
            "x": s.location.x,
            "y": s.location.y,
            "expiry_seconds": s.expiry_seconds,
            "sensor_type": s.sensor_type,
            "availability": s.availability,
            "metadata": list(map(list, s.metadata)),
        }
        for s in (tree.sensor(sid) for sid in sorted(tree._sensors))
    ]
    readings = []
    for leaf in tree.root.iter_leaves():
        if leaf.leaf_cache is None:
            continue
        for sensor_id in sorted(
            r.sensor_id for r in leaf.leaf_cache.all_readings()
        ):
            cached = leaf.leaf_cache.get(sensor_id)
            assert cached is not None
            readings.append(
                {
                    "sensor_id": cached.reading.sensor_id,
                    "value": cached.reading.value,
                    "timestamp": cached.reading.timestamp,
                    "expires_at": cached.reading.expires_at,
                    "fetched_at": cached.fetched_at,
                }
            )
    config = {f: getattr(tree.config, f) for f in tree.config.__dataclass_fields__}
    return {
        "format_version": V1_FORMAT_VERSION,
        "saved_at": now,
        "config": config,
        "sensors": sensors,
        "cached_readings": readings,
    }


def save_tree(
    tree: COLRTree,
    path: str | Path,
    now: float,
    *,
    format_version: int = FORMAT_VERSION,
) -> None:
    """Write a snapshot file (version 2 checkpoint container by
    default; ``format_version=1`` writes the legacy JSON document)."""
    if format_version == V1_FORMAT_VERSION:
        Path(path).write_text(json.dumps(snapshot_tree(tree, now)))
        return
    if format_version != FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {format_version!r}")
    from repro.storage.checkpoint import write_checkpoint

    sensors = [tree.sensor(sid) for sid in sorted(tree._sensors)]
    cached: list[tuple[Reading, float]] = []
    for leaf in tree.root.iter_leaves():
        if leaf.leaf_cache is None:
            continue
        for entry in leaf.leaf_cache.entries():
            cached.append((entry.reading, entry.fetched_at))
    config = {f: getattr(tree.config, f) for f in tree.config.__dataclass_fields__}
    write_checkpoint(
        Path(path),
        meta={
            "format_version": FORMAT_VERSION,
            "saved_at": float(now),
            "config": config,
        },
        sensors=sensors,
        cached=cached,
    )


def restore_tree(
    data: dict[str, Any],
    network: SensorNetwork | None = None,
    availability_model: AvailabilityModel | None = None,
    build_network: bool = True,
    network_seed: int = 0,
) -> COLRTree:
    """Rebuild a tree (structure + caches) from a snapshot dict.

    ``network=None`` with ``build_network=True`` constructs a fresh
    simulated network over the restored sensors; pass an explicit
    network to re-wire a live one.
    """
    version = data.get("format_version")
    if version != V1_FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {version!r}")
    try:
        config = COLRTreeConfig(**data["config"])
        sensors = [
            Sensor(
                sensor_id=int(s["sensor_id"]),
                location=GeoPoint(float(s["x"]), float(s["y"])),
                expiry_seconds=float(s["expiry_seconds"]),
                sensor_type=str(s["sensor_type"]),
                availability=float(s["availability"]),
                metadata=tuple((str(k), str(v)) for k, v in s.get("metadata", [])),
            )
            for s in data["sensors"]
        ]
    except (KeyError, TypeError) as exc:
        raise SnapshotError(f"malformed snapshot: {exc}") from exc
    if not sensors:
        raise SnapshotError("snapshot holds no sensors")
    if network is None and build_network:
        network = SensorNetwork(
            sensors, availability_model=availability_model, seed=network_seed
        )
    tree = COLRTree(
        sensors, config, network=network, availability_model=availability_model
    )
    saved_at = float(data.get("saved_at", 0.0))
    for entry in data.get("cached_readings", []):
        reading = Reading(
            sensor_id=int(entry["sensor_id"]),
            value=float(entry["value"]),
            timestamp=float(entry["timestamp"]),
            expires_at=float(entry["expires_at"]),
        )
        if not reading.is_valid_at(saved_at):
            continue  # expired while on disk
        tree.insert_reading(reading, fetched_at=float(entry["fetched_at"]))
    tree._enforce_capacity()
    return tree


def load_tree(
    path: str | Path,
    network: SensorNetwork | None = None,
    availability_model: AvailabilityModel | None = None,
    network_seed: int = 0,
) -> COLRTree:
    """Read a snapshot file (either format) and rebuild the tree."""
    from repro.storage.checkpoint import is_checkpoint_file

    path = Path(path)
    if is_checkpoint_file(path):
        return _load_tree_v2(
            path,
            network=network,
            availability_model=availability_model,
            network_seed=network_seed,
        )
    warnings.warn(
        "version-1 JSON snapshots are deprecated; re-save with "
        "save_tree() to migrate to the checkpoint container",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"snapshot is not valid JSON: {exc}") from exc
    return restore_tree(
        data,
        network=network,
        availability_model=availability_model,
        network_seed=network_seed,
    )


def _load_tree_v2(
    path: Path,
    network: SensorNetwork | None = None,
    availability_model: AvailabilityModel | None = None,
    network_seed: int = 0,
) -> COLRTree:
    """Rebuild a tree from a version-2 checkpoint container."""
    from repro.storage.checkpoint import read_checkpoint
    from repro.storage.pager import PageCorruptionError

    try:
        meta, sensors, cached = read_checkpoint(path)
    except PageCorruptionError as exc:
        raise SnapshotError(f"corrupt snapshot: {exc}") from exc
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {version!r}")
    if not sensors:
        raise SnapshotError("snapshot holds no sensors")
    try:
        config = COLRTreeConfig(**meta["config"])
    except (KeyError, TypeError) as exc:
        raise SnapshotError(f"malformed snapshot: {exc}") from exc
    if network is None:
        network = SensorNetwork(
            sensors, availability_model=availability_model, seed=network_seed
        )
    tree = COLRTree(
        sensors, config, network=network, availability_model=availability_model
    )
    saved_at = float(meta.get("saved_at", 0.0))
    for reading, fetched_at in cached:
        if not reading.is_valid_at(saved_at):
            continue  # expired while on disk
        tree.insert_reading(reading, fetched_at=fetched_at)
    tree._enforce_capacity()
    return tree
