"""Length-prefixed pickle framing over a socket pair.

The coordinator and each worker speak a trivially debuggable wire
format: a 4-byte big-endian payload length followed by a pickle
(highest protocol).  Frames are small by construction — query
descriptors outbound, answers/stats inbound — because the index itself
crosses via shared memory, never the pipe.
"""

from __future__ import annotations

import pickle
import socket
import struct

__all__ = ["recv_frame", "send_frame"]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload.  Answers are O(answer), so 256
#: MiB is generous; the bound turns a corrupted header into a clean
#: error instead of an absurd allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_frame(sock: socket.socket, obj: object) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("peer closed the frame stream")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> object:
    """Read one frame and unpickle it.  Raises ``EOFError`` when the
    peer is gone (worker crash / coordinator shutdown)."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise EOFError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return pickle.loads(_recv_exact(sock, length))
