"""True-parallel shard execution over shared-memory flat kernels.

The in-process federation (:mod:`repro.federation`) models concurrency:
shard collection latencies combine as a makespan on one simulated
clock, but every shard's Python work runs serially in the coordinator.
This package runs each shard's ``SensorMapPortal`` in its own worker
*process* so the per-shard work genuinely overlaps on the wall clock:

- The static half of every shard's :class:`~repro.core.flat.FlatKernel`
  (already contiguous numpy arrays) is published once per rebuild via
  ``multiprocessing.shared_memory`` (:mod:`repro.parallel.shm`) and
  mapped zero-copy by the worker.
- Only query descriptors, probe outcomes and stats cross the worker's
  socket pair, as length-prefixed pickle frames
  (:mod:`repro.parallel.framing`) — per-query communication is
  O(answer), never O(index).
- Inside a worker, the kernel's level-contiguous node range is
  classified in L2-sized tiles (``classify_tile_nodes``, auto-sized
  from ``/sys`` cache info by :func:`repro.core.flat.auto_tile_nodes`)
  so the vectorized pass stays cache-resident on large fleets.

Select the backend with ``FederationConfig(execution="process")`` —
``FederatedPortal(...)`` then builds a
:class:`~repro.parallel.portal.ParallelFederatedPortal` with the same
coordinator semantics and bit-identical answers on the same seed.
"""

from repro.parallel.config import ParallelConfig
from repro.parallel.portal import ParallelFederatedPortal
from repro.parallel.shm import SegmentManifest, SegmentRegistry, leaked_segments

__all__ = [
    "ParallelConfig",
    "ParallelFederatedPortal",
    "SegmentManifest",
    "SegmentRegistry",
    "leaked_segments",
]
