"""Shared-memory publication of flat-kernel arrays.

One :class:`SegmentRegistry` lives in the coordinator.  Per (shard,
sensor-type) kernel it packs all :data:`repro.core.flat.SHARED_ARRAY_FIELDS`
arrays into **one** ``multiprocessing.shared_memory`` segment —
64-byte-aligned offsets, described by a picklable
:class:`SegmentManifest` — and owns the unlink.  Workers
:func:`attach` by manifest and get zero-copy numpy views suitable for
:meth:`repro.core.flat.FlatKernel.adopt_arrays`.

Lifecycle rules (the part that keeps ``/dev/shm`` clean):

- The registry is the **only** creator and the only unlinker.  It is a
  context manager; ``close()`` is idempotent and unlinks everything it
  published.
- Workers attach read-only by *name*.  Because workers are **forked**
  they inherit the coordinator's ``resource_tracker``, so the attach-
  time registration Python < 3.13 performs is a set no-op against the
  coordinator's own entry — nothing to unregister, and no premature
  unlink when a worker exits.  Workers never unlink; their mappings die
  with the process.  (A *spawned* attacher would need the
  ``resource_tracker.unregister`` idiom instead — that is why
  :class:`repro.parallel.config.ParallelConfig` pins ``fork``.)
- :func:`leaked_segments` scans ``/dev/shm`` for the package prefix so
  tests and benches can assert nothing outlived its registry.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.parallel.config import SHM_PREFIX

__all__ = [
    "ArraySpec",
    "SegmentManifest",
    "SegmentRegistry",
    "attach",
    "leaked_segments",
]

#: Offset alignment inside a segment.  64 bytes keeps every array on
#: its own cache line boundary so tiled passes in different workers
#: never false-share a line across two arrays.
ALIGN = 64

_seq = itertools.count()


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one numpy array inside a segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class SegmentManifest:
    """Everything a worker needs to map one published kernel: the
    segment name plus per-array placement.  Plain data — crosses the
    bootstrap pipe by pickle."""

    segment: str
    total_bytes: int
    arrays: tuple[ArraySpec, ...]


def _layout(arrays: Mapping[str, np.ndarray]) -> tuple[list[ArraySpec], int]:
    specs: list[ArraySpec] = []
    offset = 0
    for name in sorted(arrays):
        arr = arrays[name]
        offset = _align(offset)
        specs.append(
            ArraySpec(name=name, dtype=arr.dtype.str, shape=tuple(arr.shape), offset=offset)
        )
        offset += arr.nbytes
    return specs, max(offset, 1)


class SegmentRegistry:
    """Creates, tracks and (exactly once) unlinks shm segments."""

    def __init__(self, prefix: str = SHM_PREFIX) -> None:
        self.prefix = prefix
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False

    def publish(self, arrays: Mapping[str, np.ndarray], tag: str) -> SegmentManifest:
        """Copy ``arrays`` into one fresh segment and return its map.

        ``tag`` distinguishes segments in ``/dev/shm`` listings (e.g.
        ``s3-temperature``); uniqueness comes from the pid + a counter.
        """
        if self._closed:
            raise RuntimeError("registry is closed")
        specs, total = _layout(arrays)
        name = f"{self.prefix}-{os.getpid()}-{next(_seq)}-{tag}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        self._segments.append(shm)
        for spec in specs:
            src = arrays[spec.name]
            dst = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
            )
            dst[...] = src
            del dst  # drop the buffer export so close() can release shm.buf
        return SegmentManifest(segment=name, total_bytes=total, arrays=tuple(specs))

    def segment_names(self) -> list[str]:
        return [s.name for s in self._segments]

    def unpublish(self, manifest: SegmentManifest) -> None:
        """Close and unlink one published segment (rebalance republish).

        Idempotent per segment: a manifest the registry no longer tracks
        is a no-op, so retrying a membership change never double-unlinks."""
        for shm in list(self._segments):
            if shm.name != manifest.segment:
                continue
            self._segments.remove(shm)
            try:
                shm.close()
            finally:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            return

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        self._closed = True
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
            finally:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def reopen(self) -> None:
        """Allow publishing again after a ``close()`` (index rebuild)."""
        self._closed = False

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - backstop only
        try:
            self.close()
        except Exception:
            pass


def attach(manifest: SegmentManifest) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Map one published segment and return zero-copy views per array.

    The returned ``SharedMemory`` handle must stay referenced as long as
    the views are in use; the coordinator owns the unlink.  Callers are
    expected to be *forked* from the publisher (see the module
    docstring's lifecycle rules).
    """
    shm = shared_memory.SharedMemory(name=manifest.segment)
    views = {
        spec.name: np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
        )
        for spec in manifest.arrays
    }
    return shm, views


def leaked_segments(prefix: str = SHM_PREFIX) -> list[str]:
    """Names under ``/dev/shm`` still carrying our prefix (should be
    empty after every registry is closed)."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in root.glob(f"{prefix}-*"))
