"""Knobs of the process-execution backend."""

from __future__ import annotations

from dataclasses import dataclass

#: Prefix of every shared-memory segment this package creates.  Tests
#: and benches scan ``/dev/shm`` for it to assert nothing leaked.
SHM_PREFIX = "colr"


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """Tunables of :class:`repro.parallel.portal.ParallelFederatedPortal`.

    Parameters
    ----------
    tile_nodes:
        Classification tile length (nodes) applied to every shard
        kernel, coordinator *and* worker side.  ``None`` (the default)
        auto-sizes from the CPU's L2 cache via
        :func:`repro.core.flat.auto_tile_nodes`; pass an explicit value
        to pin it (tests sweep tiny tiles).  Labels are bit-identical
        for any value.
    start_method:
        ``multiprocessing`` start method for the workers.  ``"fork"``
        (the default, and the only supported value on this code path)
        lets the bootstrap payload and socket pair be inherited instead
        of pickled.
    verify_adoption:
        When true (the default) each worker compares the shared-memory
        arrays against its locally rebuilt kernel before adopting them —
        a one-time O(index) guard that publisher and worker built the
        same tree.  Disable for faster worker startup on large fleets.
    shm_prefix:
        Name prefix of the published segments.
    """

    tile_nodes: int | None = None
    start_method: str = "fork"
    verify_adoption: bool = True
    shm_prefix: str = SHM_PREFIX

    def __post_init__(self) -> None:
        if self.tile_nodes is not None and self.tile_nodes < 1:
            raise ValueError("tile_nodes must be positive or None")
        if self.start_method != "fork":
            raise ValueError('start_method must be "fork"')
        if not self.shm_prefix or "/" in self.shm_prefix:
            raise ValueError("shm_prefix must be a non-empty flat name")
