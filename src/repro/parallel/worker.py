"""The shard worker process.

Each worker owns one full ``SensorMapPortal``: it *rebuilds* the shard
deterministically from the bootstrap payload (same sensors, same config,
same ``network_seed`` → the identical tree and RNG stream the in-process
backend would hold), then swaps the rebuilt kernels' static arrays for
the coordinator's shared-memory views via
:meth:`~repro.core.flat.FlatKernel.adopt_arrays` — optionally verifying
them element-for-element first.  From then on the loop is a plain
request/reply server over one socket:

``("op", name, args, now)``
    Advance the worker clock to ``now`` (the coordinator's simulated
    time travels inside every envelope so freshness bounds agree), run
    ``portal.<name>(*args)``, reply ``("ok", result)`` or
    ``("err", traceback_text)``.
``("shutdown",)``
    Reply ``("ok", None)`` and exit 0.

A crash of any kind simply drops the socket; the coordinator sees
``EOFError`` and degrades the shard like a timeout.
"""

from __future__ import annotations

import socket
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.parallel.framing import recv_frame, send_frame
from repro.parallel.shm import SegmentManifest, attach
from repro.portal.portal import SensorMapPortal
from repro.sensors.clock import SimClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import COLRTreeConfig
    from repro.core.stats import ProcessingCostModel
    from repro.sensors.sensor import Sensor
    from repro.storage.config import StorageConfig
    from repro.transport.config import TransportConfig

__all__ = ["WorkerBootstrap", "worker_main"]


@dataclass
class WorkerBootstrap:
    """Everything one worker needs to reconstruct its shard.

    ``clock_start`` is the coordinator's simulated time at index
    (re)build, so the worker portal is constructed at the same logical
    instant as the in-process backend's shard.  ``value_fn`` crosses the
    fork boundary by inheritance, so module-level functions and ``None``
    both work.
    """

    shard_id: int
    sensors: "list[Sensor]"
    config: "COLRTreeConfig"
    cost_model: "ProcessingCostModel"
    value_fn: object
    network_seed: int
    max_sensors_per_query: int | None
    transport: "TransportConfig | None"
    network_options: dict[str, object] = field(default_factory=dict)
    clock_start: float = 0.0
    manifests: dict[str, SegmentManifest] = field(default_factory=dict)
    verify_adoption: bool = True
    # The worker — not the coordinator — owns the shard's storage
    # engine (one writer per WAL), so a SIGKILLed worker is a genuine
    # crash and its respawn a genuine recovery.
    storage: "StorageConfig | None" = None


def build_portal(bootstrap: WorkerBootstrap) -> SensorMapPortal:
    """Deterministically rebuild the shard portal and map the published
    kernels over it."""
    portal = SensorMapPortal(
        config=bootstrap.config,
        cost_model=bootstrap.cost_model,
        value_fn=bootstrap.value_fn,
        network_seed=bootstrap.network_seed,
        clock=SimClock(bootstrap.clock_start),
        max_sensors_per_query=bootstrap.max_sensors_per_query,
        transport=bootstrap.transport,
        network_options=dict(bootstrap.network_options),
        storage=bootstrap.storage,
    )
    portal.register_all(list(bootstrap.sensors))
    portal.rebuild_index()
    # Swap each type tree's kernel arrays for the shared views.  The
    # SharedMemory handles must outlive the kernels, so they ride on the
    # portal instance.
    handles = []
    for sensor_type, manifest in bootstrap.manifests.items():
        kernel = portal.tree(sensor_type).kernel
        if kernel is None:
            continue
        shm, views = attach(manifest)
        kernel.adopt_arrays(views, verify=bootstrap.verify_adoption)
        handles.append(shm)
    portal._parallel_shm_handles = handles  # noqa: SLF001 - lifetime anchor
    return portal


def worker_main(
    sock: socket.socket,
    peer_sock: socket.socket | None,
    bootstrap: WorkerBootstrap,
) -> None:
    """Entry point of the forked worker process.

    ``peer_sock`` is the coordinator's end inherited across the fork —
    closed here so an EOF on ``sock`` really means the coordinator went
    away (and vice versa).
    """
    if peer_sock is not None:
        peer_sock.close()
    try:
        portal = build_portal(bootstrap)
    except BaseException:
        try:
            send_frame(sock, ("err", traceback.format_exc()))
        finally:
            sock.close()
        raise SystemExit(1)
    # The bootstrap ack carries the worker-side recovery cost so the
    # coordinator can charge a respawn-over-a-warm-directory to the
    # shard's next gather.
    send_frame(
        sock,
        (
            "ok",
            {
                "shard_id": bootstrap.shard_id,
                "recovery_seconds": portal.recovery_seconds,
            },
        ),
    )
    while True:
        try:
            frame = recv_frame(sock)
        except (EOFError, OSError):
            break
        if not isinstance(frame, tuple) or not frame:
            send_frame(sock, ("err", f"malformed frame: {frame!r}"))
            continue
        if frame[0] == "shutdown":
            send_frame(sock, ("ok", None))
            break
        if frame[0] != "op":
            send_frame(sock, ("err", f"unknown frame kind: {frame[0]!r}"))
            continue
        _, op, args, now = frame
        try:
            portal.clock.advance_to(now)
            result = getattr(portal, op)(*args)
            reply = ("ok", result)
        except BaseException:
            reply = ("err", traceback.format_exc())
        send_frame(sock, reply)
    sock.close()
    # A clean exit (coordinator shutdown or EOF) flushes the WAL; a
    # SIGKILL never reaches this line — that is the crash being modeled.
    portal.close()
