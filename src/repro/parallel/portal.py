"""The process-execution federation backend.

``ParallelFederatedPortal`` subclasses the in-process
:class:`~repro.federation.federated.FederatedPortal` and overrides
exactly the two shard-interaction hooks:

- :meth:`_shard_op` ships one ``(op, args)`` envelope over the worker's
  socket and unpickles the reply; a broken pipe surfaces as
  :class:`~repro.federation.federated.ShardDownError`, so a crashed
  worker degrades exactly like a killed in-process shard (flagged
  partial answer, retry budget, cooldown).
- :meth:`_scatter_calls` pipelines one scatter round: every routed
  worker receives its frame *before* any reply is read, so the shards'
  Python work genuinely overlaps on the wall clock.  Retry, backoff,
  cooldown and failure accounting replicate the sequential
  ``_call_shard`` per shard, keeping coordinator counters and modeled
  seconds identical across backends.

The coordinator also keeps the in-process shard portals it built during
``rebuild_index()``.  They serve three jobs: they are the source the
shared-memory segments are published from, the build-time snapshot that
read-only introspection (``stats``/``explain``) falls back to when a
worker is down, and the verification reference each worker checks its
adopted arrays against.
"""

from __future__ import annotations

import multiprocessing
import socket
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.flat import auto_tile_nodes
from repro.federation.federated import FederatedPortal, ShardDownError, _ShardState
from repro.parallel.config import ParallelConfig
from repro.parallel.framing import recv_frame, send_frame
from repro.parallel.shm import SegmentManifest, SegmentRegistry
from repro.parallel.worker import WorkerBootstrap, worker_main

__all__ = ["ParallelFederatedPortal"]


@dataclass
class _Worker:
    """Coordinator-side handle of one shard process."""

    process: multiprocessing.process.BaseProcess
    sock: socket.socket
    alive: bool = True


class ParallelFederatedPortal(FederatedPortal):
    """One worker process per shard over shared-memory flat kernels."""

    def __init__(self, *args, parallel: ParallelConfig | None = None, **kwargs) -> None:
        kwargs.pop("parallel", None)
        super().__init__(*args, **kwargs)
        self.parallel = parallel if parallel is not None else ParallelConfig()
        # Shard storage engines live in the worker processes (one
        # writer per WAL); the coordinator's snapshot shards stay
        # purely in-memory.
        self._shard_storage_local = False
        # Workers classify in cache-sized tiles; the coordinator's own
        # snapshot shards get the same config so worker-side kernels
        # verify cleanly against them.
        if self.config.classify_tile_nodes is None:
            tile = (
                self.parallel.tile_nodes
                if self.parallel.tile_nodes is not None
                else auto_tile_nodes()
            )
            self.config = replace(self.config, classify_tile_nodes=tile)
        self._mp = multiprocessing.get_context(self.parallel.start_method)
        self._registry = SegmentRegistry(self.parallel.shm_prefix)
        self._manifests: dict[int, dict[str, SegmentManifest]] = {}
        self._workers: dict[int, _Worker] = {}
        self._clock_start = self.clock.now()

    # ------------------------------------------------------------------
    # Index lifecycle: build → publish → spawn
    # ------------------------------------------------------------------
    def rebuild_index(self) -> None:
        """Rebuild the shards, republish their kernels and respawn every
        worker against the fresh segments.

        Old segments are unlinked *before* the rebuild and old workers
        torn down with them — a respawn is the invalidation of the
        worker-side kernel maps (a fresh process maps only the new
        segments; the old mappings die with the old process).
        """
        self._teardown_workers()
        self._registry.close()
        self._registry.reopen()
        self._manifests = {}
        super().rebuild_index()
        for shard_id, shard in enumerate(self._shards):
            manifests: dict[str, SegmentManifest] = {}
            for sensor_type in shard.sensor_types():
                kernel = shard.tree(sensor_type).kernel
                if kernel is None:
                    continue
                manifests[sensor_type] = self._registry.publish(
                    kernel.shared_arrays(), tag=f"s{shard_id}-{sensor_type}"
                )
            self._manifests[shard_id] = manifests
        self._clock_start = self.clock.now()
        for shard_id in range(len(self._shards)):
            self._spawn(shard_id)

    def _bootstrap(self, shard_id: int) -> WorkerBootstrap:
        return WorkerBootstrap(
            shard_id=shard_id,
            sensors=self._groups[shard_id],
            config=self.config,
            cost_model=self.cost_model,
            value_fn=self._value_fn,
            network_seed=self._network_seed + shard_id,
            max_sensors_per_query=self.max_sensors_per_query,
            transport=self.transport_config,
            network_options=dict(self._network_options),
            clock_start=self._clock_start,
            manifests=self._manifests.get(shard_id, {}),
            verify_adoption=self.parallel.verify_adoption,
            storage=(
                self.storage_config.for_shard(shard_id)
                if self.storage_config is not None
                else None
            ),
        )

    def _spawn(self, shard_id: int) -> None:
        """Fork one worker and wait for its bootstrap acknowledgement."""
        parent_sock, child_sock = socket.socketpair()
        process = self._mp.Process(
            target=worker_main,
            args=(child_sock, parent_sock, self._bootstrap(shard_id)),
            daemon=True,
            name=f"colr-shard-{shard_id}",
        )
        process.start()
        child_sock.close()
        try:
            kind, payload = recv_frame(parent_sock)
        except (EOFError, OSError) as exc:
            parent_sock.close()
            raise RuntimeError(f"shard {shard_id} worker died during bootstrap") from exc
        if kind != "ok":
            parent_sock.close()
            raise RuntimeError(f"shard {shard_id} worker bootstrap failed:\n{payload}")
        self._workers[shard_id] = _Worker(process=process, sock=parent_sock)
        # Newer workers ack with a dict carrying their recovery cost; a
        # bare shard id means no storage (or an older worker) — nothing
        # to charge.
        recovery_seconds = (
            float(payload.get("recovery_seconds", 0.0))
            if isinstance(payload, dict)
            else 0.0
        )
        if recovery_seconds > 0.0:
            state = self._states.setdefault(shard_id, _ShardState())
            state.pending_recovery_seconds += recovery_seconds
            self.stats.shard_recoveries += 1
            self.stats.recovery_seconds_total += recovery_seconds

    # ------------------------------------------------------------------
    # Worker health
    # ------------------------------------------------------------------
    def _mark_worker_dead(self, shard_id: int) -> None:
        worker = self._workers.get(shard_id)
        if worker is None or not worker.alive:
            return
        worker.alive = False
        try:
            worker.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join()

    def kill_shard(self, shard_id: int) -> None:
        """Kill the shard *process* (SIGKILL), not just the flag: the
        coordinator degrades exactly as for a real worker crash."""
        super().kill_shard(shard_id)
        self._mark_worker_dead(shard_id)

    def revive_shard(self, shard_id: int) -> float:
        """Restart the worker and remap the current segments.  Without
        storage the revived shard rebuilds from bootstrap — like a real
        node restart, its runtime cache state starts cold.  With storage
        the respawned worker recovers from the shard's data directory
        (WAL replay, caches re-installed) and the modeled recovery
        seconds — returned here — are charged to its next gather."""
        super().revive_shard(shard_id)
        worker = self._workers.get(shard_id)
        if worker is None or not worker.alive:
            before = self._states[shard_id].pending_recovery_seconds
            self._spawn(shard_id)
            return self._states[shard_id].pending_recovery_seconds - before
        return 0.0

    def worker_pid(self, shard_id: int) -> int | None:
        """The live worker's pid (tests crash it out-of-band)."""
        worker = self._workers.get(shard_id)
        if worker is None or not worker.alive:
            return None
        return worker.process.pid

    # ------------------------------------------------------------------
    # Live rebalancing: segment republish on membership change
    # ------------------------------------------------------------------
    def _shutdown_worker(self, shard_id: int) -> None:
        """Gracefully stop one worker (flushes its WAL), dropping its
        handle so a later :meth:`_spawn` starts fresh."""
        worker = self._workers.pop(shard_id, None)
        if worker is None:
            return
        if worker.alive:
            try:
                send_frame(worker.sock, ("shutdown",))
                recv_frame(worker.sock)
            except (EOFError, OSError):
                pass
        try:
            worker.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join()
        else:
            worker.process.join()

    def _publish_shard(self, shard_id: int) -> None:
        """Publish (or republish) one shard's kernels as fresh segments."""
        shard = self._shards[shard_id]
        manifests: dict[str, SegmentManifest] = {}
        for sensor_type in shard.sensor_types():
            kernel = shard.tree(sensor_type).kernel
            if kernel is None:
                continue
            manifests[sensor_type] = self._registry.publish(
                kernel.shared_arrays(), tag=f"s{shard_id}-{sensor_type}"
            )
        self._manifests[shard_id] = manifests

    def rebalance_apply(
        self,
        changes,
        primed=None,
        drop=(),
        on_staged=None,
    ) -> None:
        """Membership change with per-shard segment republish.

        Only the *affected* shards cycle: their workers shut down
        cleanly (WAL flushed), their stale segments unlink, their
        durable directories are wiped to the new sensor sets, fresh
        kernels publish, and new workers spawn — unaffected workers
        keep serving their mapped segments untouched throughout.
        Migrated cache entries ship to the new workers over the op pipe
        (followed by a checkpoint when storage is attached), so moved
        sensors stay probe-free without any coordinator-side engine."""
        self._ensure_index()
        primed = dict(primed or {})
        staged = {
            shard_id: self._build_shard(shard_id, group)
            for shard_id, group in sorted(changes.items())
        }
        if on_staged is not None:
            on_staged()
        affected = sorted(set(changes) | set(drop))
        for shard_id in affected:
            self._shutdown_worker(shard_id)
        if self.storage_config is not None:
            from repro.storage.engine import wipe_data_dir

            for shard_id in affected:
                wipe_data_dir(self.storage_config.for_shard(shard_id).path)
        for shard_id in affected:
            for manifest in self._manifests.pop(shard_id, {}).values():
                self._registry.unpublish(manifest)
        self._commit_membership(staged, changes, drop)
        for shard_id in sorted(changes):
            self._publish_shard(shard_id)
            self._spawn(shard_id)
            entries = list(primed.get(shard_id, ()))
            if entries:
                self._shard_op(shard_id, "install_cache_entries", entries)
            if self.storage_config is not None and not self._states[shard_id].killed:
                self._shard_op(shard_id, "checkpoint")

    # ------------------------------------------------------------------
    # Shard interaction hooks
    # ------------------------------------------------------------------
    def _shard_op(self, shard_id: int, op: str, *args: object) -> object:
        worker = self._workers.get(shard_id)
        if worker is None or not worker.alive:
            if op in ("stats", "explain"):
                # Read-only introspection of a down shard answers from
                # the coordinator's build-time snapshot.
                return getattr(self._shards[shard_id], op)(*args)
            raise ShardDownError(f"shard {shard_id} worker is not running")
        try:
            send_frame(worker.sock, ("op", op, args, self.clock.now()))
            kind, payload = recv_frame(worker.sock)
        except (EOFError, OSError) as exc:
            self._mark_worker_dead(shard_id)
            raise ShardDownError(f"shard {shard_id} worker died: {exc}") from exc
        if kind == "ok":
            return payload
        raise RuntimeError(f"shard {shard_id} worker error:\n{payload}")

    def _scatter_calls(
        self,
        calls: Sequence[tuple[int, str, tuple]],
        penalties: dict[int, float],
    ) -> dict[int, object | None]:
        """Send every frame of the round before reading any reply, so
        all routed workers compute concurrently; then gather, retrying
        failed shards with the same budget/backoff/cooldown accounting
        as the sequential backend."""
        cfg = self.federation
        now = self.clock.now()
        results: dict[int, object | None] = {}
        delays: dict[int, float] = {}
        pending: list[tuple[int, str, tuple]] = []
        for shard_id, op, args in calls:
            if self._states[shard_id].down_until > now:
                self.stats.shard_cooldown_skips += 1
                results[shard_id] = None
                continue
            # Mirror _call_shard: a freshly revived shard pays its
            # crash-recovery replay time on its first gather.
            state = self._states[shard_id]
            delays[shard_id] = state.pending_recovery_seconds
            state.pending_recovery_seconds = 0.0
            pending.append((shard_id, op, args))
        for attempt in range(cfg.shard_retry_budget + 1):
            if not pending:
                break
            sent: list[tuple[int, str, tuple]] = []
            failed_now: list[tuple[int, str, tuple]] = []
            for shard_id, op, args in pending:
                self.stats.shard_attempts += 1
                dispatched = False
                worker = self._workers.get(shard_id)
                if (
                    not self._states[shard_id].killed
                    and worker is not None
                    and worker.alive
                ):
                    try:
                        send_frame(worker.sock, ("op", op, args, now))
                        dispatched = True
                    except OSError:
                        self._mark_worker_dead(shard_id)
                (sent if dispatched else failed_now).append((shard_id, op, args))
            for shard_id, op, args in sent:
                worker = self._workers[shard_id]
                try:
                    kind, payload = recv_frame(worker.sock)
                except (EOFError, OSError):
                    self._mark_worker_dead(shard_id)
                    failed_now.append((shard_id, op, args))
                    continue
                if kind != "ok":
                    raise RuntimeError(
                        f"shard {shard_id} worker error:\n{payload}"
                    )
                self._states[shard_id].consecutive_failures = 0
                penalties[shard_id] = delays[shard_id]
                results[shard_id] = payload
            retry: list[tuple[int, str, tuple]] = []
            for shard_id, op, args in failed_now:
                if attempt < cfg.shard_retry_budget:
                    self.stats.shard_retries += 1
                    delays[shard_id] += (
                        cfg.retry_backoff_base * cfg.retry_backoff_multiplier**attempt
                    )
                    penalties[shard_id] = delays[shard_id]
                    retry.append((shard_id, op, args))
                else:
                    state = self._states[shard_id]
                    state.consecutive_failures += 1
                    if cfg.cooldown_seconds > 0:
                        state.down_until = now + cfg.cooldown_seconds
                    self.stats.shard_failures += 1
                    penalties[shard_id] = delays[shard_id]
                    results[shard_id] = None
            pending = retry
        return results

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _teardown_workers(self) -> None:
        for shard_id, worker in list(self._workers.items()):
            if worker.alive:
                try:
                    send_frame(worker.sock, ("shutdown",))
                    recv_frame(worker.sock)
                except (EOFError, OSError):
                    pass
            try:
                worker.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
                if worker.process.is_alive():  # pragma: no cover - stuck worker
                    worker.process.kill()
                    worker.process.join()
            else:
                worker.process.join()
        self._workers = {}

    def close(self) -> None:
        """Shut every worker down and unlink all published segments."""
        self._teardown_workers()
        self._registry.close()
