"""Simulated live-sensor substrate.

The paper's sensors are real web-connected devices (restaurant wait-time
publishers, USGS gauges, weather stations) that must be *pulled* on
demand, are intermittently available, and stamp each reading with an
expiry time.  This package simulates that world faithfully enough for the
evaluation to be meaningful:

``SimClock``
    A deterministic virtual clock shared by the network, the index and
    the benchmark harness.
``Sensor`` / ``Reading``
    Static metadata (location, type, expiry duration) and timestamped
    readings with explicit expiry instants.
``AvailabilityModel``
    Per-sensor ground-truth availability plus the *historical* estimates
    that COLR-Tree's oversampling step consumes (Section V).
``SpatialField``
    Spatially correlated ground-truth values, used for the Figure 7
    result-accuracy experiment.
``SensorNetwork``
    The probe endpoint: batch probes succeed per-sensor with the
    ground-truth availability and are metered for probe counts and a
    simulated latency model.
``SensorRegistry``
    The publisher-facing registration store of static metadata.
"""

from repro.sensors.clock import SimClock
from repro.sensors.sensor import Reading, Sensor
from repro.sensors.availability import AvailabilityModel
from repro.sensors.field import SpatialField
from repro.sensors.network import ProbeResult, SensorNetwork
from repro.sensors.registry import SensorRegistry

__all__ = [
    "SimClock",
    "Sensor",
    "Reading",
    "AvailabilityModel",
    "SpatialField",
    "SensorNetwork",
    "ProbeResult",
    "SensorRegistry",
]
