"""The publisher-facing registration store.

SensorMap publishers register sensors with static metadata (Section
III-A).  The registry is the source of truth the index is built from: it
assigns dense ids, validates metadata and exposes typed lookups.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.geometry import GeoPoint, Rect
from repro.sensors.sensor import Sensor


class SensorRegistry:
    """An append-mostly store of registered sensors."""

    def __init__(self) -> None:
        self._sensors: dict[int, Sensor] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        location: GeoPoint,
        expiry_seconds: float,
        sensor_type: str = "generic",
        availability: float = 1.0,
        metadata: dict[str, str] | None = None,
    ) -> Sensor:
        """Register one sensor and return its record (with assigned id)."""
        sensor = Sensor(
            sensor_id=self._next_id,
            location=location,
            expiry_seconds=expiry_seconds,
            sensor_type=sensor_type,
            availability=availability,
            metadata=tuple(sorted((metadata or {}).items())),
        )
        self._sensors[sensor.sensor_id] = sensor
        self._next_id += 1
        return sensor

    def register_all(self, sensors: Iterable[Sensor]) -> None:
        """Bulk-register pre-built sensors (workload generators)."""
        for sensor in sensors:
            if sensor.sensor_id in self._sensors:
                raise ValueError(f"duplicate sensor id {sensor.sensor_id}")
            self._sensors[sensor.sensor_id] = sensor
            self._next_id = max(self._next_id, sensor.sensor_id + 1)

    def unregister(self, sensor_id: int) -> None:
        """Remove a sensor (publisher withdrew it)."""
        if sensor_id not in self._sensors:
            raise KeyError(f"unknown sensor id {sensor_id}")
        del self._sensors[sensor_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sensors)

    def __iter__(self) -> Iterator[Sensor]:
        return iter(self._sensors.values())

    def __contains__(self, sensor_id: int) -> bool:
        return sensor_id in self._sensors

    def get(self, sensor_id: int) -> Sensor:
        return self._sensors[sensor_id]

    def all(self) -> list[Sensor]:
        """All sensors in id order."""
        return [self._sensors[sid] for sid in sorted(self._sensors)]

    def by_type(self, sensor_type: str) -> list[Sensor]:
        """Sensors of one type, in id order."""
        return [s for s in self.all() if s.sensor_type == sensor_type]

    def within(self, region: Rect) -> list[Sensor]:
        """Sensors whose location lies in ``region`` (brute force; used
        by tests and the flat-cache baseline, never by the index)."""
        return [s for s in self.all() if region.contains_point(s.location)]

    def bounding_box(self) -> Rect:
        """Bounding box of every registered sensor location."""
        if not self._sensors:
            raise ValueError("registry is empty")
        return Rect.from_points(s.location for s in self._sensors.values())
