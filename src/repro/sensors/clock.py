"""A deterministic virtual clock.

Everything in the reproduction — reading timestamps, expiry instants,
slot-cache slides, query freshness bounds — is driven by one shared
``SimClock`` so experiments are reproducible and can compress hours of
wall-clock time into a fast benchmark run.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds.

    The clock never goes backwards; ``advance`` with a negative delta is
    an error rather than a silent rewind, because slot caches assume a
    monotone timeline when they slide.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, instant: float) -> float:
        """Move time forward to an absolute instant (no-op if in the past)."""
        if instant > self._now:
            self._now = instant
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.3f})"
