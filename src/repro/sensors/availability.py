"""Sensor availability: ground truth and historical estimates.

Section V of the paper scales the sample target by ``1/a`` where ``a``
is the *historical* mean availability of the sensors below a node, on
the observation that past availability predicts future availability.
We therefore keep two views:

* the ground-truth per-sensor probability, owned by the network and used
  to decide whether each simulated probe succeeds; and
* a history of probe outcomes, from which ``estimate()`` computes the
  smoothed availability the index is allowed to see.

The smoothing is a Beta(1, 1) (add-one) prior so brand-new sensors are
assumed available rather than dividing by zero.  An optional
exponential ``decay`` discounts old outcomes so the estimate tracks
fleets whose reliability drifts (a phone-hosted sensor moving in and
out of coverage); ``decay=1.0`` (default) is the plain all-history
estimator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _History:
    successes: float = 0.0
    failures: float = 0.0


class AvailabilityModel:
    """Tracks probe outcomes and serves historical availability estimates."""

    def __init__(
        self,
        prior_successes: float = 1.0,
        prior_failures: float = 1.0,
        decay: float = 1.0,
    ) -> None:
        if prior_successes <= 0 or prior_failures < 0:
            raise ValueError("priors must be positive (successes) / non-negative")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self._prior_s = float(prior_successes)
        self._prior_f = float(prior_failures)
        self.decay = float(decay)
        self._history: dict[int, _History] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, sensor_id: int, success: bool) -> None:
        """Record one probe outcome for a sensor.

        With ``decay < 1`` the existing counts are discounted first, so
        the effective history window is ~``1 / (1 - decay)`` outcomes.
        """
        h = self._history.setdefault(sensor_id, _History())
        if self.decay < 1.0:
            h.successes *= self.decay
            h.failures *= self.decay
        if success:
            h.successes += 1
        else:
            h.failures += 1

    def seed(self, sensor_id: int, successes: int, failures: int) -> None:
        """Bulk-load a synthetic history (used by workload generators so
        the index starts with informative estimates, as the deployed
        SensorMap portal would)."""
        if successes < 0 or failures < 0:
            raise ValueError("history counts must be non-negative")
        h = self._history.setdefault(sensor_id, _History())
        h.successes += successes
        h.failures += failures

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def estimate(self, sensor_id: int) -> float:
        """Smoothed historical availability of one sensor in (0, 1]."""
        h = self._history.get(sensor_id)
        if h is None:
            s, f = self._prior_s, self._prior_f
        else:
            s = h.successes + self._prior_s
            f = h.failures + self._prior_f
        return s / (s + f)

    def mean_estimate(self, sensor_ids: list[int]) -> float:
        """Mean availability over a sensor set — the ``a`` of Algorithm 1.

        Clamped away from zero so the ``1/a`` oversampling factor stays
        finite even for a pathologically dead subtree.
        """
        if not sensor_ids:
            return 1.0
        total = 0.0
        for sid in sensor_ids:
            total += self.estimate(sid)
        return max(1e-3, total / len(sensor_ids))

    def observed_probes(self, sensor_id: int) -> int:
        """How many (decay-weighted) outcomes are on record, rounded."""
        h = self._history.get(sensor_id)
        return 0 if h is None else int(round(h.successes + h.failures))
