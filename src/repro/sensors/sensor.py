"""Sensor metadata and readings.

A sensor publishes *static* metadata at registration time (location,
type, how long its readings stay valid) and produces timestamped
``Reading`` values when probed.  Expiry semantics follow the paper: a
reading carries a fixed validity range, and any aggregate containing the
reading must be discarded once the reading expires (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import GeoPoint


@dataclass(frozen=True, slots=True)
class Sensor:
    """Static metadata for one registered sensor.

    Parameters
    ----------
    sensor_id:
        Dense non-negative integer identifier, unique per registry.
    location:
        Fixed position.  The paper assumes locations change rarely;
        COLR-Tree is rebuilt periodically to absorb moves.
    expiry_seconds:
        How long a reading from this sensor remains valid.  Different
        publishers choose very different values (Figure 2's workloads),
        which is exactly what makes aggregate caching hard.
    sensor_type:
        Free-form type tag (``"restaurant"``, ``"water"``, ...) used by
        portal queries to filter.
    availability:
        Ground-truth probability that a probe succeeds.  The index never
        reads this directly — it sees only historical estimates from
        :class:`repro.sensors.availability.AvailabilityModel`.
    """

    sensor_id: int
    location: GeoPoint
    expiry_seconds: float
    sensor_type: str = "generic"
    availability: float = 1.0
    metadata: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.sensor_id < 0:
            raise ValueError("sensor_id must be non-negative")
        if self.expiry_seconds <= 0:
            raise ValueError("expiry_seconds must be positive")
        if not 0.0 <= self.availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class Reading:
    """A single timestamped sensor value.

    ``expires_at`` is the instant the value becomes invalid; consumers
    (slot caches, query answers) must treat the reading as unusable at or
    after that time.
    """

    sensor_id: int
    value: float
    timestamp: float
    expires_at: float

    def __post_init__(self) -> None:
        if self.expires_at < self.timestamp:
            raise ValueError("a reading cannot expire before it was taken")

    def is_valid_at(self, instant: float) -> bool:
        """True while the reading has not expired."""
        return instant < self.expires_at

    def is_fresh_at(self, instant: float, max_staleness: float) -> bool:
        """True when the reading is unexpired *and* within the user's
        staleness bound (``S.time BETWEEN now()-w AND now()``)."""
        return self.is_valid_at(instant) and (instant - self.timestamp) <= max_staleness

    @property
    def lifetime(self) -> float:
        """The validity duration the publisher attached to this reading."""
        return self.expires_at - self.timestamp
