"""The simulated probe endpoint.

``SensorNetwork`` is the only component allowed to produce fresh
readings.  Every probe is metered: the benchmark harness reads the
counters to reproduce the paper's "# sensor probes" axes, and the
latency model converts batch sizes into a simulated collection latency
(probes run in parallel up to a connection limit, as a web portal's data
collector would).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.sensors.availability import AvailabilityModel
from repro.sensors.sensor import Reading, Sensor


@dataclass(frozen=True, slots=True)
class ProbeAttempt:
    """One wire-level contact with one sensor, before any accounting.

    ``ok`` is the joint outcome (available *and* within the timeout);
    ``timed_out`` distinguishes the two failure modes; ``latency_seconds``
    is the sampled per-connection latency (capped at the timeout when one
    is configured — a timed-out probe occupies its connection for the full
    timeout).  Attempts carry no reading: the transport layer decides when
    a contact becomes a delivered reading.
    """

    sensor_id: int
    ok: bool
    timed_out: bool
    latency_seconds: float


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """Outcome of one batch probe.

    ``readings`` maps sensor id to the fresh reading for every sensor
    that answered; ``unavailable`` lists sensors that were contacted but
    did not answer, ``timed_out`` those whose connection exceeded the
    collector's timeout.  ``latency_seconds`` is the simulated
    wall-clock cost of the batch under the parallel collection model.
    """

    readings: Mapping[int, Reading]
    unavailable: tuple[int, ...]
    timed_out: tuple[int, ...]
    latency_seconds: float

    @property
    def attempted(self) -> int:
        return len(self.readings) + len(self.unavailable) + len(self.timed_out)


@dataclass
class NetworkStats:
    """Cumulative probe accounting for an experiment run."""

    probes_attempted: int = 0
    probes_succeeded: int = 0
    # Failure breakdown: sensors that answered "no" vs. connections the
    # collector abandoned at its timeout.  Counted per wire attempt.
    probes_unavailable: int = 0
    probes_timed_out: int = 0
    batches: int = 0
    total_latency_seconds: float = 0.0
    # Probe requests that never reached a sensor because a concurrent
    # query in the same batch tick already contacted it (the batch
    # executor's coalescing); the communication the portal *saved*.
    probes_coalesced: int = 0
    # Transport-dispatcher accounting (zero on the synchronous path):
    # re-contacts of the same sensor within one logical probe, requests
    # served from the in-flight/recently-probed table, and requests
    # skipped because the sensor was in failure cooldown.
    probes_retried: int = 0
    probes_deduped: int = 0
    probes_cooldown_skipped: int = 0
    # Storage-engine accounting (zero on an in-memory portal): pager
    # page I/O and WAL appends / group-commit fsyncs the durable portal
    # performed — journaled ingestions, checkpoints, recovery priming.
    page_reads: int = 0
    page_writes: int = 0
    wal_appends: int = 0
    wal_fsyncs: int = 0
    # Geoblock-subsystem accounting (zero until a polygon or analytic
    # window query runs): rasterized polygon cells by kind and sliding
    # window cells carried over from the previous step instead of
    # recomputed.  Mirrors the per-query counters in ``QueryStats``.
    polygon_cells_interior: int = 0
    polygon_cells_boundary: int = 0
    window_cells_reused: int = 0
    per_sensor_probes: dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> "NetworkStats":
        """A copy safe to keep while the run continues."""
        clone = replace(self)
        clone.per_sensor_probes = dict(self.per_sensor_probes)
        return clone


ValueFn = Callable[[Sensor, float], float]


class SensorNetwork:
    """Holds the registered sensors and answers probe batches.

    Parameters
    ----------
    sensors:
        The sensor population.  Ids must be unique.
    value_fn:
        ``(sensor, now) -> value`` ground-truth generator; defaults to a
        hash-derived stable pseudo-value when the experiment does not
        care about values (probe-count experiments).
    availability_model:
        Where probe outcomes are recorded so the index can later read
        historical estimates.  Optional.
    rtt_seconds:
        Base round-trip latency of contacting one sensor.
    parallelism:
        Number of concurrent connections of the data collector; a batch
        of ``n`` probes costs ``ceil(n / parallelism)`` round trips.
    latency_jitter:
        Log-normal sigma of per-probe latency around ``rtt_seconds``;
        0 (default) keeps latencies deterministic.
    timeout_seconds:
        The collector's per-probe timeout: a probe whose sampled
        latency exceeds it is abandoned and reported unavailable (the
        collector cannot tell a slow sensor from a dead one).  ``None``
        disables timeouts.
    seed:
        RNG seed for availability and latency draws.
    """

    def __init__(
        self,
        sensors: Iterable[Sensor],
        value_fn: ValueFn | None = None,
        availability_model: AvailabilityModel | None = None,
        rtt_seconds: float = 0.2,
        parallelism: int = 64,
        latency_jitter: float = 0.0,
        timeout_seconds: float | None = None,
        seed: int = 0,
    ) -> None:
        self._sensors: dict[int, Sensor] = {}
        for sensor in sensors:
            if sensor.sensor_id in self._sensors:
                raise ValueError(f"duplicate sensor id {sensor.sensor_id}")
            self._sensors[sensor.sensor_id] = sensor
        if parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if rtt_seconds < 0:
            raise ValueError("rtt_seconds must be non-negative")
        if latency_jitter < 0:
            raise ValueError("latency_jitter must be non-negative")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive or None")
        self._value_fn = value_fn if value_fn is not None else _default_value
        self.availability_model = availability_model
        self.rtt_seconds = float(rtt_seconds)
        self.parallelism = int(parallelism)
        self.latency_jitter = float(latency_jitter)
        self.timeout_seconds = timeout_seconds
        self._rng = np.random.default_rng(seed)
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sensors)

    def sensor(self, sensor_id: int) -> Sensor:
        return self._sensors[sensor_id]

    def sensors(self) -> list[Sensor]:
        """All sensors, in id order."""
        return [self._sensors[sid] for sid in sorted(self._sensors)]

    def reset_stats(self) -> None:
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, sensor_ids: Iterable[int], now: float) -> ProbeResult:
        """Probe a batch of sensors at simulated instant ``now``.

        Each probe succeeds independently with the sensor's ground-truth
        availability.  Successful probes return a reading timestamped
        ``now`` that expires after the sensor's published expiry
        duration.  Outcomes are recorded in the availability model so
        future oversampling decisions improve.

        Equivalent by construction to ``complete_batch(ids,
        sample_attempts(ids), now)`` — the transport dispatcher uses the
        two halves separately to schedule attempts on an event queue.
        """
        ids = list(sensor_ids)
        return self.complete_batch(ids, self.sample_attempts(ids), now)

    def sample_attempts(self, sensor_ids: Iterable[int]) -> list[ProbeAttempt]:
        """Sample wire outcomes for a batch of contacts.

        Consumes the network RNG exactly as :meth:`probe` does (one
        availability draw per id, then one latency draw per id), performs
        no accounting and records nothing — the caller decides how the
        attempts aggregate into logical probes.
        """
        ids = list(sensor_ids)
        sensors: list[Sensor] = []
        for sid in ids:
            sensor = self._sensors.get(sid)
            if sensor is None:
                raise KeyError(f"unknown sensor id {sid}")
            sensors.append(sensor)
        draws = self._rng.random(len(ids))
        latencies = self._sample_latencies(len(ids))
        if self.timeout_seconds is not None:
            # A timed-out probe occupies its connection for the full
            # timeout and is indistinguishable from a dead sensor.
            timeouts = latencies > self.timeout_seconds
            np.minimum(latencies, self.timeout_seconds, out=latencies)
        else:
            timeouts = np.zeros(len(ids), dtype=bool)
        return [
            ProbeAttempt(
                sensor_id=sid,
                ok=(draw < sensor.availability) and not timed_out,
                timed_out=bool(timed_out),
                latency_seconds=float(latency),
            )
            for sid, sensor, draw, timed_out, latency in zip(
                ids, sensors, draws.tolist(), timeouts.tolist(), latencies.tolist()
            )
        ]

    def build_reading(self, sensor_id: int, now: float) -> Reading:
        """Materialize the reading a successful contact delivers."""
        sensor = self._sensors[sensor_id]
        return Reading(
            sensor_id=sensor_id,
            value=self._value_fn(sensor, now),
            timestamp=now,
            expires_at=now + sensor.expiry_seconds,
        )

    def record_outcome(self, sensor_id: int, success: bool) -> None:
        """Record one *logical* probe outcome in the availability model.

        The dispatcher calls this once per logical probe (after retries
        resolve), never once per attempt, so retrying does not multiply a
        sensor's history."""
        if self.availability_model is not None:
            self.availability_model.record(sensor_id, success)

    def complete_batch(
        self,
        sensor_ids: list[int],
        attempts: list[ProbeAttempt],
        now: float,
    ) -> ProbeResult:
        """Turn sampled attempts into a fully-accounted ``ProbeResult``.

        ``attempts`` must be in ``sensor_ids`` order (as returned by
        :meth:`sample_attempts`): availability recording and value
        generation happen in that order, which is what keeps
        ``probe() == complete_batch(sample_attempts())`` bit-identical.
        """
        ids = sensor_ids
        readings: dict[int, Reading] = {}
        unavailable: list[int] = []
        timed: list[int] = []
        per_sensor = self.stats.per_sensor_probes
        for sid in ids:
            per_sensor[sid] = per_sensor.get(sid, 0) + 1
        for attempt in attempts:
            self.record_outcome(attempt.sensor_id, attempt.ok)
            if attempt.ok:
                readings[attempt.sensor_id] = self.build_reading(attempt.sensor_id, now)
            elif attempt.timed_out:
                timed.append(attempt.sensor_id)
            else:
                unavailable.append(attempt.sensor_id)
        latency = self._batch_latency_from(
            np.array([a.latency_seconds for a in attempts])
        )
        self.stats.probes_attempted += len(ids)
        self.stats.probes_succeeded += len(readings)
        self.stats.probes_unavailable += len(unavailable)
        self.stats.probes_timed_out += len(timed)
        self.stats.batches += 1 if ids else 0
        self.stats.total_latency_seconds += latency
        return ProbeResult(
            readings=readings,
            unavailable=tuple(unavailable),
            timed_out=tuple(timed),
            latency_seconds=latency,
        )

    def record_coalesced(self, n: int) -> None:
        """Meter probe requests satisfied by a batch peer's probe
        (no network traffic occurred; accounting only)."""
        if n < 0:
            raise ValueError("coalesced count must be non-negative")
        self.stats.probes_coalesced += n

    def batch_latency(self, n_probes: int) -> float:
        """Deterministic (no-jitter) latency of probing ``n_probes``
        sensors in parallel over ``parallelism`` connections."""
        if n_probes <= 0:
            return 0.0
        rounds = math.ceil(n_probes / self.parallelism)
        return self.rtt_seconds * rounds

    def _sample_latencies(self, n: int) -> np.ndarray:
        """Per-probe latencies: log-normal jitter around the base RTT."""
        if n == 0:
            return np.empty(0)
        if self.latency_jitter <= 0.0:
            return np.full(n, self.rtt_seconds)
        return self.rtt_seconds * np.exp(
            self._rng.normal(0.0, self.latency_jitter, n)
        )

    def _batch_latency_from(self, latencies: np.ndarray) -> float:
        """Batch latency: probes run in rounds of ``parallelism``
        concurrent connections; each round lasts as long as its slowest
        probe."""
        n = latencies.size
        if n == 0:
            return 0.0
        rounds = -(-n // self.parallelism)
        # Pad the final round with zeros (latencies are non-negative, so
        # padding never changes a round's max) and reduce in two
        # vectorized steps instead of a Python loop over rounds.
        padded = np.zeros(rounds * self.parallelism)
        padded[:n] = latencies
        return float(padded.reshape(rounds, self.parallelism).max(axis=1).sum())


def _default_value(sensor: Sensor, now: float) -> float:
    """Stable pseudo-value when the experiment ignores reading values."""
    return float((sensor.sensor_id * 2654435761) % 1000) / 10.0
