"""Spatially correlated ground-truth fields.

Figure 7 of the paper exploits the fact that nearby sensors report
similar values (water discharge in the same river basin), so a small
random sample approximates the regional average well.  ``SpatialField``
reproduces that property: the value at a location is a smooth mixture of
Gaussian bumps (the "basins") plus a slow temporal drift and a small
per-reading noise term.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry import GeoPoint, Rect


class SpatialField:
    """A smooth scalar field over a rectangular domain.

    Parameters
    ----------
    domain:
        The rectangle the field covers.
    n_bumps:
        Number of Gaussian bumps; more bumps means shorter correlation
        length (less spatial smoothness).
    amplitude:
        Scale of bump heights above the base level.
    base:
        Constant offset so values stay positive (discharge-like).
    noise_sigma:
        Standard deviation of independent per-reading noise.
    drift_period:
        Period (seconds) of a slow sinusoidal temporal drift applied to
        the whole field, so repeated probes at different times differ.
    width_range:
        Bump standard deviations as fractions of the domain diagonal;
        narrower bumps give a rougher field (higher spatial variance,
        shorter correlation length).
    seed:
        RNG seed controlling bump placement and noise.
    """

    def __init__(
        self,
        domain: Rect,
        n_bumps: int = 8,
        amplitude: float = 100.0,
        base: float = 150.0,
        noise_sigma: float = 2.0,
        drift_period: float = 86_400.0,
        width_range: tuple[float, float] = (0.15, 0.45),
        seed: int = 0,
    ) -> None:
        if n_bumps < 1:
            raise ValueError("need at least one bump")
        if not 0 < width_range[0] <= width_range[1]:
            raise ValueError("width_range must be positive and ordered")
        self.domain = domain
        self.base = float(base)
        self.noise_sigma = float(noise_sigma)
        self.drift_period = float(drift_period)
        rng = np.random.default_rng(seed)
        self._bump_x = rng.uniform(domain.min_x, domain.max_x, n_bumps)
        self._bump_y = rng.uniform(domain.min_y, domain.max_y, n_bumps)
        # Bump widths as a fraction of the domain extent control how
        # smooth the field is at the sensor spacing.
        scale = max(domain.width, domain.height, 1e-9)
        self._bump_sigma = rng.uniform(width_range[0], width_range[1], n_bumps) * scale
        self._bump_height = rng.uniform(0.3, 1.0, n_bumps) * float(amplitude)
        self._noise_rng = np.random.default_rng(seed + 1)

    def mean_value(self, p: GeoPoint, at_time: float = 0.0) -> float:
        """Noise-free field value at a point and instant."""
        total = self.base
        for bx, by, bs, bh in zip(
            self._bump_x, self._bump_y, self._bump_sigma, self._bump_height
        ):
            d2 = (p.x - bx) ** 2 + (p.y - by) ** 2
            total += bh * math.exp(-d2 / (2.0 * bs * bs))
        drift = 1.0 + 0.1 * math.sin(2.0 * math.pi * at_time / self.drift_period)
        return total * drift

    def sample(self, p: GeoPoint, at_time: float = 0.0) -> float:
        """One noisy observation of the field."""
        return self.mean_value(p, at_time) + float(
            self._noise_rng.normal(0.0, self.noise_sigma)
        )

    def regional_mean(self, points: list[GeoPoint], at_time: float = 0.0) -> float:
        """Noise-free average over a set of sensor locations — the exact
        answer a full (unsampled) aggregate query would converge to."""
        if not points:
            raise ValueError("regional mean of zero points is undefined")
        return sum(self.mean_value(p, at_time) for p in points) / len(points)
