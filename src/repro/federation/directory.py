"""The shard directory: where each query decides who to ask.

One :class:`ShardEntry` per shard records the shard's MBR (over its
sensor locations), its population weight and the sensor types it hosts
— the same ``(bbox, weight)`` summary a COLR-Tree node keeps for its
subtree, kept one level above the trees.  Routing intersects the query
region with the MBRs; target splitting applies Algorithm 1's
overlap-weighted share rule (``w_i * Overlap(BB(i), A)``) across the
routed shards, with deterministic largest-remainder rounding so the
integer shares always sum to the requested target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.region import Region, region_overlap_fraction
from repro.geometry import Rect
from repro.sensors.sensor import Sensor

__all__ = ["ShardDirectory", "ShardEntry", "ShardRoute"]


@dataclass(frozen=True, slots=True)
class ShardEntry:
    """Directory row for one shard."""

    shard_id: int
    mbr: Rect
    weight: int
    sensor_types: frozenset[str]


@dataclass(frozen=True, slots=True)
class ShardRoute:
    """One shard a query scatters to, with its share weight."""

    shard_id: int
    overlap: float
    weight: float  # population x overlap — the share numerator


class ShardDirectory:
    """MBR + weight summaries of every shard, built at partition time."""

    def __init__(self, groups: Sequence[Sequence[Sensor]]) -> None:
        self._entries: list[ShardEntry] = []
        for shard_id, sensors in enumerate(groups):
            if not sensors:
                raise ValueError(f"shard {shard_id} is empty")
            self._entries.append(
                ShardEntry(
                    shard_id=shard_id,
                    mbr=Rect.from_points(s.location for s in sensors),
                    weight=len(sensors),
                    sensor_types=frozenset(s.sensor_type for s in sensors),
                )
            )

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[ShardEntry]:
        return list(self._entries)

    def entry(self, shard_id: int) -> ShardEntry:
        return self._entries[shard_id]

    def has_type(self, sensor_type: str) -> bool:
        return any(sensor_type in e.sensor_types for e in self._entries)

    def route(
        self, region: Region, sensor_type: str | None = None
    ) -> list[ShardRoute]:
        """The shards a query must scatter to, in shard-id order.

        A single-shard federation always routes to its one shard (there
        is no decision to make, and the pass-through must mirror the
        unsharded portal even on regions outside the fleet's MBR).
        Otherwise a shard is routed when its MBR intersects the region
        and (for typed queries) it hosts the type; the share weight is
        ``population * max(overlap_fraction, eps)``, mirroring
        :func:`repro.core.sampling._child_shares` one level up.
        """
        if len(self._entries) == 1:
            e = self._entries[0]
            if sensor_type is not None and sensor_type not in e.sensor_types:
                return []
            return [ShardRoute(e.shard_id, 1.0, float(e.weight))]
        routes: list[ShardRoute] = []
        for e in self._entries:
            if sensor_type is not None and sensor_type not in e.sensor_types:
                continue
            overlap = region_overlap_fraction(e.mbr, region)
            if overlap <= 0.0 and not region.intersects_rect(e.mbr):
                continue
            routes.append(
                ShardRoute(e.shard_id, overlap, e.weight * max(overlap, 1e-12))
            )
        return routes

    @staticmethod
    def split_target(target: int, routes: Sequence[ShardRoute]) -> dict[int, int]:
        """Split an integer sample target across routes proportionally
        to their weights (largest-remainder rounding; remainder ties go
        to the lower shard id so the split is deterministic).  The
        returned shares sum exactly to ``target``; shards may get 0.
        """
        if target < 0:
            raise ValueError("target must be non-negative")
        if not routes:
            return {}
        total = sum(r.weight for r in routes)
        if total <= 0:
            # Degenerate weights: give everything to the first shard.
            return {routes[0].shard_id: target} | {
                r.shard_id: 0 for r in routes[1:]
            }
        raw = [(r.shard_id, target * r.weight / total) for r in routes]
        shares = {sid: int(x) for sid, x in raw}
        remainder = target - sum(shares.values())
        by_frac = sorted(raw, key=lambda item: (-(item[1] - int(item[1])), item[0]))
        for sid, _ in by_frac[:remainder]:
            shares[sid] += 1
        return shares
