"""The shard directory: where each query decides who to ask.

One :class:`ShardEntry` per shard records the shard's MBR (over its
sensor locations), its population weight and the sensor types it hosts
— the same ``(bbox, weight)`` summary a COLR-Tree node keeps for its
subtree, kept one level above the trees.  Routing intersects the query
region with the MBRs; target splitting applies Algorithm 1's
overlap-weighted share rule (``w_i * Overlap(BB(i), A)``) across the
routed shards, with deterministic largest-remainder rounding so the
integer shares always sum to the requested target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.region import Region, region_overlap_fraction
from repro.geometry import Polygon, Rect
from repro.sensors.sensor import Sensor

__all__ = ["ShardDirectory", "ShardEntry", "ShardRoute"]


@dataclass(frozen=True, slots=True)
class ShardEntry:
    """Directory row for one shard."""

    shard_id: int
    mbr: Rect
    weight: int
    sensor_types: frozenset[str]


@dataclass(frozen=True, slots=True)
class ShardRoute:
    """One shard a query scatters to, with its share weight."""

    shard_id: int
    overlap: float
    weight: float  # population x overlap — the share numerator


class ShardDirectory:
    """MBR + weight summaries of every shard, built at partition time.

    ``refresh`` updates rows in place *transactionally*: the complete
    replacement row list is built and validated first, then installed
    with a single reference assignment, so a concurrent reader (a query
    routing mid-rebalance) always sees either the old directory or the
    new one — never a torn mix.  ``version`` counts committed refreshes.
    """

    def __init__(self, groups: Sequence[Sequence[Sensor]]) -> None:
        self.version = 0
        self._entries: list[ShardEntry] = [
            _make_entry(shard_id, sensors)
            for shard_id, sensors in enumerate(groups)
        ]

    def refresh(
        self,
        changes: Mapping[int, Sequence[Sensor]],
        drop: Sequence[int] = (),
    ) -> None:
        """Replace/append shard rows and drop trailing shard ids, atomically.

        ``changes`` maps shard id -> its new full sensor population; ids
        beyond the current count append new shards.  ``drop`` removes
        shards, but only from the tail — shard ids must stay dense
        because :meth:`entry` indexes ``_entries`` positionally (callers
        renumber via ``changes`` before dropping).  The new row list is
        fully built and validated before the one-reference-swap commit.
        """
        surviving = len(self._entries) - len(drop)
        if sorted(drop) != list(range(surviving, len(self._entries))):
            raise ValueError(
                f"drop must be the trailing shard ids, got {sorted(drop)!r}"
            )
        new_entries = list(self._entries[:surviving])
        for shard_id, sensors in sorted(changes.items()):
            entry = _make_entry(shard_id, sensors)
            if shard_id < len(new_entries):
                new_entries[shard_id] = entry
            elif shard_id == len(new_entries):
                new_entries.append(entry)
            else:
                raise ValueError(
                    f"shard {shard_id} would leave a gap (have {len(new_entries)})"
                )
        if not new_entries:
            raise ValueError("refresh would leave the directory empty")
        # Commit point: a single reference assignment, never a torn row.
        self._entries = new_entries
        self.version += 1

    def total_weight(self) -> int:
        """Sum of shard populations — conservation checks compare this
        against the registry size."""
        return sum(e.weight for e in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[ShardEntry]:
        return list(self._entries)

    def entry(self, shard_id: int) -> ShardEntry:
        return self._entries[shard_id]

    def has_type(self, sensor_type: str) -> bool:
        return any(sensor_type in e.sensor_types for e in self._entries)

    def route(
        self, region: Region, sensor_type: str | None = None
    ) -> list[ShardRoute]:
        """The shards a query must scatter to, in shard-id order.

        A single-shard federation always routes to its one shard (there
        is no decision to make, and the pass-through must mirror the
        unsharded portal even on regions outside the fleet's MBR).
        Otherwise a shard is routed when its MBR intersects the region
        and (for typed queries) it hosts the type; the share weight is
        ``population * max(overlap_fraction, eps)``, mirroring
        :func:`repro.core.sampling._child_shares` one level up.
        """
        if len(self._entries) == 1:
            e = self._entries[0]
            if sensor_type is not None and sensor_type not in e.sensor_types:
                return []
            return [ShardRoute(e.shard_id, 1.0, float(e.weight))]
        routes: list[ShardRoute] = []
        for e in self._entries:
            if sensor_type is not None and sensor_type not in e.sensor_types:
                continue
            # Exact intersection gate: a polygonal region whose *bounding
            # box* touches the shard MBR but whose interior never does
            # must get weight 0 (i.e. not be routed at all) instead of a
            # positive bbox-approximated share.
            if not region.intersects_rect(e.mbr):
                continue
            overlap = _shard_overlap(e.mbr, region)
            routes.append(
                ShardRoute(e.shard_id, overlap, e.weight * max(overlap, 1e-12))
            )
        return routes

    def residual_routes(
        self,
        routes: Sequence[ShardRoute],
        achieved: Mapping[int, int],
        exclude: set[int] | frozenset[int] = frozenset(),
    ) -> list[ShardRoute]:
        """Routes reweighted by *remaining pool* for a top-up round.

        Each shard's in-region pool is estimated exactly as the share
        rule estimates it — ``population x overlap`` — minus what the
        shard already delivered this query.  Shards in ``exclude``
        (exhausted / failed / timed out / cooled down) and shards with
        no whole sensor of residual capacity are dropped; the residual
        weight doubles as the integer top-up cap
        (:meth:`split_target_capped`).
        """
        residual: list[ShardRoute] = []
        for route in routes:
            if route.shard_id in exclude:
                continue
            entry = self._entries[route.shard_id]
            pool = int(math.floor(entry.weight * min(1.0, max(route.overlap, 0.0))))
            remaining = pool - int(achieved.get(route.shard_id, 0))
            if remaining < 1:
                continue
            residual.append(ShardRoute(route.shard_id, route.overlap, float(remaining)))
        return residual

    @staticmethod
    def split_target_capped(
        target: int, routes: Sequence[ShardRoute], caps: Mapping[int, int]
    ) -> dict[int, int]:
        """Largest-remainder split bounded by per-shard capacities.

        Allocates exactly ``min(target, total capacity)`` — integer
        conservation up to provable pool exhaustion — without ever
        exceeding a shard's cap.  Water-filling: split the remainder
        proportionally, clamp each share to the shard's headroom, drop
        saturated shards, repeat.  Every iteration either finishes the
        target or saturates at least one shard, so the loop terminates
        within ``len(routes)`` passes.
        """
        if target < 0:
            raise ValueError("target must be non-negative")
        shares = {r.shard_id: 0 for r in routes}
        live = [r for r in routes if caps.get(r.shard_id, 0) > 0]
        remaining = min(target, sum(caps[r.shard_id] for r in live))
        while remaining > 0 and live:
            split = ShardDirectory.split_target(remaining, live)
            for r in live:
                take = min(split[r.shard_id], caps[r.shard_id] - shares[r.shard_id])
                shares[r.shard_id] += take
                remaining -= take
            live = [r for r in live if caps[r.shard_id] > shares[r.shard_id]]
        return shares

    @staticmethod
    def split_target(target: int, routes: Sequence[ShardRoute]) -> dict[int, int]:
        """Split an integer sample target across routes proportionally
        to their weights (largest-remainder rounding; remainder ties go
        to the lower shard id so the split is deterministic).  The
        returned shares sum exactly to ``target``; shards may get 0.
        """
        if target < 0:
            raise ValueError("target must be non-negative")
        if not routes:
            return {}
        total = sum(r.weight for r in routes)
        if total <= 0:
            # Degenerate weights: give everything to the first shard.
            return {routes[0].shard_id: target} | {
                r.shard_id: 0 for r in routes[1:]
            }
        raw = [(r.shard_id, target * r.weight / total) for r in routes]
        shares = {sid: int(x) for sid, x in raw}
        remainder = target - sum(shares.values())
        by_frac = sorted(raw, key=lambda item: (-(item[1] - int(item[1])), item[0]))
        for sid, _ in by_frac[:remainder]:
            shares[sid] += 1
        return shares


def _make_entry(shard_id: int, sensors: Sequence[Sensor]) -> ShardEntry:
    if not sensors:
        raise ValueError(f"shard {shard_id} is empty")
    return ShardEntry(
        shard_id=shard_id,
        mbr=Rect.from_points(s.location for s in sensors),
        weight=len(sensors),
        sensor_types=frozenset(s.sensor_type for s in sensors),
    )


def _shard_overlap(mbr: Rect, region: Region) -> float:
    """``Overlap(BB(shard), A)`` with exact polygon geometry.

    Rectangular viewports keep the exact rectangle-overlap fraction.
    Polygonal regions are clipped against the shard MBR
    (Sutherland–Hodgman) so the share weight reflects the area the
    polygon *actually* covers inside the shard, not its bounding box —
    the in-tree sampler still uses the bbox approximation (changing it
    would perturb pinned RNG streams), but at the federation level the
    bbox weights demonstrably mis-split across shard geometries.
    """
    if isinstance(region, Polygon):
        if mbr.area <= 0.0:
            # Point-like shard: all-or-nothing, mirroring
            # Rect.overlap_fraction's degenerate-rectangle rule.
            return 1.0 if region.contains_point(mbr.center) else 0.0
        clipped = region.clip_to_rect(mbr)
        if clipped is None:
            return 0.0
        return min(1.0, clipped.area / mbr.area)
    return region_overlap_fraction(mbr, region)
