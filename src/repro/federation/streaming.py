"""Streaming (pipelined) gather results.

A synchronous gather waits for the slowest shard before the coordinator
can answer; a streaming gather merges per-shard answers *as they land*
in modeled time and can publish a partial-but-monotone answer at a
freshness deadline while stragglers (and redistribution top-ups) are
still in flight.

The landing time of a shard's answer is exactly the slot it occupies in
the synchronous gather makespan — its sub-answer's collection latency
plus any retry/timeout penalty the coordinator charged it — so the
*final* streamed result is bit-identical to the synchronous gather on a
healthy fleet (pinned by ``tests/frontdoor/test_parity.py``).  What
streaming changes is *when* answers become publishable:

* ``first`` is the answer publishable at ``deadline_seconds``: the
  merge of every shard that landed by then.  Healthy shards still in
  flight are listed in ``FederatedResult.deferred_shards`` (the answer
  is flagged partial), never dropped — the continuous-query manager
  applies ``first`` and the next tick's full answer supersedes it.
* ``final`` is the complete merge, with redistribution rounds
  *overlapped* with the tail of round-1 collection: top-up scatters
  launch once every answering shard has landed instead of waiting out a
  straggler's retry backoff, so a degraded fleet's final collection is
  ``max(round-1 makespan, topup launch + topup collection)`` rather
  than their sum.

Works identically on both federation backends — the streaming path uses
only the ``_scatter_calls`` / ``_shard_op`` hooks the process backend
overrides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.federated import FederatedResult
    from repro.portal.query import SensorQuery

__all__ = ["ShardArrival", "StreamingGather"]


@dataclass(frozen=True, slots=True)
class ShardArrival:
    """One shard's round-1 outcome in the streaming timeline.

    ``landed_at`` is modeled seconds after the scatter: for an answering
    shard, its collection latency plus retry penalties; for a failed or
    timed-out shard, the instant its failure became known (backoff
    exhausted / timeout fired).
    """

    shard_id: int
    landed_at: float
    status: str  # "ok" | "failed" | "timed_out"


@dataclass
class StreamingGather:
    """What one streamed scatter-gather produced.

    ``arrivals`` is the full round-1 timeline in landing order;
    ``first`` the answer published at the deadline (== ``final`` when
    everything landed in time, or when no deadline was given); ``final``
    the complete merge.  ``first``'s readings are always a subset of
    ``final``'s — late answers only ever add.
    """

    query: "SensorQuery"
    deadline_seconds: float | None
    arrivals: tuple[ShardArrival, ...]
    first: "FederatedResult"
    final: "FederatedResult"

    @property
    def time_to_first_seconds(self) -> float:
        """Modeled seconds until ``first`` was publishable."""
        return self.first.collection_seconds

    @property
    def time_to_final_seconds(self) -> float:
        """Modeled seconds until the complete answer was assembled."""
        return self.final.collection_seconds

    @property
    def deferred_shards(self) -> tuple[int, ...]:
        """Healthy shards whose answers missed the deadline."""
        return self.first.deferred_shards
