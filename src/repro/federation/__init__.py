"""The sharded portal federation (scatter-gather over partitioned COLR-Trees).

A production SensorMap cannot serve millions of users from one portal
process: the sensor population is partitioned across *shards*, each
running its own ``SensorMapPortal`` (index + ``SensorNetwork`` +
``ProbeDispatcher``), and a ``FederatedPortal`` coordinator fronts them:

* a pluggable :mod:`partitioner <repro.federation.partitioner>` (spatial
  grid or k-means) assigns every sensor to a shard;
* a :class:`~repro.federation.directory.ShardDirectory` of shard MBRs
  routes each query's region to the overlapping shards only;
* sampled queries split their target size across routed shards by
  overlap-weighted shard weights — Algorithm 1's share rule applied one
  level above the trees;
* partial ``AggregateSketch``es / sampled readings gather back into one
  merged answer with freshness bounds intact; and
* a shard that is down or too slow degrades the answer (partial flag +
  per-shard retry budget with transport-style backoff) instead of
  failing the query.

With one shard the coordinator is a bit-identical pass-through around
``SensorMapPortal`` — pinned by ``tests/federation`` and re-asserted by
``repro.bench.federation`` before any timing.
"""

from repro.federation.config import FederationConfig
from repro.federation.directory import ShardDirectory, ShardEntry, ShardRoute
from repro.federation.federated import (
    FederatedBatchResult,
    FederatedPortal,
    FederatedResult,
    FederationStats,
    ShardArrival,
    ShardDownError,
    StreamingGather,
)
from repro.federation.partitioner import (
    GridPartitioner,
    KMeansPartitioner,
    Partitioner,
    make_partitioner,
)

__all__ = [
    "FederatedBatchResult",
    "FederatedPortal",
    "FederatedResult",
    "FederationConfig",
    "FederationStats",
    "GridPartitioner",
    "KMeansPartitioner",
    "Partitioner",
    "ShardArrival",
    "ShardDirectory",
    "ShardDownError",
    "ShardEntry",
    "ShardRoute",
    "StreamingGather",
    "make_partitioner",
]
