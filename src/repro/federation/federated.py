"""The scatter-gather coordinator over partitioned portal shards.

``FederatedPortal`` mirrors the ``SensorMapPortal`` surface (register /
rebuild / execute / execute_batch / execute_sql / explain / stats) but
owns N shards, each a full portal — its own COLR-Trees, its own
``SensorNetwork``, its own ``ProbeDispatcher`` pool when transport is
enabled.  One simulated clock is shared so freshness bounds mean the
same thing everywhere.

Query flow:

1. **Route** — the :class:`~repro.federation.directory.ShardDirectory`
   intersects the query region with the shard MBRs (typed queries also
   require the shard to host the type).
2. **Scatter** — exact queries broadcast unchanged to every routed
   shard; sampled queries split the target across routed shards by
   overlap-weighted shard weights (Algorithm 1's share rule one level
   above the trees), shares summing exactly to the target.  Shards
   whose share rounds to zero are skipped.
3. **Gather** — per-shard answers merge in shard-id order: readings and
   sketches concatenate (each shard already enforced the freshness
   bound), processing sums, collection is the *makespan* across shards
   (they collect concurrently).
4. **Degrade** — a shard that raises :class:`ShardDownError` is retried
   up to ``FederationConfig.shard_retry_budget`` times with
   transport-style exponential backoff charged to its gather slot; a
   shard whose sub-answer blew ``shard_timeout_seconds`` is dropped and
   charged the timeout.  Either way the merged answer carries the
   failed/timed-out shard ids and a ``partial`` flag instead of an
   exception, and a repeatedly failing shard can be put in cooldown.

With one shard every query path is a bit-identical pass-through around
the wrapped ``SensorMapPortal`` (same network RNG stream, same plan
cache, same stats) — pinned by ``tests/federation/test_parity.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.aggregates import AggregateSketch
from repro.core.config import COLRTreeConfig
from repro.core.stats import ProcessingCostModel
from repro.federation.config import FederationConfig
from repro.federation.directory import ShardDirectory, ShardRoute
from repro.federation.partitioner import GridPartitioner, Partitioner
from repro.federation.streaming import ShardArrival, StreamingGather
from repro.geometry import GeoPoint, Polygon, Rect
from repro.portal.batch import BatchStats
from repro.portal.parser import parse_query
from repro.portal.portal import PortalResult, SensorMapPortal
from repro.portal.query import SensorQuery
from repro.sensors.clock import SimClock
from repro.sensors.registry import SensorRegistry
from repro.sensors.sensor import Sensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.portal.batch import BatchResult
    from repro.storage.config import StorageConfig
    from repro.transport.config import TransportConfig

__all__ = [
    "FederatedBatchResult",
    "FederatedPortal",
    "FederatedResult",
    "FederationStats",
    "ShardArrival",
    "ShardDownError",
    "StreamingGather",
]


class ShardDownError(RuntimeError):
    """A shard did not answer (killed, crashed, unreachable)."""


def _result_sensor_ids(result: PortalResult) -> set[int]:
    """The distinct sensors a shard answer carries readings for (cached
    aggregate sketches are anonymous and cannot be deduplicated, but
    the sampled answers redistribution deals in carry raw readings)."""
    ids: set[int] = set()
    for answer in result.answers:
        for reading in answer.probed_readings:
            ids.add(reading.sensor_id)
        for reading in answer.cached_readings:
            ids.add(reading.sensor_id)
    return ids


def _capped_new_ids(result: PortalResult, seen: set[int], cap: int) -> set[int]:
    """Distinct unseen sensor ids in a top-up answer, in answer order,
    truncated so their readings do not exceed ``cap``.

    The cap is what keeps a top-up round *bounded*: a shard whose slot
    caches are cold (caching disabled, or evicted between rounds)
    answers the incremental request with a fresh independent sample, so
    the raw unseen portion can dwarf the share the coordinator actually
    asked it to contribute.  Only the first ``cap`` readings' worth of
    new sensors count; the rest are stripped with the repeats."""
    kept: set[int] = set()
    readings = 0
    for answer in result.answers:
        for reading in list(answer.probed_readings) + list(answer.cached_readings):
            sensor_id = reading.sensor_id
            if sensor_id in seen or sensor_id in kept:
                continue
            if readings >= cap:
                return kept
            kept.add(sensor_id)
            readings += 1
    return kept


def _dedup_topup_result(result: PortalResult, new_ids: set[int]) -> None:
    """Strip a top-up answer down to the sensors the federation had not
    delivered yet.

    A top-up sub-query re-targets a shard whose slot caches the first
    round just warmed, so much of its answer is a cache-served repeat of
    round 1 (that is the communication-efficient part: the repeat costs
    no probes).  The merged federated answer must not report a sensor
    twice, so the repeat portion is dropped here — readings filtered in
    place, display groups rebuilt from the surviving readings (groups
    carrying only anonymous aggregates are kept as-is; sampled answers
    do not produce them)."""
    for answer in result.answers:
        answer.probed_readings = [
            r for r in answer.probed_readings if r.sensor_id in new_ids
        ]
        answer.cached_readings = [
            r for r in answer.cached_readings if r.sensor_id in new_ids
        ]
    groups = []
    for group in result.groups:
        if not group.readings:
            if group.sketch.count:
                groups.append(group)
            continue
        kept = [r for r in group.readings if r.sensor_id in new_ids]
        if not kept:
            continue
        sketch = AggregateSketch()
        for r in kept:
            sketch.add(r.value, r.timestamp)
        group.readings = kept
        group.sketch = sketch
        groups.append(group)
    result.groups = groups


@dataclass
class FederationStats:
    """Cumulative coordinator accounting (shard-local work is metered by
    each shard's own portal/network/transport stats)."""

    queries: int = 0
    batch_ticks: int = 0
    subqueries_scattered: int = 0
    exact_broadcasts: int = 0
    sampled_splits: int = 0
    shards_routed: int = 0
    zero_share_skips: int = 0
    shard_attempts: int = 0
    shard_retries: int = 0
    shard_failures: int = 0
    shard_timeouts: int = 0
    shard_cooldown_skips: int = 0
    partial_answers: int = 0
    # Cross-shard REDISTRIBUTE accounting: queries whose first gather
    # came up short and triggered a top-up scatter, the rounds actually
    # run, the top-up sub-queries issued, the sensors the rounds
    # recovered, and the shortfall still standing after the final round
    # (> 0 only on provable pool exhaustion or failed top-ups).
    redistributions: int = 0
    redistribution_rounds_run: int = 0
    topup_subqueries: int = 0
    topup_sensors_gained: int = 0
    sampled_shortfall: int = 0
    # Streaming-gather accounting: queries answered through the
    # incremental path, and shard answers that missed a publish
    # deadline (they still reach the final merge — late, not lost).
    streaming_queries: int = 0
    deferred_shard_answers: int = 0
    # Durable-storage accounting: shards rebuilt from their data
    # directories (revive after a kill, or a rebuild over a warm
    # directory) and the total modeled replay seconds those recoveries
    # cost.  Each recovery's seconds are also charged to the revived
    # shard's next gather via ``_ShardState.pending_recovery_seconds``.
    shard_recoveries: int = 0
    recovery_seconds_total: float = 0.0


@dataclass
class FederatedResult(PortalResult):
    """A gathered answer: the ``PortalResult`` surface (so grouping,
    aggregation and the continuous-query manager work unchanged) plus
    the federation's provenance and degradation record."""

    shard_results: dict[int, PortalResult] = field(default_factory=dict)
    failed_shards: tuple[int, ...] = ()
    timed_out_shards: tuple[int, ...] = ()
    # Healthy shards whose answers had not landed when this result was
    # published (streaming gathers only; the synchronous path never
    # defers).  A deferred shard's answer arrives in the *final* merge
    # of the same ``StreamingGather`` — it is late, not lost.
    deferred_shards: tuple[int, ...] = ()
    shard_retries: int = 0
    # Cross-shard REDISTRIBUTE provenance.  ``topup_results`` lists the
    # round-2+ per-shard answers in collection order (a shard can appear
    # both here and in ``shard_results`` — its first-round answer and
    # its top-up are distinct collections); a shard in ``failed_shards``
    # that *also* has a ``shard_results`` entry failed during a top-up
    # round, keeping its first-round readings.
    topup_results: tuple[tuple[int, PortalResult], ...] = ()
    redistribution_rounds_run: int = 0
    topup_sensors_gained: int = 0
    sampled_shortfall: int = 0
    pool_exhausted_shards: tuple[int, ...] = ()

    @property
    def partial(self) -> bool:
        """True when at least one routed shard's answer (first-round,
        top-up, or still in flight past a streaming deadline) is
        missing."""
        return bool(
            self.failed_shards or self.timed_out_shards or self.deferred_shards
        )


@dataclass
class FederatedBatchResult:
    """Per-query gathered results plus merged batch accounting.

    ``stats`` sums the shard-level counters (collection is the makespan
    across shards, matching the scatter's concurrency); ``shard_stats``
    keeps each shard's own view; ``shard_seconds`` is the modeled
    end-to-end seconds each shard spent on its sub-batch (processing +
    collection + streamed-maintenance charge + retry penalties) — the
    federation bench's throughput denominator is its max.
    """

    results: list[FederatedResult] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)
    shard_stats: dict[int, BatchStats] = field(default_factory=dict)
    shard_seconds: dict[int, float] = field(default_factory=dict)
    failed_shards: tuple[int, ...] = ()
    timed_out_shards: tuple[int, ...] = ()
    redistribution_rounds_run: int = 0
    topup_sensors_gained: int = 0

    @property
    def partial(self) -> bool:
        return bool(self.failed_shards or self.timed_out_shards)


@dataclass
class _ShardState:
    """Coordinator-side health record of one shard."""

    killed: bool = False
    consecutive_failures: int = 0
    down_until: float = 0.0
    # Modeled seconds the shard's last crash recovery took; consumed by
    # the next ``_call_shard`` as a one-time delay so the revival cost
    # lands on the gather clock instead of vanishing.
    pending_recovery_seconds: float = 0.0


@dataclass
class _TopupOutcome:
    """What the cross-shard REDISTRIBUTE rounds produced for one query."""

    extra: list[tuple[int, PortalResult]] = field(default_factory=list)
    collection_seconds: float = 0.0
    rounds_run: int = 0
    sensors_gained: int = 0
    shortfall: int = 0
    failed: list[int] = field(default_factory=list)
    timed_out: list[int] = field(default_factory=list)
    pool_exhausted: tuple[int, ...] = ()


class FederatedPortal:
    """N portal shards behind one scatter-gather front end.

    Two execution backends share this coordinator logic, selected by
    ``FederationConfig.execution``: ``"inprocess"`` (this class — every
    shard is a ``SensorMapPortal`` in the coordinator's process) and
    ``"process"`` (``repro.parallel.ParallelFederatedPortal`` — each
    shard lives in its own worker process over shared-memory kernels).
    All shard interaction funnels through two hooks the process backend
    overrides: :meth:`_shard_op` (one named call on one shard) and
    :meth:`_scatter_calls` (a batch of calls under the retry budget,
    sequential here, pipelined across workers there).
    """

    def __new__(cls, *args, **kwargs):
        federation = kwargs.get("federation")
        if (
            cls is FederatedPortal
            and federation is not None
            and getattr(federation, "execution", "inprocess") == "process"
        ):
            from repro.parallel.portal import ParallelFederatedPortal

            return super().__new__(ParallelFederatedPortal)
        return super().__new__(cls)

    def __init__(
        self,
        n_shards: int = 1,
        partitioner: Partitioner | None = None,
        config: COLRTreeConfig | None = None,
        cost_model: ProcessingCostModel | None = None,
        value_fn=None,
        network_seed: int = 0,
        clock: SimClock | None = None,
        max_sensors_per_query: int | None = 1000,
        transport: "TransportConfig | None" = None,
        network_options: dict[str, object] | None = None,
        federation: FederationConfig | None = None,
        storage: "StorageConfig | None" = None,
    ) -> None:
        """Constructor arguments mirror ``SensorMapPortal`` (every shard
        is built with them); ``partitioner`` defaults to a spatial
        ``GridPartitioner(n_shards)``, and shard ``i``'s network draws
        from ``network_seed + i`` so shard 0 of a single-shard
        federation is seed-identical to the unsharded portal.

        ``storage`` roots a per-shard durable data directory under
        ``storage.data_dir/shard-<i>``: each shard journals its own
        registrations and slot-cache batches, ``kill_shard`` abandons
        the shard's WAL mid-flight, and ``revive_shard`` performs real
        recovery from disk — its modeled replay time is charged to the
        shard's next gather.  A re-partition that changes a shard's
        sensor set wipes that shard's stale directory first."""
        self.partitioner = (
            partitioner if partitioner is not None else GridPartitioner(n_shards)
        )
        self.config = config if config is not None else COLRTreeConfig()
        self.cost_model = cost_model if cost_model is not None else ProcessingCostModel()
        self.max_sensors_per_query = max_sensors_per_query
        self.transport_config = transport
        self.federation = federation if federation is not None else FederationConfig()
        self.clock = clock if clock is not None else SimClock()
        self.registry = SensorRegistry()
        self.stats = FederationStats()
        self._value_fn = value_fn
        self._network_seed = network_seed
        self._network_options = dict(network_options) if network_options else {}
        self.storage_config = storage
        # Whether this backend builds shard portals that own their
        # storage engines in *this* process.  The process backend flips
        # this off: there the workers open the engines (one writer per
        # WAL), and the coordinator's snapshot shards stay in-memory.
        self._shard_storage_local = True
        self._shards: list[SensorMapPortal] = []
        self._groups: list[list[Sensor]] = []
        self._directory: ShardDirectory | None = None
        self._states: dict[int, _ShardState] = {}
        self._index_dirty = True
        # Monotone build counter, mirroring SensorMapPortal's: a
        # rebuild re-partitions the fleet and rebuilds every shard, so
        # result caches above the coordinator key their validity on it.
        self.index_generation = 0
        # Rebalance subscribers: callables invoked with the moved
        # sensors after each committed membership change.  The front
        # door registers here for cell-precise invalidation — a
        # rebalance deliberately does NOT bump ``index_generation``
        # (that would strand every cached tile, the cold storm this
        # subsystem exists to avoid).
        self.rebalance_listeners: list = []

    # ------------------------------------------------------------------
    # Publisher side
    # ------------------------------------------------------------------
    def register_sensor(
        self,
        location: GeoPoint,
        expiry_seconds: float,
        sensor_type: str = "generic",
        availability: float = 1.0,
        metadata: dict[str, str] | None = None,
    ) -> Sensor:
        sensor = self.registry.register(
            location,
            expiry_seconds,
            sensor_type=sensor_type,
            availability=availability,
            metadata=metadata,
        )
        self._index_dirty = True
        return sensor

    def register_all(self, sensors: list[Sensor]) -> None:
        self.registry.register_all(sensors)
        self._index_dirty = True

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def rebuild_index(self) -> None:
        """Partition the fleet and (re)build one portal per shard.

        Kill switches and health state survive a rebuild per shard id
        (the operator killed "shard 3", not a particular index build);
        an id that disappears (fewer shards) drops its state.
        """
        if len(self.registry) == 0:
            raise ValueError("no sensors registered")
        sensors = self.registry.all()
        assignment = self.partitioner.assign(sensors)
        if len(assignment) != len(sensors):
            raise ValueError("partitioner returned a misaligned assignment")
        n = self.partitioner.n_shards
        groups: list[list[Sensor]] = [[] for _ in range(n)]
        for sensor, shard_id in zip(sensors, assignment):
            if not 0 <= shard_id < n:
                raise ValueError(f"partitioner assigned shard {shard_id} of {n}")
            groups[shard_id].append(sensor)
        # Compact away empty shards (a k-means run on a tiny fleet can
        # starve a cluster) so every built shard has an index.
        groups = [g for g in groups if g]
        for shard in self._shards:
            shard.close()
        if self.storage_config is not None:
            self._wipe_stale_shard_dirs(groups)
        self._directory = ShardDirectory(groups)
        self._groups = groups
        self._shards = []
        self._states = {
            shard_id: self._states.get(shard_id, _ShardState())
            for shard_id in range(len(groups))
        }
        for shard_id, group in enumerate(groups):
            self._shards.append(self._build_shard(shard_id, group))
        self._index_dirty = False
        self.index_generation += 1

    def _shard_storage(self, shard_id: int) -> "StorageConfig | None":
        """The storage config one shard portal should own, or ``None``
        (no storage configured, or the backend keeps engines in worker
        processes)."""
        if self.storage_config is None or not self._shard_storage_local:
            return None
        return self.storage_config.for_shard(shard_id)

    def _wipe_stale_shard_dirs(self, groups: list[list[Sensor]]) -> None:
        """Wipe any shard directory whose durable sensor set no longer
        matches the (re-)partition — a stale cache under a different
        fleet must not survive into recovery."""
        from repro.storage.engine import stored_sensor_ids, wipe_data_dir

        for shard_id, group in enumerate(groups):
            shard_cfg = self.storage_config.for_shard(shard_id)
            stored = stored_sensor_ids(shard_cfg)
            if stored and stored != {s.sensor_id for s in group}:
                wipe_data_dir(shard_cfg.path)
        # Directories beyond the current shard count are stale too.
        shard_id = len(groups)
        while True:
            shard_cfg = self.storage_config.for_shard(shard_id)
            if not shard_cfg.path.exists():
                break
            wipe_data_dir(shard_cfg.path)
            shard_id += 1

    def _build_shard(self, shard_id: int, group: list[Sensor]) -> SensorMapPortal:
        """Construct (or, over a warm data directory, *recover*) one
        shard portal.  Recovery seconds are charged to the shard's next
        gather via its ``pending_recovery_seconds``."""
        shard = SensorMapPortal(
            config=self.config,
            cost_model=self.cost_model,
            value_fn=self._value_fn,
            network_seed=self._network_seed + shard_id,
            clock=self.clock,
            max_sensors_per_query=self.max_sensors_per_query,
            transport=self.transport_config,
            network_options=dict(self._network_options),
            storage=self._shard_storage(shard_id),
        )
        shard.register_all(group)
        shard.rebuild_index()
        seconds = shard.recovery_seconds
        if seconds > 0.0:
            state = self._states.setdefault(shard_id, _ShardState())
            state.pending_recovery_seconds += seconds
            self.stats.shard_recoveries += 1
            self.stats.recovery_seconds_total += seconds
        return shard

    def _ensure_index(self) -> None:
        if self._index_dirty or not self._shards:
            self.rebuild_index()

    @property
    def n_shards(self) -> int:
        self._ensure_index()
        return len(self._shards)

    @property
    def directory(self) -> ShardDirectory:
        self._ensure_index()
        assert self._directory is not None
        return self._directory

    def shard(self, shard_id: int) -> SensorMapPortal:
        self._ensure_index()
        return self._shards[shard_id]

    def shards(self) -> list[SensorMapPortal]:
        self._ensure_index()
        return list(self._shards)

    def shard_members(self, shard_id: int) -> list[Sensor]:
        """The sensors one shard currently owns (copy)."""
        self._ensure_index()
        return list(self._groups[shard_id])

    def sensor_types(self) -> list[str]:
        self._ensure_index()
        types: set[str] = set()
        for shard in self._shards:
            types.update(shard.sensor_types())
        return sorted(types)

    @property
    def transport_enabled(self) -> bool:
        return self.transport_config is not None and self.transport_config.enabled

    # ------------------------------------------------------------------
    # Shard health
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int) -> None:
        """Simulate a shard outage: scatters to it raise until revived.

        With storage attached the outage is a real crash — the shard's
        WAL handle is abandoned mid-flight (no final fsync, no
        checkpoint), so revival must replay the log."""
        self._ensure_index()
        self._states[shard_id].killed = True
        if self._shard_storage(shard_id) is not None:
            self._shards[shard_id].crash()

    def revive_shard(self, shard_id: int) -> float:
        """Bring a killed shard back; returns the modeled recovery
        seconds (0.0 for in-memory shards, which revive instantly with
        their caches intact).  With storage attached the shard portal is
        rebuilt from its data directory — checkpoint pages and WAL
        records replay, caches re-install — and the recovery time is
        charged to the shard's next gather."""
        self._ensure_index()
        state = self._states[shard_id]
        state.killed = False
        state.consecutive_failures = 0
        state.down_until = 0.0
        if self._shard_storage(shard_id) is None:
            return 0.0
        before = state.pending_recovery_seconds
        self._shards[shard_id] = self._build_shard(
            shard_id, self._groups[shard_id]
        )
        return self._states[shard_id].pending_recovery_seconds - before

    # ------------------------------------------------------------------
    # Live rebalancing (membership changes without a full rebuild)
    # ------------------------------------------------------------------
    def notify_rebalance(self, moved: Sequence[Sensor]) -> None:
        """Tell subscribers which sensors changed owner (commit time)."""
        for listener in list(self.rebalance_listeners):
            listener(moved)

    def rebalance_capture(
        self, shard_id: int, sensor_ids: Sequence[int] | None = None
    ) -> list:
        """Export a shard's warm slot-cache entries for migration.

        Raises :class:`ShardDownError` when the shard is killed — the
        migration step then aborts cleanly before mutating anything."""
        self._ensure_index()
        if self._states[shard_id].killed:
            raise ShardDownError(f"shard {shard_id} is down")
        ids = list(sensor_ids) if sensor_ids is not None else None
        return list(self._shard_op(shard_id, "export_cache", ids))

    def _stage_shard(
        self,
        shard_id: int,
        group: list[Sensor],
        primed: Sequence[tuple] = (),
    ):
        """Build (but do not install) a shard portal for its new
        membership, priming it with migrated cache entries.

        In-memory shards stage fully off to the side: the old portal
        keeps serving until :meth:`_commit_membership` swaps references.
        Durable shards must close the old engine first (one WAL writer
        per directory) and wipe the stale on-disk sensor set, then
        checkpoint the primed state so a crash after commit recovers the
        *new* membership warm."""
        durable = self._shard_storage(shard_id) is not None
        if durable:
            from repro.storage.engine import wipe_data_dir

            if shard_id < len(self._shards):
                self._shards[shard_id].close()
            wipe_data_dir(self.storage_config.for_shard(shard_id).path)
        staged = self._build_shard(shard_id, group)
        if primed:
            staged.install_cache_entries(list(primed))
            if durable:
                staged.checkpoint()
        elif durable:
            staged.checkpoint()
        return staged

    def rebalance_apply(
        self,
        changes: Mapping[int, list[Sensor]],
        primed: Mapping[int, Sequence[tuple]] | None = None,
        drop: Sequence[int] = (),
        on_staged=None,
    ) -> None:
        """Apply one membership change: stage every affected shard, then
        commit with a single directory flip.

        ``changes`` maps shard id -> its complete new population (ids at
        the current count append shards); ``primed`` carries migrated
        cache entries per target shard; ``drop`` removes trailing shard
        ids.  Staging happens entirely before the commit — a query
        racing the step routes via the old directory to the old portals
        (all still installed) or, after the flip, via the new directory
        to the new portals.  Either owner answers; never both, never
        neither.  ``on_staged`` (tests, fault injection) runs between
        the phases.  No ``index_generation`` bump: caches above stay
        valid except where :meth:`notify_rebalance` invalidates."""
        self._ensure_index()
        staged = {
            shard_id: self._stage_shard(
                shard_id, group, (primed or {}).get(shard_id, ())
            )
            for shard_id, group in sorted(changes.items())
        }
        if on_staged is not None:
            on_staged()
        self._commit_membership(staged, changes, drop)

    def _commit_membership(
        self,
        staged: Mapping[int, "SensorMapPortal"],
        changes: Mapping[int, list[Sensor]],
        drop: Sequence[int] = (),
    ) -> None:
        """Phase two: install staged shards and flip the directory."""
        assert self._directory is not None
        surviving = len(self._shards) - len(drop)
        for shard_id in sorted(drop, reverse=True):
            old = self._shards.pop(shard_id)
            self._groups.pop(shard_id)
            self._states.pop(shard_id, None)
            old.close()
            if self.storage_config is not None and self._shard_storage_local:
                from repro.storage.engine import wipe_data_dir

                wipe_data_dir(self.storage_config.for_shard(shard_id).path)
        assert len(self._shards) == surviving
        for shard_id in sorted(staged):
            if shard_id < len(self._shards):
                old = self._shards[shard_id]
                if old is not staged[shard_id]:
                    old.close()
                self._shards[shard_id] = staged[shard_id]
                self._groups[shard_id] = list(changes[shard_id])
            elif shard_id == len(self._shards):
                self._shards.append(staged[shard_id])
                self._groups.append(list(changes[shard_id]))
            else:
                raise ValueError(f"staged shard {shard_id} would leave a gap")
            self._states.setdefault(shard_id, _ShardState())
        # The commit point for routing: one atomic row-list swap.
        self._directory.refresh(changes, drop=drop)

    def _shard_op(self, shard_id: int, op: str, *args: object) -> object:
        """Run one named portal operation on one shard.

        The in-process backend calls the wrapped ``SensorMapPortal``
        directly; the process backend ships ``(op, args)`` over the
        worker's message pipe instead.  Raise :class:`ShardDownError`
        to signal an unreachable shard.
        """
        return getattr(self._shards[shard_id], op)(*args)

    def _call_shard(
        self,
        shard_id: int,
        op: str,
        args: tuple,
        penalties: dict[int, float],
    ) -> object | None:
        """Run one shard call under the retry budget.

        Returns the shard's result, or ``None`` after the budget is
        exhausted (the shard is then marked failed and, when configured,
        enters coordinator cooldown).  Backoff delays accumulate into
        the shard's ``penalties`` slot of the gather makespan.
        """
        cfg = self.federation
        state = self._states[shard_id]
        now = self.clock.now()
        if state.down_until > now:
            self.stats.shard_cooldown_skips += 1
            return None
        # A freshly revived shard pays its crash-recovery replay time on
        # its first gather (consumed exactly once).
        delay = state.pending_recovery_seconds
        state.pending_recovery_seconds = 0.0
        for attempt in range(cfg.shard_retry_budget + 1):
            self.stats.shard_attempts += 1
            try:
                if state.killed:
                    raise ShardDownError(f"shard {shard_id} is down")
                result = self._shard_op(shard_id, op, *args)
            except ShardDownError:
                if attempt < cfg.shard_retry_budget:
                    self.stats.shard_retries += 1
                    delay += (
                        cfg.retry_backoff_base
                        * cfg.retry_backoff_multiplier**attempt
                    )
                    penalties[shard_id] = delay
                continue
            state.consecutive_failures = 0
            penalties.setdefault(shard_id, 0.0)
            penalties[shard_id] = delay
            return result
        state.consecutive_failures += 1
        if cfg.cooldown_seconds > 0:
            state.down_until = now + cfg.cooldown_seconds
        self.stats.shard_failures += 1
        penalties[shard_id] = delay
        return None

    def _scatter_calls(
        self,
        calls: Sequence[tuple[int, str, tuple]],
        penalties: dict[int, float],
    ) -> dict[int, object | None]:
        """Run one scatter round of ``(shard_id, op, args)`` calls under
        the retry budget, returning each shard's result (``None`` after
        budget exhaustion / cooldown skip) keyed by shard id.

        The in-process backend runs the calls sequentially — modeled
        concurrency is already captured by the gather-makespan
        arithmetic.  The process backend overrides this with a
        send-all-then-receive-all pipeline so the shards genuinely
        overlap on the wall clock, with identical accounting.
        """
        return {
            shard_id: self._call_shard(shard_id, op, args, penalties)
            for shard_id, op, args in calls
        }

    # ------------------------------------------------------------------
    # Scatter planning
    # ------------------------------------------------------------------
    def _route(self, query: SensorQuery) -> list[ShardRoute]:
        assert self._directory is not None
        if query.sensor_type is not None and not self._directory.has_type(
            query.sensor_type
        ):
            raise KeyError(f"no sensors of type {query.sensor_type!r} registered")
        return self._directory.route(query.region, query.sensor_type)

    def _federated_target(self, query: SensorQuery) -> int | None:
        """The sample target the federation must split, or ``None`` for
        an exact broadcast.

        Reproduces ``SensorMapPortal._effective_sample_size``'s cap
        semantics one level up: on a capped federation a missing (or
        zero) SAMPLESIZE demotes to sampling at the cap and explicit
        targets clamp to it, so the scattered shares can never exceed
        the portal-wide collection cap; on an uncapped federation a
        missing SAMPLESIZE stays exact everywhere.
        """
        cap = self.max_sensors_per_query
        requested = query.sample_size
        if requested is None or requested == 0:
            return None if cap is None else cap
        return requested if cap is None else min(requested, cap)

    def _scatter_plan(
        self, query: SensorQuery, routes: Sequence[ShardRoute]
    ) -> list[tuple[int, SensorQuery]]:
        """The (shard id, sub-query) pairs one query scatters to, in
        shard-id order."""
        if not routes:
            return []
        target = self._federated_target(query)
        self.stats.shards_routed += len(routes)
        if target is None:
            self.stats.exact_broadcasts += 1
            return [
                (r.shard_id, self._clip_subquery(query, r.shard_id, len(routes)))
                for r in routes
            ]
        self.stats.sampled_splits += 1
        shares = ShardDirectory.split_target(target, routes)
        plan: list[tuple[int, SensorQuery]] = []
        for route in routes:
            share = shares[route.shard_id]
            if share == 0:
                self.stats.zero_share_skips += 1
                continue
            plan.append((route.shard_id, replace(query, sample_size=share)))
        return plan

    def _clip_subquery(
        self, query: SensorQuery, shard_id: int, n_routed: int
    ) -> SensorQuery:
        """The exact sub-query one routed shard receives.

        A genuine polygon scattered to several shards is clipped
        (Sutherland–Hodgman) to each shard's MBR, so a shard traverses
        only the polygon piece that can hold its sensors — the routed
        sub-query is the exact clipped polygon, never the polygon's MBR.
        Answer-preserving: every sensor of the shard lies inside its
        MBR, so polygon ∩ MBR keeps exactly the shard's in-polygon
        sensors (clipping is boundary-inclusive, like ``contains_point``).
        Single-shard scatters and rectangles (including polygons that
        *are* axis-aligned rectangles) pass through untouched, keeping
        the 1-shard federation bit-identical to the unsharded portal.
        """
        region = query.region
        if (
            n_routed <= 1
            or not isinstance(region, Polygon)
            or region.as_rect() is not None
        ):
            return query
        assert self._directory is not None
        clipped = region.clip_to_rect(self._directory.entry(shard_id).mbr)
        if clipped is None:
            # Measure-zero overlap (edge/corner touch): keep the full
            # polygon — the shard's own leaf filter stays exact.
            return query
        return replace(query, region=clipped)

    # ------------------------------------------------------------------
    # Cross-shard REDISTRIBUTE (Algorithm 2 one level up)
    # ------------------------------------------------------------------
    def _readings_per_unit(self, query: SensorQuery, shard_id: int) -> int:
        """How many readings one unit of SAMPLESIZE asks a shard for.

        Shard portals sample per type tree, so an untyped query fans
        each unit out to every type the shard holds; a typed query runs
        on exactly one tree."""
        if query.sensor_type is not None:
            return 1
        assert self._directory is not None
        return max(1, len(self._directory.entry(shard_id).sensor_types))

    def _target_readings(self, query: SensorQuery, target: int | None) -> int | None:
        """The federated target in *readings*: what the unsharded portal
        would aim to collect for the same query (``target`` per type
        tree, Section III-B), which is the unit ``result_weight`` counts
        in and therefore the unit shortfalls are measured in."""
        if target is None:
            return None
        if query.sensor_type is not None:
            return target
        assert self._directory is not None
        types: set[str] = set()
        for e in self._directory.entries():
            types |= e.sensor_types
        return target * max(1, len(types))

    def _redistribute(
        self,
        query: SensorQuery,
        target: int | None,
        routes: Sequence[ShardRoute],
        shard_results: dict[int, PortalResult],
        unavailable: set[int],
    ) -> _TopupOutcome:
        """Top up a sampled scatter whose first gather came up short.

        Per round: compare the aggregate achieved count to ``target``,
        re-split the shortfall over shards with *remaining pool*
        (overlap-weighted residual capacity, integer-conserving up to
        provable pool exhaustion, never exceeding a shard's residual),
        and collect the top-up sub-queries.  A shard is excluded once it
        signals pool exhaustion or a top-up round gains less than its
        share (it has nothing left to give — its own Algorithm 2 already
        spread the request over its whole in-region pool), and when it
        failed, timed out, was killed or sits in coordinator cooldown.
        Each
        round's collection is charged as one more slot of the gather
        makespan; per-sensor dedup across rounds is the shard
        dispatcher's in-flight/recently-probed tables' job.

        Single-routed-shard scatters skip redistribution entirely, which
        keeps the 1-shard federation bit-identical to the unsharded
        portal (no extra shard calls, no extra RNG draws).
        """
        outcome = _TopupOutcome()
        cfg = self.federation
        if (
            target is None
            or not cfg.redistribution_enabled
            or cfg.redistribution_rounds <= 0
            or len(routes) <= 1
        ):
            return outcome
        # All coordinator arithmetic below runs in *readings* — the unit
        # ``result_weight`` counts in.  ``requested`` arrives in
        # SAMPLESIZE units (what the scatter plan carried) and converts
        # per shard by its type-tree fan-out.
        target_readings = self._target_readings(query, target)
        assert target_readings is not None
        achieved: dict[int, int] = {
            sid: r.result_weight for sid, r in shard_results.items()
        }
        # Distinct sensors each shard has delivered so far.  Top-up
        # requests are *incremental*: the shard is asked for its running
        # total plus the new share, so its freshly warmed slot caches
        # serve the repeat portion without probes and the sampler walks
        # past them to genuinely new sensors; the repeat is then stripped
        # from the top-up answer and only new sensors count as gain.
        delivered: dict[int, set[int]] = {
            sid: _result_sensor_ids(r) for sid, r in shard_results.items()
        }
        # Shards with nothing left to give: their own sampler walked the
        # entire in-region pool and said so.  Mild under-delivery alone
        # does *not* pre-drain a shard — a one-probe miss on a healthy
        # shard must not bar it from the residual pool; the top-up round
        # itself drains any shard whose incremental request gains less
        # than its share.
        drained: set[int] = {
            sid for sid, r in shard_results.items() if r.pool_exhausted
        }
        for _ in range(cfg.redistribution_rounds):
            shortfall = target_readings - sum(achieved.values())
            if shortfall < 1:
                break
            now = self.clock.now()
            exclude = set(unavailable) | drained | set(outcome.failed)
            exclude |= set(outcome.timed_out)
            for route in routes:
                state = self._states.get(route.shard_id)
                if state is None or state.killed or state.down_until > now:
                    exclude.add(route.shard_id)
            assert self._directory is not None
            residual = self._directory.residual_routes(routes, achieved, exclude)
            if not residual:
                break
            caps = {r.shard_id: int(r.weight) for r in residual}
            shares = ShardDirectory.split_target_capped(shortfall, residual, caps)
            round_penalties: dict[int, float] = {}
            round_slots = [0.0]
            gained_this_round = 0
            round_shares: list[tuple[int, int]] = []
            round_calls: list[tuple[int, str, tuple]] = []
            for route in residual:
                sid = route.shard_id
                share = shares.get(sid, 0)
                if share == 0:
                    continue
                # The share is in readings; the sub-query's SAMPLESIZE is
                # per type tree, so round the covering request up.  The
                # request is the shard's running distinct total plus the
                # share — the already-delivered part is cache-served.
                seen = delivered.setdefault(sid, set())
                rpu = self._readings_per_unit(query, sid)
                units = -(-(len(seen) + share) // rpu)
                self.stats.topup_subqueries += 1
                round_shares.append((sid, share))
                round_calls.append(
                    (sid, "execute", (replace(query, sample_size=units),))
                )
            round_results = self._scatter_calls(round_calls, round_penalties)
            for sid, share in round_shares:
                seen = delivered[sid]
                result = round_results.get(sid)
                if result is None:
                    if sid not in outcome.failed:
                        outcome.failed.append(sid)
                    round_slots.append(round_penalties.get(sid, 0.0))
                    continue
                assert isinstance(result, PortalResult)
                if self._shard_timed_out(
                    result.collection_seconds, round_penalties, sid
                ):
                    if sid not in outcome.timed_out:
                        outcome.timed_out.append(sid)
                    round_slots.append(round_penalties.get(sid, 0.0))
                    continue
                new_ids = _capped_new_ids(result, seen, share)
                _dedup_topup_result(result, new_ids)
                outcome.extra.append((sid, result))
                got = len(new_ids)
                seen |= new_ids
                achieved[sid] = achieved.get(sid, 0) + got
                gained_this_round += got
                if got < share or result.pool_exhausted:
                    drained.add(sid)
                round_slots.append(
                    result.collection_seconds + round_penalties.get(sid, 0.0)
                )
            outcome.rounds_run += 1
            outcome.sensors_gained += gained_this_round
            outcome.collection_seconds += max(round_slots)
            if gained_this_round == 0:
                break
        outcome.shortfall = max(0, target_readings - sum(achieved.values()))
        outcome.pool_exhausted = tuple(sorted(drained))
        if outcome.rounds_run:
            self.stats.redistributions += 1
            self.stats.redistribution_rounds_run += outcome.rounds_run
            self.stats.topup_sensors_gained += outcome.sensors_gained
        self.stats.sampled_shortfall += outcome.shortfall
        return outcome

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def execute_sql(self, sql: str) -> FederatedResult:
        return self.execute(parse_query(sql))

    def _scatter_round1(
        self, query: SensorQuery, op: str = "execute"
    ) -> tuple[
        list[ShardRoute],
        list[tuple[int, SensorQuery]],
        dict[int, float],
        dict[int, PortalResult],
        list[int],
        list[int],
        int,
    ]:
        """Route, plan and run one query's first scatter round.

        Shared by the synchronous and the streaming gather — both paths
        issue byte-identical shard calls in the same order, so the
        shard-side RNG streams (and therefore the answers) agree.
        Returns ``(routes, plan, penalties, shard_results, failed,
        timed_out, retries)``.
        """
        self.stats.queries += 1
        routes = self._route(query)
        plan = self._scatter_plan(query, routes)
        self.stats.subqueries_scattered += len(plan)
        penalties: dict[int, float] = {}
        shard_results: dict[int, PortalResult] = {}
        failed: list[int] = []
        timed_out: list[int] = []
        retries_before = self.stats.shard_retries
        scattered = self._scatter_calls(
            [(shard_id, op, (subquery,)) for shard_id, subquery in plan],
            penalties,
        )
        for shard_id, _ in plan:
            result = scattered.get(shard_id)
            if result is None:
                failed.append(shard_id)
                continue
            assert isinstance(result, PortalResult)
            if self._shard_timed_out(result.collection_seconds, penalties, shard_id):
                timed_out.append(shard_id)
                continue
            shard_results[shard_id] = result
        return (
            list(routes),
            plan,
            penalties,
            shard_results,
            failed,
            timed_out,
            self.stats.shard_retries - retries_before,
        )

    def execute(self, query: SensorQuery) -> FederatedResult:
        """Scatter one query, gather — then, for sampled queries that
        came up short, run the bounded cross-shard top-up rounds before
        merging."""
        self._ensure_index()
        (
            routes,
            _plan,
            penalties,
            shard_results,
            failed,
            timed_out,
            retries,
        ) = self._scatter_round1(query)
        target = self._federated_target(query)
        topup = self._redistribute(
            query, target, routes, shard_results, set(failed) | set(timed_out)
        )
        for sid in topup.failed:
            if sid not in failed:
                failed.append(sid)
        for sid in topup.timed_out:
            if sid not in timed_out:
                timed_out.append(sid)
        merged = self._gather(
            query,
            shard_results,
            penalties,
            failed,
            timed_out,
            retries,
            target=self._target_readings(query, target),
            topup=topup,
        )
        if merged.partial:
            self.stats.partial_answers += 1
        return merged

    def execute_polygon(self, query: SensorQuery) -> FederatedResult:
        """Scatter one polygon query through the per-shard geoblock path.

        Rectangles — plain ``Rect`` regions and polygons that *are*
        axis-aligned rectangles — dispatch to :meth:`execute` and are
        bit-identical to it.  Sampled (or cap-demoted) polygon queries
        also go through :meth:`execute` — the layered sampler is exact
        over the ``Polygon`` region and the shares must be split by the
        usual overlap rule.  A genuinely exact polygon scatters the
        shards' ``execute_polygon`` with each sub-query clipped to the
        shard's MBR (:meth:`_clip_subquery`), so every shard answers its
        own polygon piece from its geoblock grid and clipped boundary
        sub-queries; the gather merges shard answers as usual (sensors
        are partitioned across shards, so no cross-shard dedup is
        needed).
        """
        self._ensure_index()
        region = query.region
        if isinstance(region, Polygon):
            rect = region.as_rect()
            if rect is not None:
                return self.execute(replace(query, region=rect))
        if isinstance(region, Rect) or self._federated_target(query) is not None:
            return self.execute(query)
        (
            routes,
            _plan,
            penalties,
            shard_results,
            failed,
            timed_out,
            retries,
        ) = self._scatter_round1(query, op="execute_polygon")
        merged = self._gather(
            query,
            shard_results,
            penalties,
            failed,
            timed_out,
            retries,
            target=None,
            topup=None,
        )
        if merged.partial:
            self.stats.partial_answers += 1
        return merged

    def execute_streaming(
        self, query: SensorQuery, deadline_seconds: float | None = None
    ) -> "StreamingGather":
        """Scatter one query and gather *incrementally*.

        Identical shard calls to :meth:`execute` (same scatter plan,
        same RNG consumption, same redistribution rounds), but the
        coordinator merges answers as they land in modeled time instead
        of waiting out the makespan:

        * ``first`` — the answer publishable at ``deadline_seconds``
          after the scatter: every shard landed by then, merged; healthy
          stragglers are listed in ``deferred_shards`` and the result is
          flagged partial.  ``None`` waits for everything (``first is
          final``).
        * ``final`` — the complete merge.  Redistribution top-ups
          launch as soon as every *answering* shard has landed, so they
          overlap a straggler's retry/timeout tail instead of queueing
          behind it; on a healthy fleet the launch instant is the
          round-1 makespan and the arithmetic (and the whole result)
          reduces bit-identically to the synchronous gather.
        """
        self._ensure_index()
        self.stats.streaming_queries += 1
        (
            routes,
            plan,
            penalties,
            shard_results,
            failed,
            timed_out,
            retries,
        ) = self._scatter_round1(query)
        arrivals: list[ShardArrival] = []
        for shard_id, _ in plan:
            penalty = penalties.get(shard_id, 0.0)
            if shard_id in shard_results:
                landed = shard_results[shard_id].collection_seconds + penalty
                arrivals.append(ShardArrival(shard_id, landed, "ok"))
            elif shard_id in timed_out:
                arrivals.append(ShardArrival(shard_id, penalty, "timed_out"))
            else:
                arrivals.append(ShardArrival(shard_id, penalty, "failed"))
        arrivals.sort(key=lambda a: (a.landed_at, a.shard_id))
        # Top-up rounds need every answering shard's round-1 count, so
        # the earliest the coordinator can launch them is the last *ok*
        # landing — not the full makespan, which a failing shard holds
        # open for its whole backoff tail.
        topup_start = max(
            (a.landed_at for a in arrivals if a.status == "ok"), default=0.0
        )
        target = self._federated_target(query)
        topup = self._redistribute(
            query, target, routes, shard_results, set(failed) | set(timed_out)
        )
        for sid in topup.failed:
            if sid not in failed:
                failed.append(sid)
        for sid in topup.timed_out:
            if sid not in timed_out:
                timed_out.append(sid)
        target_readings = self._target_readings(query, target)
        final = self._gather(
            query,
            shard_results,
            penalties,
            failed,
            timed_out,
            retries,
            target=target_readings,
            topup=topup,
            topup_overlap_start=topup_start,
        )
        if final.partial:
            self.stats.partial_answers += 1
        first = final
        if deadline_seconds is not None and final.collection_seconds > float(
            deadline_seconds
        ):
            deadline = float(deadline_seconds)
            deferred = tuple(
                a.shard_id
                for a in arrivals
                if a.status == "ok" and a.landed_at > deadline
            )
            on_time = {
                sid: r for sid, r in shard_results.items() if sid not in deferred
            }
            # Failures/timeouts only *known* by the deadline make the
            # published record; a shard still burning its retry backoff
            # is pending, exactly like a slow healthy one.
            known_failed = [
                a.shard_id
                for a in arrivals
                if a.status == "failed" and a.landed_at <= deadline
            ]
            known_timed_out = [
                a.shard_id
                for a in arrivals
                if a.status == "timed_out" and a.landed_at <= deadline
            ]
            pending_issues = tuple(
                a.shard_id
                for a in arrivals
                if a.status != "ok" and a.landed_at > deadline
            )
            topup_done = topup.rounds_run and (
                topup_start + topup.collection_seconds <= deadline
            )
            if topup_done:
                # A completed top-up's casualties are known by now too.
                for sid in topup.failed:
                    if sid not in known_failed:
                        known_failed.append(sid)
                for sid in topup.timed_out:
                    if sid not in known_timed_out:
                        known_timed_out.append(sid)
            first = self._gather(
                query,
                on_time,
                penalties,
                known_failed,
                known_timed_out,
                retries,
                target=target_readings,
                topup=topup if topup_done else None,
                topup_overlap_start=topup_start if topup_done else None,
            )
            first.deferred_shards = deferred + pending_issues
            # The coordinator holds the publish until the deadline in
            # case a straggler makes it; it did not, so the partial
            # answer goes out exactly then.
            first.collection_seconds = deadline
            self.stats.deferred_shard_answers += len(first.deferred_shards)
        return StreamingGather(
            query=query,
            deadline_seconds=(
                None if deadline_seconds is None else float(deadline_seconds)
            ),
            arrivals=tuple(arrivals),
            first=first,
            final=final,
        )

    def _shard_timed_out(
        self, collection_seconds: float, penalties: dict[int, float], shard_id: int
    ) -> bool:
        """Apply the gather deadline: a too-slow shard's answer is
        dropped and its slot charged exactly the timeout."""
        timeout = self.federation.shard_timeout_seconds
        if timeout is None or collection_seconds <= timeout:
            return False
        self.stats.shard_timeouts += 1
        penalties[shard_id] = penalties.get(shard_id, 0.0) + timeout
        return True

    def _gather(
        self,
        query: SensorQuery,
        shard_results: dict[int, PortalResult],
        penalties: dict[int, float],
        failed: list[int],
        timed_out: list[int],
        retries: int,
        target: int | None = None,
        topup: _TopupOutcome | None = None,
        topup_overlap_start: float | None = None,
    ) -> FederatedResult:
        answers = []
        groups = []
        processing = 0.0
        slot_seconds: list[float] = []
        for shard_id in sorted(shard_results):
            result = shard_results[shard_id]
            answers.extend(result.answers)
            groups.extend(result.groups)
            processing += result.processing_seconds
            slot_seconds.append(
                result.collection_seconds + penalties.get(shard_id, 0.0)
            )
        # Shards that never answered round 1 still occupy the gather
        # until their retries/timeout ran out (a shard that answered
        # round 1 but died in a top-up round is charged in the top-up's
        # own makespan slot instead).
        for shard_id in list(failed) + list(timed_out):
            if shard_id not in shard_results:
                slot_seconds.append(penalties.get(shard_id, 0.0))
        collection = max(slot_seconds, default=0.0)
        topup_results: tuple[tuple[int, PortalResult], ...] = ()
        rounds_run = gained = shortfall = 0
        exhausted: tuple[int, ...] = ()
        if topup is not None:
            if topup_overlap_start is None:
                # Synchronous gather: round 2+ happens strictly after
                # the first gather, so its makespan charges are
                # additive, not overlapped.
                collection += topup.collection_seconds
            elif topup.rounds_run:
                # Streaming gather: top-ups launched the moment the last
                # *answering* shard landed, overlapping any straggler's
                # retry/timeout tail still holding the round-1 slot
                # open.  With no straggler the launch instant is the
                # makespan itself and this reduces to the additive sum.
                collection = max(
                    collection, topup_overlap_start + topup.collection_seconds
                )
            topup_results = tuple(topup.extra)
            for _, result in topup.extra:
                answers.extend(result.answers)
                groups.extend(result.groups)
                processing += result.processing_seconds
            rounds_run = topup.rounds_run
            gained = topup.sensors_gained
            shortfall = topup.shortfall
            exhausted = topup.pool_exhausted
        return FederatedResult(
            query=query,
            groups=groups,
            answers=answers,
            processing_seconds=processing,
            collection_seconds=collection,
            sample_requested=target,
            shard_results=shard_results,
            failed_shards=tuple(failed),
            timed_out_shards=tuple(timed_out),
            shard_retries=retries,
            topup_results=topup_results,
            redistribution_rounds_run=rounds_run,
            topup_sensors_gained=gained,
            sampled_shortfall=shortfall,
            pool_exhausted_shards=exhausted,
        )

    def execute_batch(self, queries: Sequence[SensorQuery]) -> FederatedBatchResult:
        """One tick's queries, scattered per shard as *sub-batches*.

        Each shard receives every sub-query routed to it as one
        ``execute_batch`` call, so shard-local coalescing/dedup applies
        across the whole tick; the gather reassembles per-query merged
        results in submission order.  A shard that fails or times out
        degrades every query that routed to it (those results come back
        partial) without failing the tick.
        """
        wall_start = time.perf_counter()
        self._ensure_index()
        self.stats.batch_ticks += 1
        self.stats.queries += len(queries)
        if not queries:
            return FederatedBatchResult(stats=BatchStats())
        routes_list = [self._route(q) for q in queries]
        plans = [
            self._scatter_plan(q, routes)
            for q, routes in zip(queries, routes_list)
        ]
        per_shard: dict[int, list[tuple[int, SensorQuery]]] = {}
        for qi, plan in enumerate(plans):
            self.stats.subqueries_scattered += len(plan)
            for shard_id, subquery in plan:
                per_shard.setdefault(shard_id, []).append((qi, subquery))
        penalties: dict[int, float] = {}
        shard_batches: dict[int, "BatchResult"] = {}
        failed: list[int] = []
        timed_out: list[int] = []
        scattered = self._scatter_calls(
            [
                (shard_id, "execute_batch", ([q for _, q in per_shard[shard_id]],))
                for shard_id in sorted(per_shard)
            ],
            penalties,
        )
        for shard_id in sorted(per_shard):
            batch = scattered.get(shard_id)
            if batch is None:
                failed.append(shard_id)
                continue
            if self._shard_timed_out(
                batch.stats.collection_seconds, penalties, shard_id
            ):
                timed_out.append(shard_id)
                continue
            shard_batches[shard_id] = batch

        # Per-query reassembly, in each query's own shard-id order.
        collected: list[dict[int, PortalResult]] = [{} for _ in queries]
        for shard_id, batch in shard_batches.items():
            for (qi, _), result in zip(per_shard[shard_id], batch.results):
                collected[qi][shard_id] = result
        # Per-query cross-shard top-up (round 2+): each short sampled
        # query re-scatters its shortfall after the tick's first gather.
        # The re-scatters run concurrently across queries (each is its
        # own small scatter against already-warm shards), so the tick is
        # charged the *max* top-up collection, and shard dispatcher
        # tables dedup any sensor a first-round sub-batch already hit.
        results: list[FederatedResult] = []
        topup_failed: set[int] = set()
        topup_timed: set[int] = set()
        topup_collections = [0.0]
        total_rounds = total_gained = 0
        for qi, query in enumerate(queries):
            routed = {shard_id for shard_id, _ in plans[qi]}
            q_failed = sorted(routed & set(failed))
            q_timed = sorted(routed & set(timed_out))
            target = self._federated_target(query)
            topup = self._redistribute(
                query,
                target,
                routes_list[qi],
                collected[qi],
                set(q_failed) | set(q_timed),
            )
            topup_failed.update(topup.failed)
            topup_timed.update(topup.timed_out)
            topup_collections.append(topup.collection_seconds)
            total_rounds += topup.rounds_run
            total_gained += topup.sensors_gained
            for sid in topup.failed:
                if sid not in q_failed:
                    q_failed.append(sid)
            for sid in topup.timed_out:
                if sid not in q_timed:
                    q_timed.append(sid)
            merged = self._gather(
                query,
                collected[qi],
                penalties,
                sorted(q_failed),
                sorted(q_timed),
                retries=0,
                target=self._target_readings(query, target),
                topup=topup,
            )
            if merged.partial:
                self.stats.partial_answers += 1
            results.append(merged)

        stats = BatchStats(queries=len(queries))
        shard_seconds: dict[int, float] = {}
        slot_seconds: list[float] = [0.0]
        for shard_id, batch in shard_batches.items():
            s = batch.stats
            stats.probes_requested += s.probes_requested
            stats.probes_issued += s.probes_issued
            stats.probes_contacted += s.probes_contacted
            stats.probes_coalesced += s.probes_coalesced
            stats.probes_deduped += s.probes_deduped
            stats.probes_cooldown_skipped += s.probes_cooldown_skipped
            stats.probes_retried += s.probes_retried
            stats.probes_timed_out += s.probes_timed_out
            stats.batch_shared_plans += s.batch_shared_plans
            stats.maintenance_ops += s.maintenance_ops
            slot = s.collection_seconds + penalties.get(shard_id, 0.0)
            slot_seconds.append(slot)
            shard_seconds[shard_id] = (
                sum(r.processing_seconds for r in batch.results)
                + slot
                + s.maintenance_ops * self.cost_model.per_maintenance_op
            )
        for shard_id in list(failed) + list(timed_out):
            slot = penalties.get(shard_id, 0.0)
            slot_seconds.append(slot)
            shard_seconds[shard_id] = slot
        stats.collection_seconds = max(slot_seconds) + max(topup_collections)
        # Coordinator-side wall clock: covers scatter, shard work (which
        # overlaps on the process backend) and gather — not the shard
        # sum, which would double-count overlapped work.
        stats.wall_seconds = time.perf_counter() - wall_start
        # Top-up work lands on the answering shard's own bill too.
        for merged in results:
            for sid, extra in merged.topup_results:
                shard_seconds[sid] = shard_seconds.get(sid, 0.0) + (
                    extra.processing_seconds + extra.collection_seconds
                )
        return FederatedBatchResult(
            results=results,
            stats=stats,
            shard_stats={sid: b.stats for sid, b in shard_batches.items()},
            shard_seconds=shard_seconds,
            failed_shards=tuple(sorted(set(failed) | topup_failed)),
            timed_out_shards=tuple(sorted(set(timed_out) | topup_timed)),
            redistribution_rounds_run=total_rounds,
            topup_sensors_gained=total_gained,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, query: SensorQuery) -> dict[str, object]:
        """Federated EXPLAIN: the scatter plan plus each routed shard's
        own EXPLAIN (read-only; no retries, killed shards are skipped
        and listed), and the redistribution plan — whether a shortfall
        on this query *would* trigger cross-shard top-up rounds, the
        round bound, and the per-shard pool estimates the residual
        split would draw on."""
        self._ensure_index()
        routes = self._route(query)
        plan = self._scatter_plan(query, routes)
        per_shard: dict[int, dict[str, object]] = {}
        skipped: list[int] = []
        for shard_id, subquery in plan:
            if self._states[shard_id].killed:
                skipped.append(shard_id)
                continue
            per_shard[shard_id] = self._shard_op(shard_id, "explain", subquery)
        coverages = [float(e["cache_coverage"]) for e in per_shard.values()]
        cfg = self.federation
        target = self._federated_target(query)
        return {
            "shards": per_shard,
            "scatter": [
                {"shard": shard_id, "sample_size": sub.sample_size}
                for shard_id, sub in plan
            ],
            "skipped_shards": skipped,
            "expected_probes": sum(
                float(e["expected_probes"]) for e in per_shard.values()
            ),
            "cache_coverage": sum(coverages) / len(coverages) if coverages else 1.0,
            "redistribution": {
                "enabled": cfg.redistribution_enabled,
                "rounds": cfg.redistribution_rounds,
                "target": target,
                "target_readings": self._target_readings(query, target),
                "eligible": (
                    target is not None
                    and cfg.redistribution_enabled
                    and cfg.redistribution_rounds > 0
                    and len(routes) > 1
                ),
                "pool_estimates": {
                    r.shard_id: int(
                        self.directory.entry(r.shard_id).weight
                        * min(1.0, max(r.overlap, 0.0))
                    )
                    for r in routes
                },
            },
        }

    def stats_summary(self) -> dict[str, object]:
        """Operational summary: directory, coordinator counters, and
        each shard's own ``stats()``."""
        self._ensure_index()
        assert self._directory is not None
        f = self.stats
        return {
            "total_sensors": len(self.registry),
            "n_shards": len(self._shards),
            "directory": [
                {
                    "shard": e.shard_id,
                    "sensors": e.weight,
                    "mbr": (e.mbr.min_x, e.mbr.min_y, e.mbr.max_x, e.mbr.max_y),
                    "types": sorted(e.sensor_types),
                    "killed": self._states[e.shard_id].killed,
                }
                for e in self._directory.entries()
            ],
            "federation": {
                "queries": f.queries,
                "batch_ticks": f.batch_ticks,
                "subqueries_scattered": f.subqueries_scattered,
                "exact_broadcasts": f.exact_broadcasts,
                "sampled_splits": f.sampled_splits,
                "shards_routed": f.shards_routed,
                "zero_share_skips": f.zero_share_skips,
                "shard_attempts": f.shard_attempts,
                "shard_retries": f.shard_retries,
                "shard_failures": f.shard_failures,
                "shard_timeouts": f.shard_timeouts,
                "shard_cooldown_skips": f.shard_cooldown_skips,
                "partial_answers": f.partial_answers,
                "redistributions": f.redistributions,
                "redistribution_rounds_run": f.redistribution_rounds_run,
                "topup_subqueries": f.topup_subqueries,
                "topup_sensors_gained": f.topup_sensors_gained,
                "sampled_shortfall": f.sampled_shortfall,
                "streaming_queries": f.streaming_queries,
                "deferred_shard_answers": f.deferred_shard_answers,
                "shard_recoveries": f.shard_recoveries,
                "recovery_seconds_total": f.recovery_seconds_total,
            },
            "shards": {
                i: self._shard_op(i, "stats") for i in range(len(self._shards))
            },
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Checkpoint every shard's storage engine (compact its WAL
        into a fresh page file).  Requires storage to be attached."""
        if self.storage_config is None:
            raise RuntimeError("federation has no storage attached")
        self._ensure_index()
        for shard_id in range(len(self._shards)):
            if self._states[shard_id].killed:
                continue
            self._shard_op(shard_id, "checkpoint")

    def close(self) -> None:
        """Release coordinator-held resources: flush and close each
        shard's storage engine (a no-op for in-memory shards).  The
        process backend overrides this to shut workers down and unlink
        its shared-memory segments."""
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "FederatedPortal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
