"""Fleet partitioners: assign every sensor to a shard.

Two strategies ship, behind one tiny protocol so deployments can plug
their own:

``GridPartitioner``
    Sort-tile-recursive spatial grid: the fleet is cut into vertical
    strips of equal population by x, each strip into cells of equal
    population by y.  Shards come out population-balanced *and*
    spatially coherent (compact MBRs), which is what makes MBR routing
    selective.
``KMeansPartitioner``
    Lloyd iterations over sensor locations (numpy, deterministic seed).
    Produces rounder shards for clustered fleets — cities, highway
    corridors — at the cost of exact population balance.  Empty
    clusters are re-seeded with the point farthest from its centroid,
    so every shard is non-empty whenever the fleet is large enough.

Both are pure functions of the sensor metadata: partitioning happens at
index (re)build time, exactly where the paper's periodic reconstruction
already absorbs location changes.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.sensors.sensor import Sensor

__all__ = [
    "Partitioner",
    "FixedPartitioner",
    "GridPartitioner",
    "KMeansPartitioner",
    "make_partitioner",
]


@runtime_checkable
class Partitioner(Protocol):
    """Anything that can split a fleet into ``n_shards`` groups."""

    n_shards: int

    def assign(self, sensors: Sequence[Sensor]) -> list[int]:
        """Shard index in ``[0, n_shards)`` for each sensor, positionally
        aligned with ``sensors``."""
        ...


def _check_shards(n_shards: int) -> int:
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    return int(n_shards)


class GridPartitioner:
    """Equal-population sort-tile grid over sensor locations.

    The grid shape is the most square factorization of ``n_shards``
    (``nx * ny == n_shards`` with ``nx <= ny``), so 4 shards become a
    2x2 grid and 8 shards a 2x4 grid.  Assignment is deterministic:
    ties in coordinates resolve by input position via a stable argsort.
    """

    def __init__(self, n_shards: int) -> None:
        self.n_shards = _check_shards(n_shards)
        nx = max(1, int(math.isqrt(self.n_shards)))
        while self.n_shards % nx:
            nx -= 1
        self.nx = nx
        self.ny = self.n_shards // nx

    def assign(self, sensors: Sequence[Sensor]) -> list[int]:
        n = len(sensors)
        if n == 0:
            return []
        xs = np.array([s.location.x for s in sensors])
        ys = np.array([s.location.y for s in sensors])
        shard = np.zeros(n, dtype=np.int64)
        by_x = np.argsort(xs, kind="stable")
        strips = np.array_split(by_x, self.nx)
        for sx, strip in enumerate(strips):
            by_y = strip[np.argsort(ys[strip], kind="stable")]
            for sy, cell in enumerate(np.array_split(by_y, self.ny)):
                shard[cell] = sx * self.ny + sy
        return shard.tolist()


class FixedPartitioner:
    """Pin every sensor to an explicit shard — the rebalancer's ally.

    ``assignment`` maps sensor id -> shard id.  A federation rebuilt
    through a ``FixedPartitioner`` reproduces exactly the membership a
    rebalance arrived at incrementally, which is how the tests compare
    migrated state against a from-scratch build, and how churn tests
    place fresh joins deterministically.  Sensors absent from the map
    raise — a silent default would hide a conservation bug.
    """

    def __init__(self, assignment: Mapping[int, int], n_shards: int | None = None) -> None:
        self.assignment = dict(assignment)
        inferred = max(self.assignment.values(), default=-1) + 1
        self.n_shards = _check_shards(n_shards if n_shards is not None else inferred)

    def assign(self, sensors: Sequence[Sensor]) -> list[int]:
        out: list[int] = []
        for s in sensors:
            if s.sensor_id not in self.assignment:
                raise KeyError(f"sensor {s.sensor_id} has no fixed shard")
            shard = self.assignment[s.sensor_id]
            if not 0 <= shard < self.n_shards:
                raise ValueError(f"sensor {s.sensor_id} pinned to bad shard {shard}")
            out.append(shard)
        return out


class KMeansPartitioner:
    """Lloyd k-means over sensor locations with deterministic seeding."""

    def __init__(self, n_shards: int, seed: int = 0, iterations: int = 10) -> None:
        self.n_shards = _check_shards(n_shards)
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.seed = int(seed)
        self.iterations = int(iterations)

    def assign(self, sensors: Sequence[Sensor]) -> list[int]:
        n = len(sensors)
        if n == 0:
            return []
        k = min(self.n_shards, n)
        points = np.array([(s.location.x, s.location.y) for s in sensors])
        rng = np.random.default_rng(self.seed)
        centroids = points[rng.choice(n, size=k, replace=False)].copy()
        labels = np.zeros(n, dtype=np.int64)
        for _ in range(self.iterations):
            d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            labels = d2.argmin(axis=1)
            for c in range(k):
                members = points[labels == c]
                if len(members):
                    centroids[c] = members.mean(axis=0)
                else:
                    # Re-seed a starved cluster with the globally
                    # worst-fitted point so no shard comes out empty.
                    farthest = int(d2.min(axis=1).argmax())
                    centroids[c] = points[farthest]
        d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        return d2.argmin(axis=1).tolist()


def make_partitioner(kind: str, n_shards: int, seed: int = 0) -> Partitioner:
    """Factory for the CLI/bench: ``"grid"`` or ``"kmeans"``."""
    if kind == "grid":
        return GridPartitioner(n_shards)
    if kind == "kmeans":
        return KMeansPartitioner(n_shards, seed=seed)
    raise ValueError(f"unknown partitioner {kind!r}; use 'grid' or 'kmeans'")
