"""Federation-layer configuration.

The knobs cover the coordinator's two failure-handling jobs — retrying a
shard that did not answer (``shard_retry_budget`` / ``retry_backoff_*``,
the same exponential-backoff shape as
:class:`~repro.transport.config.TransportConfig`) and bounding how long
the gather waits for a slow shard (``shard_timeout_seconds``).  The
defaults retry once and never time a shard out, which keeps a healthy
federation's answers complete; both degradation paths mark the merged
answer *partial* rather than raising.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class FederationConfig:
    """Knobs for the scatter-gather coordinator.

    Parameters
    ----------
    shard_retry_budget:
        Extra attempts per shard per scatter after the first one fails
        (the shard is down / unreachable).  0 disables retrying.
    retry_backoff_base:
        Simulated seconds charged to the gather before the first retry
        of a shard; retry ``k`` waits
        ``retry_backoff_base * retry_backoff_multiplier**k``.  The
        charge lands on the failed shard's slot of the gather makespan.
    retry_backoff_multiplier:
        Exponential growth factor of the retry delay.
    shard_timeout_seconds:
        Gather deadline per shard: a shard whose sub-answer's simulated
        collection latency exceeds this is dropped from the merge (its
        slot is charged the timeout) and the answer is flagged partial.
        ``None`` waits forever.
    cooldown_seconds:
        After a shard exhausts its retry budget, the coordinator stops
        scattering to it for this long (simulated seconds); queries
        touching its region come back partial without paying the retry
        backoff again.  0 disables shard cooldown.
    redistribution_enabled:
        Coordinator-level REDISTRIBUTE (Algorithm 2 one level up): when
        a sampled scatter's first gather comes up short of the federated
        target, the aggregate shortfall is re-split over shards with
        remaining pool and collected in a bounded second round.  Only
        applies when more than one shard was routed — a single routed
        shard already ran Algorithm 2 over its whole pool, so there is
        nothing to borrow and the 1-shard pass-through stays
        bit-identical to the unsharded portal.
    redistribution_rounds:
        Upper bound on top-up scatter rounds per query.  Each round's
        collection cost is charged to the gather makespan; rounds stop
        early once the shortfall closes, no candidate shard has residual
        pool, or a round gains nothing.  0 disables redistribution even
        when ``redistribution_enabled`` is true.
    execution:
        Which backend runs the shards.  ``"inprocess"`` (the default)
        keeps every shard a ``SensorMapPortal`` inside the
        coordinator's process — fully deterministic, zero IPC.
        ``"process"`` runs each shard in its own worker process
        (:class:`repro.parallel.ParallelFederatedPortal`): the static
        flat-kernel arrays are published once over
        ``multiprocessing.shared_memory`` and only query descriptors /
        answers cross the worker pipes, so shard work genuinely
        overlaps on the wall clock.  Answers are bit-identical across
        backends for the same seed.
    """

    shard_retry_budget: int = 1
    retry_backoff_base: float = 0.5
    retry_backoff_multiplier: float = 2.0
    shard_timeout_seconds: float | None = None
    cooldown_seconds: float = 0.0
    redistribution_enabled: bool = True
    redistribution_rounds: int = 1
    execution: str = "inprocess"

    def __post_init__(self) -> None:
        if self.execution not in ("inprocess", "process"):
            raise ValueError('execution must be "inprocess" or "process"')
        if self.shard_retry_budget < 0:
            raise ValueError("shard_retry_budget must be non-negative")
        if self.retry_backoff_base < 0:
            raise ValueError("retry_backoff_base must be non-negative")
        if self.retry_backoff_multiplier < 1.0:
            raise ValueError("retry_backoff_multiplier must be at least 1")
        if self.shard_timeout_seconds is not None and self.shard_timeout_seconds <= 0:
            raise ValueError("shard_timeout_seconds must be positive or None")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        if self.redistribution_rounds < 0:
            raise ValueError("redistribution_rounds must be non-negative")
