"""Transport-layer configuration.

The knobs mirror the dispatcher's three jobs: dedup (``inflight_ttl``),
reliability (``max_retries`` / ``backoff_*`` / ``cooldown_*``) and
scheduling (``overlap_enabled`` / ``stream_chunk``).  The defaults are a
reasonable portal posture; ``TransportConfig.parity()`` builds the
degenerate configuration under which the dispatcher is bit-identical to
the synchronous ``SensorNetwork.probe`` path (no retries, no overlap, no
tables) — the property tests pin that contract.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TransportConfig:
    """Knobs for the probe-transport dispatcher.

    Parameters
    ----------
    enabled:
        Master switch (the portal's ``transport_enabled``).  When False
        the portal keeps the direct synchronous ``network.probe`` path.
    max_retries:
        Extra wire contacts allowed per logical probe after the first
        attempt fails.  0 disables retrying.
    backoff_base:
        Delay (simulated seconds) before the first retry; subsequent
        retries wait ``backoff_base * backoff_multiplier**k``.
    backoff_multiplier:
        Exponential growth factor of the retry delay.
    backoff_jitter:
        Relative jitter applied to each backoff delay (a delay ``d``
        becomes ``d * (1 + U(-jitter, +jitter))``), drawn from the
        dispatcher's own RNG so the network RNG stream is untouched.
    inflight_ttl:
        Freshness window (seconds) of the recently-probed table: a
        sensor resolved less than ``inflight_ttl`` ago is not contacted
        again — a cached success is served (subject to the requester's
        staleness bound), a cached failure is reported without traffic.
        0 disables the table.
    cooldown_seconds:
        After a logical probe fails and the sensor's historical
        availability estimate is below ``cooldown_threshold``, further
        requests are skipped for this long.  0 disables cooldown.
    cooldown_threshold:
        Availability-model estimate below which a failing sensor enters
        cooldown.
    overlap_enabled:
        When True, all probe rounds submitted to the dispatcher share
        one simulated-time event queue and one pool of
        ``network.parallelism`` connections, so multiple trees' rounds
        overlap in simulated wall time.  When False each round runs to
        completion by itself, exactly like a synchronous ``probe`` call.
    stream_chunk:
        Streaming-ingestion granularity: completed readings are flushed
        into ``COLRTree.insert_readings_batch`` every this-many
        completions (and at round end) in completion order.
    seed:
        Seed of the dispatcher's private RNG (backoff jitter only).
    """

    enabled: bool = True
    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.1
    inflight_ttl: float = 60.0
    cooldown_seconds: float = 300.0
    cooldown_threshold: float = 0.5
    overlap_enabled: bool = True
    stream_chunk: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.inflight_ttl < 0:
            raise ValueError("inflight_ttl must be non-negative")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        if not 0.0 <= self.cooldown_threshold <= 1.0:
            raise ValueError("cooldown_threshold must be in [0, 1]")
        if self.stream_chunk < 1:
            raise ValueError("stream_chunk must be at least 1")

    @property
    def is_parity(self) -> bool:
        """True when this configuration is bit-identical to the
        synchronous path: no retries, no overlap, no dedup tables."""
        return (
            self.max_retries == 0
            and not self.overlap_enabled
            and self.inflight_ttl == 0
            and self.cooldown_seconds == 0
        )

    @classmethod
    def parity(cls, **overrides: object) -> "TransportConfig":
        """The degenerate configuration under which the dispatcher is
        provably bit-identical to direct ``network.probe`` calls."""
        base = dict(
            max_retries=0,
            overlap_enabled=False,
            inflight_ttl=0.0,
            cooldown_seconds=0.0,
        )
        base.update(overrides)
        return cls(**base)  # type: ignore[arg-type]
