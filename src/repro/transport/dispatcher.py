"""The probe-transport dispatcher.

``ProbeDispatcher`` sits between every probe issuer (the batch executor,
``COLRTree.probe_and_cache``) and ``SensorNetwork``, replacing the
single synchronous ``network.probe`` call per tree with scheduled
per-sensor *attempts* on a simulated-time event queue:

* **In-flight / recently-probed table** — a sensor with a logical probe
  already in flight gets its requester attached as a waiter; a sensor
  resolved less than ``inflight_ttl`` ago is served from the table (a
  success subject to the requester's staleness bound, a failure
  unconditionally), so overlapping ticks and back-to-back queries never
  contact a sensor twice within its freshness window.
* **Retry / backoff / cooldown** — a failed attempt is retried up to
  ``max_retries`` times with exponential backoff plus jitter (drawn from
  the dispatcher's own RNG; the network RNG stream is untouched), and a
  sensor whose logical probe fails while its historical availability
  estimate is below ``cooldown_threshold`` is not contacted again for
  ``cooldown_seconds``.
* **Overlapping rounds** — all rounds share one pool of
  ``network.parallelism`` connections and one event queue, so multiple
  trees' probe rounds interleave in simulated wall time; a round's
  latency is its own makespan, not its place in a sequential sum.
* **Streaming ingestion** — completed readings are flushed into the
  owning round's ``COLRTree.insert_readings_batch`` in completion order,
  every ``stream_chunk`` completions, instead of waiting for the round's
  slowest probe.

With ``TransportConfig.parity()`` (no retries, no overlap, no tables)
the dispatcher degenerates to ``sample_attempts`` + ``complete_batch``
per round — bit-identical to ``network.probe``, which the property
tests pin.

Availability-model contract: outcomes are recorded exactly once per
*logical* probe, at resolution — an eventually-successful probe records
one success regardless of how many attempts it took.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.sensors.network import ProbeAttempt, SensorNetwork
from repro.sensors.sensor import Reading
from repro.transport.config import TransportConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tree import COLRTree

_DISPATCH = 0
_COMPLETE = 1


@dataclass
class TransportStats:
    """Cumulative dispatcher accounting (transport-level view; the
    wire-level counters also land in ``NetworkStats``)."""

    rounds: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    unavailable: int = 0
    dedup_inflight: int = 0
    dedup_recent: int = 0
    cooldown_skips: int = 0
    streamed_readings: int = 0
    stream_flushes: int = 0
    maintenance_ops: int = 0
    overlapped_rounds: int = 0

    @property
    def dedup_hits(self) -> int:
        return self.dedup_inflight + self.dedup_recent

    def snapshot(self) -> "TransportStats":
        return replace(self)


class _Pending:
    """One logical probe in flight: a sensor contact plus every round
    waiting on its outcome (``rounds[0]`` is the owner, whose tree
    receives the streamed reading)."""

    __slots__ = ("sensor_id", "now", "rounds", "attempts")

    def __init__(self, sensor_id: int, now: float, owner: "ProbeRound") -> None:
        self.sensor_id = sensor_id
        self.now = now
        self.rounds: list[ProbeRound] = [owner]
        self.attempts = 0


class ProbeRound:
    """One submitted probe round and, after :meth:`ProbeDispatcher.drain`,
    its outcome.  Mirrors ``ProbeResult`` (``readings`` / ``unavailable``
    / ``timed_out`` / ``latency_seconds``) plus the transport-only
    fields: ``deduped`` (requests served from the tables without
    traffic), ``cooldown_skipped`` (requests dropped in cooldown),
    ``retries_by_sensor``, ``attempts`` (wire contacts charged to this
    round) and ``maintenance_ops`` (streamed-ingestion trigger work)."""

    __slots__ = (
        "tree",
        "now",
        "requested",
        "contacted",
        "readings",
        "unavailable",
        "timed_out",
        "deduped",
        "cooldown_skipped",
        "retries_by_sensor",
        "attempts",
        "latency_seconds",
        "maintenance_ops",
        "resolved",
        "outstanding",
        "finish_time",
        "_stream_buffer",
    )

    def __init__(self, requested: list[int], now: float, tree: "COLRTree | None") -> None:
        self.tree = tree
        self.now = now
        self.requested: tuple[int, ...] = tuple(requested)
        self.contacted: list[int] = []
        self.readings: dict[int, Reading] = {}
        self.unavailable: list[int] = []
        self.timed_out: list[int] = []
        self.deduped: list[int] = []
        self.cooldown_skipped: list[int] = []
        self.retries_by_sensor: dict[int, int] = {}
        self.attempts = 0
        self.latency_seconds = 0.0
        self.maintenance_ops = 0
        self.resolved = False
        self.outstanding: set[int] = set()
        self.finish_time = now
        self._stream_buffer: list[Reading] = []

    @property
    def failed(self) -> tuple[int, ...]:
        """Combined failure list (``unavailable + timed_out``) for
        callers that do not care which mode a sensor failed in."""
        return tuple(self.unavailable) + tuple(self.timed_out)

    @property
    def retries(self) -> int:
        return sum(self.retries_by_sensor.values())

    @property
    def deduped_set(self) -> frozenset[int]:
        return frozenset(self.deduped)

    @property
    def cooldown_set(self) -> frozenset[int]:
        return frozenset(self.cooldown_skipped)


class ProbeDispatcher:
    """Schedules logical probes for one ``SensorNetwork``.

    Usage: ``submit()`` one round per tree (registering contacts and
    consulting the dedup/cooldown tables), then ``drain()`` to run the
    shared event queue until every submitted round resolves.
    ``collect()`` is the submit-and-drain convenience for sequential
    callers (``probe_and_cache``).
    """

    def __init__(
        self,
        network: SensorNetwork,
        config: TransportConfig | None = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else TransportConfig()
        self.stats = TransportStats()
        self._seq = itertools.count()
        self._rng = np.random.default_rng(self.config.seed)
        self._inflight: dict[int, _Pending] = {}
        # sensor id -> (anchor instant, reading-or-None).  A None reading
        # caches a failure: within the ttl the sensor is reported failed
        # without traffic.
        self._recent: dict[int, tuple[float, Reading | None]] = {}
        self._cooldown_until: dict[int, float] = {}
        self._unresolved: list[ProbeRound] = []
        # Shared connection pool (overlap mode): free-at instants of the
        # collector's `parallelism` connections.
        self._conn: list[float] = [0.0] * max(1, int(network.parallelism))
        heapq.heapify(self._conn)
        self._events: list[tuple[float, int, int, object]] = []

    # ------------------------------------------------------------------
    # Mode predicates
    # ------------------------------------------------------------------
    @property
    def _sync_rounds(self) -> bool:
        """True when rounds run as single ``complete_batch`` calls (the
        bit-identical-to-``probe`` execution shape)."""
        return not self.config.overlap_enabled and self.config.max_retries == 0

    @property
    def streams_ingestion(self) -> bool:
        """True when the dispatcher ingests completed readings itself
        (event-queue modes); callers must then not re-ingest."""
        return not self._sync_rounds

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        sensor_ids: Iterable[int],
        now: float,
        tree: "COLRTree | None" = None,
        max_staleness: float = math.inf,
    ) -> ProbeRound:
        """Register a probe round at simulated instant ``now``.

        Every requested sensor is classified: attached to an in-flight
        logical probe, served from the recently-probed table, skipped in
        cooldown, or scheduled for contact.  The round resolves during
        :meth:`drain` (immediately if nothing needs contacting).
        """
        ids = list(sensor_ids)
        rnd = ProbeRound(ids, now, tree)
        self.stats.rounds += 1
        cfg = self.config
        net_stats = self.network.stats
        seen: set[int] = set()
        overlapping = bool(self._inflight)
        for sid in ids:
            if sid in seen:
                continue
            seen.add(sid)
            pending = self._inflight.get(sid)
            if pending is not None:
                pending.rounds.append(rnd)
                rnd.outstanding.add(sid)
                rnd.deduped.append(sid)
                self.stats.dedup_inflight += 1
                net_stats.probes_deduped += 1
                continue
            until = self._cooldown_until.get(sid)
            if until is not None:
                if now < until:
                    rnd.cooldown_skipped.append(sid)
                    self.stats.cooldown_skips += 1
                    net_stats.probes_cooldown_skipped += 1
                    continue
                del self._cooldown_until[sid]
            if cfg.inflight_ttl > 0:
                entry = self._recent.get(sid)
                if entry is not None and now - entry[0] < cfg.inflight_ttl:
                    anchor, reading = entry
                    if reading is None:
                        # Recently-failed sensor: report the failure
                        # again without re-contacting it.
                        rnd.unavailable.append(sid)
                        rnd.deduped.append(sid)
                        self.stats.dedup_recent += 1
                        net_stats.probes_deduped += 1
                        continue
                    if reading.expires_at > now and reading.timestamp >= now - max_staleness:
                        rnd.readings[sid] = reading
                        rnd.deduped.append(sid)
                        self.stats.dedup_recent += 1
                        net_stats.probes_deduped += 1
                        continue
                    # Cached success too stale for this requester:
                    # fall through to a fresh contact.
            rnd.contacted.append(sid)
            rnd.outstanding.add(sid)
            self._inflight[sid] = _Pending(sid, now, rnd)
        if rnd.outstanding:
            if overlapping and rnd.contacted:
                self.stats.overlapped_rounds += 1
            self._unresolved.append(rnd)
            if self.config.overlap_enabled:
                for sid in rnd.contacted:
                    self._push(self._events, now, _DISPATCH, self._inflight[sid])
        else:
            rnd.resolved = True
        return rnd

    def collect(
        self,
        sensor_ids: Iterable[int],
        now: float,
        tree: "COLRTree | None" = None,
        max_staleness: float = math.inf,
    ) -> ProbeRound:
        """Submit one round and drain it to resolution."""
        rnd = self.submit(sensor_ids, now, tree=tree, max_staleness=max_staleness)
        if not rnd.resolved:
            self.drain([rnd])
        return rnd

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def drain(self, rounds: list[ProbeRound] | None = None) -> None:
        """Run submitted rounds to resolution.

        ``rounds=None`` drains everything outstanding.  In overlap mode
        the shared event queue is processed until every target round
        resolves (other rounds' events are processed as encountered —
        that is the overlap); otherwise rounds run one at a time in
        submission order.
        """
        targets = [
            r
            for r in (self._unresolved if rounds is None else rounds)
            if not r.resolved
        ]
        if not targets:
            return
        if self.config.overlap_enabled:
            self._run(self._events, self._conn, targets)
        else:
            order = [r for r in self._unresolved if r in targets] or targets
            for rnd in order:
                if rnd.resolved:
                    continue
                if self._sync_rounds:
                    self._resolve_sync(rnd)
                else:
                    self._run_isolated(rnd)
        self._unresolved = [r for r in self._unresolved if not r.resolved]

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------
    def _push(self, events: list, t: float, kind: int, payload: object) -> None:
        heapq.heappush(events, (t, next(self._seq), kind, payload))

    def _run(self, events: list, conn: list[float], targets: list[ProbeRound]) -> None:
        while any(not r.resolved for r in targets):
            if not events:  # pragma: no cover - invariant guard
                raise RuntimeError("event queue empty with unresolved rounds")
            t, _, kind, payload = heapq.heappop(events)
            if kind == _DISPATCH:
                self._handle_dispatch(events, conn, t, payload)
            else:
                pending, attempt = payload
                self._handle_complete(events, t, pending, attempt)

    def _run_isolated(self, rnd: ProbeRound) -> None:
        """Retry-enabled but non-overlapping: the round gets its own
        event queue and its own connection pool anchored at its start."""
        events: list[tuple[float, int, int, object]] = []
        conn = [rnd.now] * max(1, int(self.network.parallelism))
        heapq.heapify(conn)
        for sid in rnd.contacted:
            self._push(events, rnd.now, _DISPATCH, self._inflight[sid])
        self._run(events, conn, [rnd])

    def _handle_dispatch(
        self, events: list, conn: list[float], t: float, pending: _Pending
    ) -> None:
        free = heapq.heappop(conn)
        start = max(t, free)
        attempt = self.network.sample_attempts([pending.sensor_id])[0]
        finish = start + attempt.latency_seconds
        heapq.heappush(conn, finish)
        pending.attempts += 1
        net_stats = self.network.stats
        net_stats.probes_attempted += 1
        per_sensor = net_stats.per_sensor_probes
        per_sensor[pending.sensor_id] = per_sensor.get(pending.sensor_id, 0) + 1
        self.stats.attempts += 1
        pending.rounds[0].attempts += 1
        if pending.attempts > 1:
            net_stats.probes_retried += 1
            self.stats.retries += 1
        self._push(events, finish, _COMPLETE, (pending, attempt))

    def _handle_complete(
        self, events: list, t: float, pending: _Pending, attempt: ProbeAttempt
    ) -> None:
        net = self.network
        if attempt.ok:
            net.stats.probes_succeeded += 1
            net.record_outcome(pending.sensor_id, True)
            self._resolve(pending, t, net.build_reading(pending.sensor_id, pending.now), False)
            return
        if attempt.timed_out:
            net.stats.probes_timed_out += 1
            self.stats.timeouts += 1
        else:
            net.stats.probes_unavailable += 1
            self.stats.unavailable += 1
        if pending.attempts <= self.config.max_retries:
            self._push(events, t + self._backoff(pending.attempts), _DISPATCH, pending)
            return
        net.record_outcome(pending.sensor_id, False)
        self._resolve(pending, t, None, attempt.timed_out)

    def _backoff(self, failed_attempts: int) -> float:
        cfg = self.config
        delay = cfg.backoff_base * cfg.backoff_multiplier ** (failed_attempts - 1)
        if cfg.backoff_jitter > 0:
            delay *= 1.0 + cfg.backoff_jitter * float(self._rng.uniform(-1.0, 1.0))
        return delay

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve(
        self, pending: _Pending, at: float, reading: Reading | None, timed_out: bool
    ) -> None:
        sid = pending.sensor_id
        del self._inflight[sid]
        cfg = self.config
        if cfg.inflight_ttl > 0:
            self._recent[sid] = (pending.now, reading)
        if reading is None and cfg.cooldown_seconds > 0:
            model = self.network.availability_model
            if model is not None and model.estimate(sid) < cfg.cooldown_threshold:
                self._cooldown_until[sid] = pending.now + cfg.cooldown_seconds
        for i, rnd in enumerate(pending.rounds):
            rnd.outstanding.discard(sid)
            if pending.attempts > 1:
                rnd.retries_by_sensor[sid] = pending.attempts - 1
            if reading is not None:
                rnd.readings[sid] = reading
                if i == 0 and rnd.tree is not None:
                    rnd._stream_buffer.append(reading)
                    if len(rnd._stream_buffer) >= cfg.stream_chunk:
                        self._flush(rnd)
            elif timed_out:
                rnd.timed_out.append(sid)
            else:
                rnd.unavailable.append(sid)
            if at > rnd.finish_time:
                rnd.finish_time = at
            if not rnd.outstanding and not rnd.resolved:
                self._finish_round(rnd)

    def _finish_round(self, rnd: ProbeRound) -> None:
        rnd.resolved = True
        rnd.latency_seconds = max(0.0, rnd.finish_time - rnd.now)
        self._flush(rnd)
        if rnd.contacted:
            self.network.stats.batches += 1
            self.network.stats.total_latency_seconds += rnd.latency_seconds

    def _flush(self, rnd: ProbeRound) -> None:
        buf = rnd._stream_buffer
        if not buf or rnd.tree is None:
            return
        rnd._stream_buffer = []
        ops = rnd.tree.insert_readings_batch(buf, fetched_at=rnd.now)
        rnd.maintenance_ops += ops
        self.stats.streamed_readings += len(buf)
        self.stats.stream_flushes += 1
        self.stats.maintenance_ops += ops

    # ------------------------------------------------------------------
    # Synchronous (parity) rounds
    # ------------------------------------------------------------------
    def _resolve_sync(self, rnd: ProbeRound) -> None:
        """One ``complete_batch`` call per round: the exact accounting,
        RNG consumption and result shape of ``network.probe``."""
        net = self.network
        if rnd.contacted:
            attempts = net.sample_attempts(rnd.contacted)
            result = net.complete_batch(rnd.contacted, attempts, rnd.now)
            rnd.attempts += len(rnd.contacted)
            self.stats.attempts += len(rnd.contacted)
            self.stats.timeouts += len(result.timed_out)
            self.stats.unavailable += len(result.unavailable)
            cfg = self.config
            timed_set = set(result.timed_out)
            for sid in rnd.contacted:
                pending = self._inflight.pop(sid)
                reading = result.readings.get(sid)
                if cfg.inflight_ttl > 0:
                    self._recent[sid] = (pending.now, reading)
                if reading is None and cfg.cooldown_seconds > 0:
                    model = net.availability_model
                    if model is not None and model.estimate(sid) < cfg.cooldown_threshold:
                        self._cooldown_until[sid] = pending.now + cfg.cooldown_seconds
                for waiter in pending.rounds:
                    waiter.outstanding.discard(sid)
                    if waiter is rnd:
                        continue
                    if reading is not None:
                        waiter.readings[sid] = reading
                    elif sid in timed_set:
                        waiter.timed_out.append(sid)
                    else:
                        waiter.unavailable.append(sid)
                    if not waiter.outstanding and not waiter.resolved:
                        waiter.resolved = True
            rnd.readings.update(result.readings)
            rnd.unavailable.extend(result.unavailable)
            rnd.timed_out.extend(result.timed_out)
            rnd.latency_seconds = result.latency_seconds
        rnd.outstanding.clear()
        rnd.resolved = True
