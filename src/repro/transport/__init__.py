"""Probe-transport subsystem: the dispatcher that sits between the
portal/tree layers and ``SensorNetwork``, providing in-flight dedup,
retry/backoff/cooldown, overlapping probe rounds and streaming ingestion
(see ``docs/architecture.md`` §6)."""

from repro.transport.config import TransportConfig
from repro.transport.dispatcher import ProbeDispatcher, ProbeRound, TransportStats

__all__ = ["TransportConfig", "ProbeDispatcher", "ProbeRound", "TransportStats"]
