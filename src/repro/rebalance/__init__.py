"""Live shard rebalancing: membership changes without a cold rebuild.

``rebuild_index()`` re-partitions from scratch — every shard stalls,
every slot cache dies, and the next query wave pays a full probe storm.
A deployed portal sees continuous sensor churn (joins, leaves, hotspot
drift), so this package moves membership *incrementally*:

``ShardMover``
    One migration step — move a sensor batch, split an overloaded
    shard, merge a starved one, absorb joins/leaves.  Each step captures
    the affected shards' warm slot-cache entries, stages replacement
    portals off to the side, and commits with a single
    :meth:`~repro.federation.directory.ShardDirectory.refresh` flip:
    a query racing the step sees either the old owner or the new one,
    never both and never neither.  With durable storage the step is
    bracketed by a :mod:`journal <repro.rebalance.journal>` so a crash
    at any point rolls back or forward to a consistent membership.
``Rebalancer``
    The background policy loop: bounded steps (capped sensor batches)
    interleaved with query traffic, triggered by population imbalance
    or query-load skew, in the population-bounded split/merge spirit of
    SampleTree.
``resolve_pending``
    Crash recovery for the coordinator: reads the migration journal and
    returns the consistent membership to rebuild with (via
    ``FixedPartitioner``), wiping any shard directory left on the
    losing side of the flip.

Invariants (pinned by ``tests/rebalance``): every sensor has exactly
one owner at every step; directory MBRs always cover their shard
populations; scatter routing is conservation-exact mid-rebalance; and
Theorem-2 inclusion uniformity holds at any checkpoint during a
migration.
"""

from repro.rebalance.config import RebalanceConfig
from repro.rebalance.journal import MigrationJournal, MigrationResolution, resolve_pending
from repro.rebalance.migration import JoinSpec, MigrationAborted, ShardMover
from repro.rebalance.rebalancer import Rebalancer, StepReport

__all__ = [
    "JoinSpec",
    "MigrationAborted",
    "MigrationJournal",
    "MigrationResolution",
    "RebalanceConfig",
    "Rebalancer",
    "ShardMover",
    "StepReport",
    "resolve_pending",
]
