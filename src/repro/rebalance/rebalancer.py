"""The background rebalancer: bounded steps interleaved with traffic.

``Rebalancer`` is a policy loop over :class:`ShardMover`.  Each
:meth:`step` inspects the live directory, picks at most one bounded
operation — split the overloaded shard, merge the starved one, or move
a capped sensor batch from heaviest to lightest — and executes it as a
single two-phase migration.  Between steps the coordinator is entirely
free to serve queries; during a step it serves them too (the flip is
atomic), so the loop can run interleaved with production traffic.

The triggers follow :class:`~repro.rebalance.config.RebalanceConfig`:
population-based split/merge in SampleTree's population-bounded spirit,
plus an optional *query-load* split trigger fed by
:meth:`note_queries` (hotspot drift concentrates queries before it
concentrates sensors).  :meth:`verify_invariants` asserts the
conservation contract the test harness pins: dense shard ids, exact
weight conservation, the shard groups partitioning the registry, and
every sensor inside its shard's MBR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.rebalance.config import RebalanceConfig
from repro.rebalance.migration import MigrationAborted, ShardMover

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.federated import FederatedPortal

__all__ = ["Rebalancer", "StepReport"]


@dataclass(frozen=True)
class StepReport:
    """What one rebalance step did."""

    op: str  # "move" | "split" | "merge" | "noop" | "aborted"
    detail: str
    moved: int
    directory_version: int


@dataclass
class _Plan:
    op: str
    shards: tuple[int, ...]
    sensor_ids: tuple[int, ...] = ()
    reason: str = ""


class Rebalancer:
    """Population/load-triggered incremental rebalancing."""

    def __init__(
        self,
        fed: "FederatedPortal",
        config: RebalanceConfig | None = None,
        on_phase: Callable[[str], None] | None = None,
    ) -> None:
        self.fed = fed
        self.config = config if config is not None else RebalanceConfig()
        self.mover = ShardMover(fed, on_phase=on_phase)
        self._load: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Load signal (optional trigger input)
    # ------------------------------------------------------------------
    def note_queries(self, shard_ids: Iterable[int]) -> None:
        """Record which shards a query scattered to (hotspot signal)."""
        for shard_id in shard_ids:
            self._load[shard_id] = self._load.get(shard_id, 0) + 1

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def imbalance(self) -> float:
        """Relative population spread ``(max - min) / mean`` over alive
        shards (0.0 when balanced or fewer than two alive shards)."""
        weights = self._alive_weights()
        if len(weights) < 2:
            return 0.0
        mean = sum(w for _, w in weights) / len(weights)
        spread = max(w for _, w in weights) - min(w for _, w in weights)
        return spread / mean if mean > 0 else 0.0

    def plan(self) -> _Plan | None:
        """Pick the next bounded operation, or ``None`` when balanced."""
        cfg = self.config
        fed = self.fed
        weights = self._alive_weights()
        if not weights:
            return None
        mean = fed.directory.total_weight() / len(fed.directory)
        # 1. Population split: heaviest shard beyond the split factor.
        heavy_id, heavy_w = max(weights, key=lambda t: (t[1], -t[0]))
        if heavy_w > cfg.split_factor * mean and heavy_w >= 2 * cfg.min_shard_population:
            return _Plan("split", (heavy_id,), reason=f"population {heavy_w}")
        # 2. Load split: hotspot shard taking an outsized query share.
        if cfg.split_load_factor is not None and self._load:
            total_load = sum(self._load.values())
            mean_load = total_load / len(fed.directory)
            hot = max(
                (s for s in weights if self._load.get(s[0], 0) > 0),
                key=lambda t: (self._load.get(t[0], 0), -t[0]),
                default=None,
            )
            if (
                hot is not None
                and self._load.get(hot[0], 0) > cfg.split_load_factor * mean_load
                and hot[1] >= 2 * cfg.min_shard_population
            ):
                return _Plan(
                    "split", (hot[0],), reason=f"load {self._load[hot[0]]}"
                )
        if len(weights) < 2:
            return None
        # 3. Merge: starved shard folds into the nearest alive shard.
        light_id, light_w = min(weights, key=lambda t: (t[1], t[0]))
        if light_w < cfg.merge_fraction * mean:
            partner = self._nearest_alive(light_id)
            if partner is not None:
                return _Plan(
                    "merge", (light_id, partner), reason=f"population {light_w}"
                )
        # 4. Bounded move from heaviest to lightest.
        gap = heavy_w - light_w
        if mean > 0 and gap / mean > cfg.imbalance_tolerance and gap >= 2:
            batch = min(cfg.max_moves_per_step, gap // 2)
            batch = min(batch, heavy_w - cfg.min_shard_population)
            if batch >= 1:
                movers = self._pick_movers(heavy_id, light_id, batch)
                if movers:
                    return _Plan(
                        "move",
                        (heavy_id, light_id),
                        sensor_ids=tuple(movers),
                        reason=f"gap {gap}",
                    )
        return None

    def step(self) -> StepReport:
        """Plan and execute one bounded operation."""
        plan = self.plan()
        fed = self.fed
        if plan is None:
            return StepReport("noop", "balanced", 0, fed.directory.version)
        self._load = {}
        try:
            if plan.op == "split":
                new_id = self.mover.split(plan.shards[0])
                detail = f"split shard {plan.shards[0]} -> {new_id} ({plan.reason})"
                moved = fed.directory.entry(new_id).weight
            elif plan.op == "merge":
                kept = self.mover.merge(plan.shards[0], plan.shards[1])
                detail = (
                    f"merge shard {plan.shards[0]}+{plan.shards[1]} -> {kept}"
                    f" ({plan.reason})"
                )
                moved = fed.directory.entry(kept).weight
            else:
                movers = self.mover.move(
                    plan.sensor_ids, plan.shards[0], plan.shards[1]
                )
                detail = (
                    f"move {len(movers)} sensors {plan.shards[0]} -> "
                    f"{plan.shards[1]} ({plan.reason})"
                )
                moved = len(movers)
        except MigrationAborted as exc:
            return StepReport("aborted", str(exc), 0, fed.directory.version)
        return StepReport(plan.op, detail, moved, fed.directory.version)

    def run(self, max_steps: int = 16) -> list[StepReport]:
        """Run bounded steps until balanced (or the step cap)."""
        reports: list[StepReport] = []
        for _ in range(max_steps):
            report = self.step()
            if report.op in ("noop", "aborted"):
                if report.op == "aborted":
                    reports.append(report)
                break
            reports.append(report)
        return reports

    # ------------------------------------------------------------------
    # Invariants (the contract the test harness pins)
    # ------------------------------------------------------------------
    def verify_invariants(self) -> None:
        """Raise ``AssertionError`` unless the conservation contract
        holds: dense ids, exact weight conservation, the shard groups
        partitioning the registry, MBRs covering their populations."""
        fed = self.fed
        directory = fed.directory
        n = len(directory)
        assert n == len(fed.shards()), "directory/shard count mismatch"
        seen: dict[int, int] = {}
        total = 0
        for shard_id in range(n):
            entry = directory.entry(shard_id)
            assert entry.shard_id == shard_id, "shard ids must stay dense"
            group = fed.shard_members(shard_id)
            assert len(group) == entry.weight, (
                f"shard {shard_id} weight {entry.weight} != population {len(group)}"
            )
            total += entry.weight
            types = {s.sensor_type for s in group}
            assert types == set(entry.sensor_types), (
                f"shard {shard_id} directory types out of date"
            )
            for sensor in group:
                assert sensor.sensor_id not in seen, (
                    f"sensor {sensor.sensor_id} owned by shards "
                    f"{seen[sensor.sensor_id]} and {shard_id}"
                )
                seen[sensor.sensor_id] = shard_id
                assert entry.mbr.contains_point(sensor.location), (
                    f"sensor {sensor.sensor_id} outside shard {shard_id} MBR"
                )
        assert total == directory.total_weight()
        registry_ids = {s.sensor_id for s in fed.registry}
        assert set(seen) == registry_ids, (
            "shard groups do not partition the registry: "
            f"{len(seen)} owned vs {len(registry_ids)} registered"
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _alive_weights(self) -> list[tuple[int, int]]:
        fed = self.fed
        return [
            (shard_id, fed.directory.entry(shard_id).weight)
            for shard_id in range(len(fed.directory))
            if not fed._states[shard_id].killed  # noqa: SLF001
        ]

    def _nearest_alive(self, shard_id: int) -> int | None:
        fed = self.fed
        center = fed.directory.entry(shard_id).mbr.center
        best: tuple[float, int] | None = None
        for other_id, _ in self._alive_weights():
            if other_id == shard_id:
                continue
            other = fed.directory.entry(other_id).mbr.center
            d2 = (other.x - center.x) ** 2 + (other.y - center.y) ** 2
            if best is None or (d2, other_id) < best:
                best = (d2, other_id)
        return best[1] if best is not None else None

    def _pick_movers(self, src: int, dst: int, batch: int) -> list[int]:
        """The ``batch`` source sensors nearest the destination MBR
        center — moves erode the heavy shard from the edge facing the
        light one, keeping both MBRs compact."""
        fed = self.fed
        target = fed.directory.entry(dst).mbr.center
        group = fed.shard_members(src)
        ordered = sorted(
            group,
            key=lambda s: (
                (s.location.x - target.x) ** 2 + (s.location.y - target.y) ** 2,
                s.sensor_id,
            ),
        )
        return [s.sensor_id for s in ordered[:batch]]
