"""The migration journal: crash atomicity for the two-phase flip.

A durable migration mutates two or more shard data directories *and*
the (in-memory) shard directory.  A crash can land anywhere in between,
so every step writes one journal file under the federation's data
directory before touching disk:

``intent``
    Written before staging.  Both ``before`` and ``after`` membership
    maps are recorded.  A crash here (or anywhere during staging, while
    target directories are being wiped/rebuilt) **rolls back**: the
    ``before`` map is authoritative, and any shard directory whose
    stored sensor set disagrees is wiped — it rebuilds cold but
    consistent, with no orphaned or duplicated sensors.
``prepared``
    Advanced once every staged shard has been rebuilt and checkpointed
    under its new membership, immediately before the directory flip.
    From here the step **rolls forward**: the ``after`` map is
    authoritative.
``committed``
    Advanced after the flip; cleared when the step finishes.  Recovery
    treats it exactly like ``prepared`` (roll forward) — the flip is
    coordinator state that a restart rebuilds from the map anyway.

:func:`resolve_pending` performs that resolution on reopen and returns
the authoritative ``sensor id -> shard id`` assignment, which callers
feed to :class:`~repro.federation.partitioner.FixedPartitioner` to
rebuild the federation with exactly the membership the crash decided.

The journal file itself is written atomically (tmp + ``os.replace`` +
directory-order fsync), so recovery never sees a torn journal.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.config import StorageConfig

__all__ = ["JOURNAL_NAME", "MigrationJournal", "MigrationResolution", "resolve_pending"]

JOURNAL_NAME = "rebalance-journal.json"

#: Phases whose crash resolution is roll-forward (the staged state won).
_FORWARD_PHASES = frozenset({"prepared", "committed"})


def _atomic_write(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    with open(tmp, "rb") as handle:
        os.fsync(handle.fileno())
    os.replace(tmp, path)


@dataclass
class MigrationJournal:
    """One step's write-ahead intent record.

    ``before``/``after`` map shard id -> sorted sensor ids (complete
    membership of every shard the step touches is *not* enough — the
    maps carry the full fleet so recovery can rebuild the whole
    federation from either side of the flip).
    """

    root: Path
    op: str = "move"
    phase: str = "intent"
    before: dict[int, list[int]] = field(default_factory=dict)
    after: dict[int, list[int]] = field(default_factory=dict)

    @property
    def path(self) -> Path:
        return self.root / JOURNAL_NAME

    def write_intent(
        self,
        op: str,
        before: Mapping[int, Sequence[int]],
        after: Mapping[int, Sequence[int]],
    ) -> None:
        self.op = op
        self.phase = "intent"
        self.before = {int(k): sorted(int(i) for i in v) for k, v in before.items()}
        self.after = {int(k): sorted(int(i) for i in v) for k, v in after.items()}
        self._flush()

    def advance(self, phase: str) -> None:
        if phase not in ("prepared", "committed"):
            raise ValueError(f"cannot advance to {phase!r}")
        self.phase = phase
        self._flush()

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)

    def _flush(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self.path,
            {
                "op": self.op,
                "phase": self.phase,
                "before": {str(k): v for k, v in self.before.items()},
                "after": {str(k): v for k, v in self.after.items()},
            },
        )


@dataclass(frozen=True)
class MigrationResolution:
    """What recovery decided about an interrupted migration."""

    op: str
    phase: str
    action: str  # "rolled_back" | "rolled_forward"
    membership: dict[int, list[int]]
    wiped_shards: tuple[int, ...]

    @property
    def assignment(self) -> dict[int, int]:
        """``sensor id -> shard id`` for ``FixedPartitioner``."""
        return {
            sensor_id: shard_id
            for shard_id, ids in self.membership.items()
            for sensor_id in ids
        }

    @property
    def n_shards(self) -> int:
        return len(self.membership)


def resolve_pending(storage: "StorageConfig") -> MigrationResolution | None:
    """Resolve an interrupted migration on reopen, if one is pending.

    Reads the journal under ``storage.data_dir``; picks the winning
    membership map by phase (``intent`` rolls back, ``prepared``/
    ``committed`` roll forward); wipes every shard directory whose
    durable sensor set disagrees with the winner (it will rebuild cold
    but never orphaned/duplicated) plus any directory for a shard id
    the winner does not know; clears the journal.  Returns ``None``
    when no migration was in flight.
    """
    from repro.storage.engine import stored_sensor_ids, wipe_data_dir

    path = storage.path / JOURNAL_NAME
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except ValueError:
        # A torn journal is impossible via _atomic_write; a hand-damaged
        # one means the step never reached "prepared" — roll back by
        # discarding it (the before-state dirs were untouched at intent
        # write time).
        path.unlink(missing_ok=True)
        return None
    phase = str(payload.get("phase", "intent"))
    forward = phase in _FORWARD_PHASES
    winner_raw = payload["after"] if forward else payload["before"]
    membership = {int(k): [int(i) for i in v] for k, v in winner_raw.items()}
    wiped: list[int] = []
    for shard_id, ids in sorted(membership.items()):
        shard_cfg = storage.for_shard(shard_id)
        stored = stored_sensor_ids(shard_cfg)
        if stored and stored != set(ids):
            wipe_data_dir(shard_cfg.path)
            wiped.append(shard_id)
    # Shard ids beyond the winner's count (a dropped merge slot, a
    # half-staged split target) are stale regardless of content.
    shard_id = len(membership)
    while True:
        shard_cfg = storage.for_shard(shard_id)
        if not shard_cfg.path.exists():
            break
        wipe_data_dir(shard_cfg.path)
        wiped.append(shard_id)
        shard_id += 1
    path.unlink(missing_ok=True)
    return MigrationResolution(
        op=str(payload.get("op", "move")),
        phase=phase,
        action="rolled_forward" if forward else "rolled_back",
        membership=membership,
        wiped_shards=tuple(wiped),
    )
