"""Rebalancer policy knobs."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RebalanceConfig"]


@dataclass(frozen=True)
class RebalanceConfig:
    """Bounds and triggers for the background rebalancer.

    A step never moves more than ``max_moves_per_step`` sensors, so the
    coordinator-side work interleaved with query traffic is bounded.
    Split/merge triggers follow the population-bounded discipline: a
    shard heavier than ``split_factor`` x the mean population splits, a
    shard lighter than ``merge_fraction`` x the mean merges into its
    nearest neighbour.  ``imbalance_tolerance`` is the stopping rule
    for plain moves — within that relative spread the fleet counts as
    balanced.  ``split_load_factor``, when set, adds a *query-load*
    trigger: a shard whose share of scatter subqueries exceeds that
    multiple of the mean splits even if its population is balanced
    (hotspot drift concentrates queries, not sensors).
    """

    max_moves_per_step: int = 64
    split_factor: float = 2.0
    merge_fraction: float = 0.25
    imbalance_tolerance: float = 0.10
    min_shard_population: int = 1
    split_load_factor: float | None = None

    def __post_init__(self) -> None:
        if self.max_moves_per_step < 1:
            raise ValueError("max_moves_per_step must be at least 1")
        if self.split_factor <= 1.0:
            raise ValueError("split_factor must exceed 1.0")
        if not 0.0 < self.merge_fraction < 1.0:
            raise ValueError("merge_fraction must be in (0, 1)")
        if self.imbalance_tolerance < 0.0:
            raise ValueError("imbalance_tolerance must be non-negative")
        if self.min_shard_population < 1:
            raise ValueError("min_shard_population must be at least 1")
        if self.split_load_factor is not None and self.split_load_factor <= 1.0:
            raise ValueError("split_load_factor must exceed 1.0")
