"""One migration step: capture → stage → two-phase flip.

``ShardMover`` executes a single membership change end-to-end against a
:class:`~repro.federation.federated.FederatedPortal` (either backend).
All five operations — ``move``, ``split``, ``merge``, ``absorb_joins``,
``absorb_leaves`` — reduce to one engine, :meth:`ShardMover._retarget`:

1. **Capture.**  Export the warm slot-cache entries of every shard
   whose membership changes (over the op pipe on the process backend).
   A killed shard aborts the step *before anything is mutated*
   (:class:`MigrationAborted`).
2. **Journal intent** (durable federations): the full before/after
   membership maps hit ``rebalance-journal.json`` before any data
   directory is touched, so a crash rolls back cleanly
   (:func:`repro.rebalance.journal.resolve_pending`).
3. **Stage.**  Replacement shard portals are built off to the side and
   primed with the captured entries under their *original* fetch
   stamps — moved sensors arrive warm, not cold.  The old portals and
   the old directory keep serving queries throughout.
4. **Flip.**  The journal advances to ``prepared``; then the commit
   installs the staged portals and refreshes the directory with one
   atomic row-list swap.  A query racing the step sees either the old
   owner or the new one — never both, never neither — and scatter
   target splitting stays conservation-exact because every directory
   it can observe sums its weights to the full fleet.

Shard ids stay dense: ``split`` appends the next id, ``merge`` and
emptied-by-leave shards are compacted by *swap-remove* (the last shard
renumbers into the vacated slot), so only the touched shards rebuild.

``failpoint`` is a test hook called at named points (``"captured"``,
``"intent"``, ``"prepared"``); it may raise to simulate a coordinator
crash between the phases, or SIGKILL a worker out-of-band.  A failpoint
that raises leaves the *in-memory* coordinator un-flipped (old
membership — consistent); a durable federation is recovered from the
journal instead of reusing the object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.federation.federated import ShardDownError
from repro.geometry import GeoPoint
from repro.rebalance.journal import MigrationJournal
from repro.sensors.sensor import Sensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.federated import FederatedPortal

__all__ = ["JoinSpec", "MigrationAborted", "ShardMover"]


class MigrationAborted(RuntimeError):
    """The step could not start (e.g. an affected shard is down);
    nothing was mutated."""


@dataclass(frozen=True)
class JoinSpec:
    """A sensor joining the fleet mid-flight (churn workload unit)."""

    location: GeoPoint
    expiry_seconds: float
    sensor_type: str = "generic"
    availability: float = 1.0


def _canon(group: Iterable[Sensor]) -> list[Sensor]:
    """Canonical shard group order: ascending sensor id (the same order
    a partitioner-driven rebuild would produce)."""
    return sorted(group, key=lambda s: s.sensor_id)


class ShardMover:
    """Executes one bounded membership change against a federation."""

    def __init__(
        self,
        fed: "FederatedPortal",
        on_phase: Callable[[str], None] | None = None,
        failpoint: Callable[[str], None] | None = None,
    ) -> None:
        self.fed = fed
        self.on_phase = on_phase
        self.failpoint = failpoint

    # ------------------------------------------------------------------
    # Operations (all reduce to _retarget)
    # ------------------------------------------------------------------
    def move(
        self, sensor_ids: Sequence[int], src: int, dst: int
    ) -> list[Sensor]:
        """Move a sensor batch from ``src`` to ``dst``.  Returns the
        moved sensors."""
        fed = self.fed
        n = fed.n_shards
        if src == dst:
            raise ValueError("src and dst shards must differ")
        if not 0 <= src < n or not 0 <= dst < n:
            raise ValueError(f"shard out of range (have {n})")
        moving = set(sensor_ids)
        if not moving:
            return []
        groups = [fed.shard_members(i) for i in range(n)]
        src_ids = {s.sensor_id for s in groups[src]}
        if not moving <= src_ids:
            raise ValueError("some sensors are not owned by the source shard")
        if moving == src_ids:
            raise ValueError("move would empty the source shard; use merge()")
        movers = [s for s in groups[src] if s.sensor_id in moving]
        groups[src] = [s for s in groups[src] if s.sensor_id not in moving]
        groups[dst] = groups[dst] + movers
        return self._retarget("move", groups)

    def split(self, shard_id: int) -> int:
        """Split one shard at the population median along its wider MBR
        axis (SampleTree's population-bounded discipline, one level up).
        The new half keeps spatial coherence so MBR routing stays
        selective.  Returns the new shard's id."""
        fed = self.fed
        n = fed.n_shards
        group = fed.shard_members(shard_id)
        if len(group) < 2:
            raise ValueError("cannot split a shard with fewer than 2 sensors")
        mbr = fed.directory.entry(shard_id).mbr
        if (mbr.max_x - mbr.min_x) >= (mbr.max_y - mbr.min_y):
            key = lambda s: (s.location.x, s.location.y, s.sensor_id)  # noqa: E731
        else:
            key = lambda s: (s.location.y, s.location.x, s.sensor_id)  # noqa: E731
        ordered = sorted(group, key=key)
        half = len(ordered) // 2
        groups = [fed.shard_members(i) for i in range(n)]
        groups[shard_id] = ordered[:half]
        groups.append(ordered[half:])
        self._retarget("split", groups)
        return n

    def merge(self, a: int, b: int) -> int:
        """Merge two shards; the combined population lives at
        ``min(a, b)``.  The last shard renumbers into the vacated slot
        (swap-remove) so ids stay dense.  Returns the surviving id."""
        fed = self.fed
        n = fed.n_shards
        if a == b:
            raise ValueError("cannot merge a shard with itself")
        if not 0 <= a < n or not 0 <= b < n:
            raise ValueError(f"shard out of range (have {n})")
        if n < 2:
            raise ValueError("nothing to merge")
        keep, other = min(a, b), max(a, b)
        groups = [fed.shard_members(i) for i in range(n)]
        groups[keep] = groups[keep] + groups[other]
        last = groups.pop()
        if other < len(groups):
            groups[other] = last
        self._retarget("merge", groups)
        return keep

    def absorb_joins(self, specs: Sequence[JoinSpec]) -> list[Sensor]:
        """Register joining sensors and migrate them into the spatially
        best shard — the one whose MBR contains them (ties to the
        lightest), else the nearest MBR.  No full rebuild: only the
        receiving shards restage."""
        fed = self.fed
        if not specs:
            return []
        n = fed.n_shards  # forces the index before registry mutation
        joined = [
            fed.registry.register(
                spec.location,
                spec.expiry_seconds,
                sensor_type=spec.sensor_type,
                availability=spec.availability,
            )
            for spec in specs
        ]
        groups = [fed.shard_members(i) for i in range(n)]
        for sensor in joined:
            groups[self._place(sensor.location)].append(sensor)
        self._retarget("join", groups)
        return joined

    def absorb_leaves(self, sensor_ids: Sequence[int]) -> list[int]:
        """Withdraw sensors from the fleet.  A shard emptied by leaves
        is compacted away by swap-remove.  Returns the ids removed."""
        fed = self.fed
        leaving = set(sensor_ids)
        if not leaving:
            return []
        n = fed.n_shards
        groups = [fed.shard_members(i) for i in range(n)]
        owned = {s.sensor_id for g in groups for s in g}
        if not leaving <= owned:
            raise ValueError("some leaving sensors are not in the fleet")
        if leaving == owned:
            raise ValueError("leaves would empty the whole fleet")
        groups = [[s for s in g if s.sensor_id not in leaving] for g in groups]
        # Swap-remove emptied slots so shard ids stay dense.
        i = 0
        while i < len(groups):
            if groups[i]:
                i += 1
                continue
            last = groups.pop()
            if i < len(groups):
                groups[i] = last
        for sensor_id in sorted(leaving):
            fed.registry.unregister(sensor_id)
        self._retarget("leave", groups)
        return sorted(leaving)

    # ------------------------------------------------------------------
    # The engine
    # ------------------------------------------------------------------
    def _retarget(self, op: str, final_groups: list[list[Sensor]]) -> list[Sensor]:
        """Drive the fleet from its current membership to
        ``final_groups`` in one two-phase step.  Returns the sensors
        whose owner changed."""
        fed = self.fed
        current_n = fed.n_shards
        current = [fed.shard_members(i) for i in range(current_n)]
        current_ids = [{s.sensor_id for s in g} for g in current]
        owner_of = {
            s.sensor_id: sid for sid, g in enumerate(current) for s in g
        }
        final_groups = [_canon(g) for g in final_groups]
        if not final_groups or any(not g for g in final_groups):
            raise ValueError("a rebalance step may not leave an empty shard")
        changes = {
            sid: g
            for sid, g in enumerate(final_groups)
            if sid >= current_n or {s.sensor_id for s in g} != current_ids[sid]
        }
        drop = list(range(len(final_groups), current_n))
        if not changes and not drop:
            return []
        # Capture phase: warm cache entries of every sensor landing in
        # a restaged shard, exported from its *current* owner.  Killed
        # owners or targets abort before any mutation.
        for sid in changes:
            if sid < current_n and fed._states[sid].killed:  # noqa: SLF001
                raise MigrationAborted(f"target shard {sid} is down")
        owners_needed: dict[int, set[int]] = {}
        for sid, g in changes.items():
            for s in g:
                owner = owner_of.get(s.sensor_id)
                if owner is not None:
                    owners_needed.setdefault(owner, set()).add(s.sensor_id)
        captured: dict[int, list] = {}
        for owner in sorted(owners_needed):
            try:
                captured[owner] = fed.rebalance_capture(
                    owner, sorted(owners_needed[owner])
                )
            except ShardDownError as exc:
                raise MigrationAborted(
                    f"source shard {owner} is down"
                ) from exc
        self._fail("captured")
        target_ids = {sid: {s.sensor_id for s in g} for sid, g in changes.items()}
        primed = {
            sid: [
                entry
                for owner in sorted(captured)
                for entry in captured[owner]
                if entry[0].sensor_id in ids
            ]
            for sid, ids in target_ids.items()
        }
        journal = self._journal()
        if journal is not None:
            journal.write_intent(
                op,
                before={sid: [s.sensor_id for s in g] for sid, g in enumerate(current)},
                after={
                    sid: [s.sensor_id for s in g]
                    for sid, g in enumerate(final_groups)
                },
            )
        self._fail("intent")

        def on_staged() -> None:
            if journal is not None:
                journal.advance("prepared")
            self._fail("prepared")
            self._emit("prepared")

        fed.rebalance_apply(changes, primed=primed, drop=drop, on_staged=on_staged)
        if journal is not None:
            journal.advance("committed")
            journal.clear()
        moved = [
            s
            for sid, g in enumerate(final_groups)
            for s in g
            if owner_of.get(s.sensor_id) != sid
        ]
        fed.notify_rebalance(moved)
        self._emit("committed")
        return moved

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _place(self, location: GeoPoint) -> int:
        """The best shard for a fresh join: containing MBR with the
        smallest population, else the nearest MBR edge."""
        entries = self.fed.directory.entries()
        containing = [e for e in entries if e.mbr.contains_point(location)]
        if containing:
            return min(containing, key=lambda e: (e.weight, e.shard_id)).shard_id

        def gap(e) -> float:
            dx = max(e.mbr.min_x - location.x, 0.0, location.x - e.mbr.max_x)
            dy = max(e.mbr.min_y - location.y, 0.0, location.y - e.mbr.max_y)
            return dx * dx + dy * dy

        return min(entries, key=lambda e: (gap(e), e.shard_id)).shard_id

    def _journal(self) -> MigrationJournal | None:
        if self.fed.storage_config is None:
            return None
        return MigrationJournal(self.fed.storage_config.path)

    def _emit(self, phase: str) -> None:
        if self.on_phase is not None:
            self.on_phase(phase)

    def _fail(self, point: str) -> None:
        if self.failpoint is not None:
            self.failpoint(point)
