"""Run a query stream against a system under test and meter everything.

All four evaluated systems — flat cache, plain R-tree, hierarchical
cache, full COLR-Tree (and the relational implementation) — expose the
same ``query(region, now, max_staleness, sample_size)`` →
:class:`~repro.core.lookup.QueryAnswer` surface, so one harness drives
every experiment.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

from repro.core.lookup import QueryAnswer, Region
from repro.core.stats import ProcessingCostModel, QueryStats
from repro.workloads.livelocal import QuerySpec


class StreamSummary:
    """Order statistics over one metered series (latencies, errors...).

    Every bench that reports a latency distribution goes through this
    instead of ad-hoc ``np.percentile`` calls, so p50/p95/p99 mean the
    same thing in every ``BENCH_*.json``: linear interpolation between
    closest ranks (numpy's default), computed over the full retained
    series — these benches meter thousands of queries, not billions, so
    an exact summary is cheaper than a sketch would be.
    """

    __slots__ = ("_sorted",)

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._sorted = sorted(float(v) for v in values)

    def add(self, value: float) -> None:
        """Insert one observation, keeping the series sorted (bench
        series stay small enough that insort's O(n) shift is noise)."""
        bisect.insort(self._sorted, float(value))

    def extend(self, values: Iterable[float]) -> None:
        self._sorted = sorted(self._sorted + [float(v) for v in values])

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        if not self._sorted:
            raise ValueError("no observations")
        return sum(self._sorted) / len(self._sorted)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linearly interpolated
        between closest ranks — value-identical to
        ``numpy.percentile(values, p)`` for finite inputs."""
        if not self._sorted:
            raise ValueError("no observations")
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        xs = self._sorted
        rank = (p / 100.0) * (len(xs) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return xs[int(rank)]
        frac = rank - lo
        return xs[lo] + frac * (xs[hi] - xs[lo])

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def as_dict(self) -> dict[str, float | int]:
        """The JSON-artifact shape every bench embeds."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class SystemUnderTest(Protocol):
    """What the harness needs from an evaluated system."""

    def query(
        self,
        region: Region,
        now: float,
        max_staleness: float,
        sample_size: int | None = None,
    ) -> QueryAnswer: ...

    def processing_seconds(self, stats: QueryStats) -> float: ...


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """Per-query metering."""

    at_time: float
    sensors_probed: int
    probe_successes: int
    nodes_traversed: int
    cached_nodes_accessed: int
    maintenance_ops: int
    readings_scanned: int
    result_weight: int
    processing_seconds: float
    collection_seconds: float
    target_size: int
    terminal_count: int
    terminal_pde: float

    @property
    def end_to_end_seconds(self) -> float:
        return self.processing_seconds + self.collection_seconds


@dataclass
class RunResult:
    """A full stream run."""

    records: list[QueryRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def mean(self, attribute: str) -> float:
        if not self.records:
            raise ValueError("no records")
        return sum(getattr(r, attribute) for r in self.records) / len(self.records)

    def total(self, attribute: str) -> float:
        return sum(getattr(r, attribute) for r in self.records)

    def summary(self, attribute: str) -> StreamSummary:
        """Order statistics over one per-query attribute."""
        return StreamSummary(getattr(r, attribute) for r in self.records)


def run_query_stream(
    system: SystemUnderTest,
    queries: Sequence[QuerySpec],
    sample_size: int | None = None,
    use_sampling: bool = True,
) -> RunResult:
    """Drive every query through the system in arrival order.

    ``sample_size`` overrides the per-query target when given;
    ``use_sampling=False`` forces exact lookups regardless of targets
    (baselines ignore the target anyway).
    """
    result = RunResult()
    for spec in queries:
        target = sample_size if sample_size is not None else spec.sample_size
        effective = target if use_sampling else 0
        answer = system.query(
            spec.region,
            now=spec.at_time,
            max_staleness=spec.staleness_seconds,
            sample_size=effective,
        )
        stats = answer.stats
        result.records.append(
            QueryRecord(
                at_time=spec.at_time,
                sensors_probed=stats.sensors_probed,
                probe_successes=stats.probe_successes,
                nodes_traversed=stats.nodes_traversed,
                cached_nodes_accessed=stats.cached_nodes_accessed,
                maintenance_ops=stats.maintenance_ops,
                readings_scanned=stats.readings_scanned,
                result_weight=answer.result_weight,
                processing_seconds=system.processing_seconds(stats),
                collection_seconds=stats.collection_latency_seconds,
                target_size=target,
                terminal_count=len(answer.terminals),
                terminal_pde=probe_discretization_error(answer),
            )
        )
    return result


def probe_discretization_error(answer: QueryAnswer) -> float:
    """Figure 6's per-query probe discretization error.

    Mean over terminal access points of ``(target - results) / target``
    — positive when terminals under-deliver, negative when cached
    aggregates over-deliver (the cache-induced spatial bias the paper
    discusses).  Terminals with a zero target are skipped.
    """
    terms = [
        (t.target - t.results) / t.target for t in answer.terminals if t.target > 0
    ]
    if not terms:
        return 0.0
    return sum(terms) / len(terms)


def target_accuracy(
    result_weight: int, target_size: int, unsampled_result_size: int
) -> float:
    """Figure 6's target accuracy for one query:
    ``min(target, achieved) / min(target, unsampled)``, where
    *achieved* counts every sensor represented in the answer (probed or
    cache-served).  1.0 when the region holds no sensors."""
    denom = min(target_size, unsampled_result_size)
    if denom <= 0:
        return 1.0
    return min(target_size, result_weight) / denom
