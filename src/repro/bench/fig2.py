"""Figure 2 — utility/cost ratio vs slot size per expiry workload.

Reproduces the sweep of Section IV-C under the calibrated reference
workload: three expiry profiles (Uniform / USGS-like / Weather-like),
ratio curves over a Δ grid, and the per-workload optimum.  The paper
reports optima of 0.5 (Uniform), 0.8 (USGS) and 0.2 (Weather).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.report import WallTimer, format_table
from repro.core.slot_sizing import (
    FIG2_WORKLOAD,
    SlotSizeModel,
    default_delta_grid,
    optimal_slot_size,
)
from repro.workloads.expiry import (
    uniform_expiry,
    usgs_like_expiry,
    weather_like_expiry,
)

PAPER_OPTIMA = {"uniform": 0.5, "usgs": 0.8, "weather": 0.2}


@dataclass
class Fig2Result:
    deltas: list[float]
    curves: dict[str, list[float]]
    optima: dict[str, float]
    wall_seconds: float = 0.0

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for i, d in enumerate(self.deltas):
            out.append([d] + [self.curves[name][i] for name in sorted(self.curves)])
        return out

    def format_table(self) -> str:
        headers = ["delta"] + sorted(self.curves)
        table = format_table(
            headers,
            self.rows(),
            title="Figure 2: utility/cost vs slot size",
            wall_seconds=self.wall_seconds,
        )
        optima = ", ".join(
            f"{name}: Δ*={self.optima[name]:.2f} (paper {PAPER_OPTIMA[name]:.1f})"
            for name in sorted(self.optima)
        )
        return f"{table}\noptima — {optima}"


def run_fig2(n_samples: int = 4000, seed: int = 3) -> Fig2Result:
    """Sweep the Δ grid for all three expiry workloads."""
    with WallTimer() as timer:
        profiles = {
            "uniform": uniform_expiry(n_samples, seed=seed),
            "usgs": usgs_like_expiry(n_samples, seed=seed),
            "weather": weather_like_expiry(n_samples, seed=seed),
        }
        deltas = default_delta_grid()
        curves: dict[str, list[float]] = {}
        optima: dict[str, float] = {}
        for name, samples in profiles.items():
            model = SlotSizeModel(
                expiry_samples=tuple(float(x) for x in samples), **FIG2_WORKLOAD
            )
            curves[name] = [model.ratio(d) for d in deltas]
            optima[name] = optimal_slot_size(model, deltas)
    return Fig2Result(
        deltas=deltas, curves=curves, optima=optima, wall_seconds=timer.seconds
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_fig2().format_table())
