"""Figure 3 — internal node traversal vs ideal result-set size.

Three configurations over the Live-Local-like stream: plain R-tree,
hierarchical cache, full COLR-Tree.  Queries are binned by the exact
number of sensors inside their region; the main plot is mean nodes
traversed per bin, the nested plot mean cached nodes accessed.

Paper shape: R-tree traversal grows linearly with result size;
hierarchical cache and COLR-Tree traverse similarly few nodes, with
COLR-Tree touching 5-8x fewer cached nodes than the hierarchical cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.binning import Bin, bin_by_result_size, ideal_result_sizes
from repro.bench.harness import run_query_stream
from repro.bench.report import WallTimer, format_table
from repro.bench.setup import EvalSetup


@dataclass
class Fig3Result:
    traversal_bins: dict[str, list[Bin]]
    cached_bins: dict[str, list[Bin]]
    mean_traversed: dict[str, float]
    mean_cached: dict[str, float]
    wall_seconds: float = 0.0

    def format_table(self) -> str:
        rows = []
        for name, bins in sorted(self.traversal_bins.items()):
            for b in bins:
                rows.append([name, b.low, b.high, b.n_queries, b.mean_value])
        main = format_table(
            ["system", "size_low", "size_high", "queries", "nodes_traversed"],
            rows,
            title="Figure 3: node traversal vs ideal result size",
        )
        nested_rows = [
            [name, self.mean_cached[name]] for name in sorted(self.mean_cached)
        ]
        nested = format_table(
            ["system", "mean_cached_nodes"],
            nested_rows,
            title="Figure 3 (nested): cached nodes accessed",
            wall_seconds=self.wall_seconds,
        )
        return f"{main}\n\n{nested}"


def run_fig3(setup: EvalSetup | None = None, n_bins: int = 8) -> Fig3Result:
    """Run the three configurations over one stream and bin traversal."""
    setup = setup if setup is not None else EvalSetup()
    with WallTimer() as timer:
        sizes = ideal_result_sizes(setup.sensors, setup.queries)

        systems = {
            "rtree": (setup.make_plain_rtree(), False),
            "hier_cache": (setup.make_hierarchical_cache(), False),
            "colr_tree": (setup.make_colr_tree(), True),
        }
        traversal: dict[str, list[float]] = {}
        cached: dict[str, list[float]] = {}
        for name, (system, sampling) in systems.items():
            run = run_query_stream(system, setup.queries, use_sampling=sampling)
            traversal[name] = [r.nodes_traversed for r in run.records]
            # The nested plot charges each configuration with its total
            # cache work: lookups plus per-reading maintenance touches.
            # The hierarchical cache inserts every probed reading, COLR-Tree
            # only its samples — the source of the paper's 5-8x gap.
            cached[name] = [
                r.cached_nodes_accessed + r.maintenance_ops for r in run.records
            ]

    return Fig3Result(
        wall_seconds=timer.seconds,
        traversal_bins={
            name: bin_by_result_size(sizes, values, n_bins)
            for name, values in traversal.items()
        },
        cached_bins={
            name: bin_by_result_size(sizes, values, n_bins)
            for name, values in cached.items()
        },
        mean_traversed={
            name: float(np.mean(values)) for name, values in traversal.items()
        },
        mean_cached={name: float(np.mean(values)) for name, values in cached.items()},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_fig3().format_table())
