"""Result-set-size binning for Figure 3.

The paper bins queries by their *ideal result set size* (the number of
sensors inside the query region, regardless of sampling or caching) and
plots per-bin averages.  ``ideal_result_sizes`` computes the exact
counts with vectorized point-in-rectangle tests; ``bin_by_result_size``
builds logarithmic bins and averages an arbitrary metric per bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.sensors.sensor import Sensor
from repro.workloads.livelocal import QuerySpec


def ideal_result_sizes(
    sensors: Sequence[Sensor], queries: Sequence[QuerySpec]
) -> np.ndarray:
    """Exact sensor count inside each query's rectangle."""
    if not sensors:
        return np.zeros(len(queries), dtype=np.int64)
    xs = np.array([s.location.x for s in sensors])
    ys = np.array([s.location.y for s in sensors])
    out = np.empty(len(queries), dtype=np.int64)
    for i, spec in enumerate(queries):
        r = spec.region
        mask = (xs >= r.min_x) & (xs <= r.max_x) & (ys >= r.min_y) & (ys <= r.max_y)
        out[i] = int(mask.sum())
    return out


@dataclass(frozen=True, slots=True)
class Bin:
    """One result-size bin with the averaged metric."""

    low: int
    high: int
    n_queries: int
    mean_value: float


def bin_by_result_size(
    sizes: np.ndarray,
    values: Sequence[float],
    n_bins: int = 8,
) -> list[Bin]:
    """Average ``values`` in logarithmic result-size bins.

    Queries with zero ideal results are collected into a dedicated
    [0, 0] bin; the rest use log-spaced edges from 1 to the max size.
    """
    if len(sizes) != len(values):
        raise ValueError("sizes and values must align")
    if len(sizes) == 0:
        return []
    values_arr = np.asarray(values, dtype=np.float64)
    bins: list[Bin] = []
    zero_mask = sizes == 0
    if zero_mask.any():
        bins.append(
            Bin(0, 0, int(zero_mask.sum()), float(values_arr[zero_mask].mean()))
        )
    nonzero = sizes[~zero_mask]
    if nonzero.size == 0:
        return bins
    top = max(2, int(nonzero.max()))
    edges = np.unique(
        np.round(np.logspace(0, np.log10(top), n_bins + 1)).astype(np.int64)
    )
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (~zero_mask) & (sizes >= low) & (sizes < high if high != edges[-1] else sizes <= high)
        if mask.any():
            bins.append(
                Bin(int(low), int(high), int(mask.sum()), float(values_arr[mask].mean()))
            )
    return bins


def binned_series(
    sizes: np.ndarray,
    metric_by_system: dict[str, Sequence[float]],
    n_bins: int = 8,
) -> dict[str, list[Bin]]:
    """Bin one metric for several systems over the same query stream."""
    return {
        name: bin_by_result_size(sizes, values, n_bins)
        for name, values in metric_by_system.items()
    }
