"""Figure 5 — cache size constraint x sample size sweeps.

Varies the global cache limit (16-32% of the sensor population) and the
query sample target (100 / 1,000 / 10,000) and reports per-cell mean
sensor probes, processing latency and internal nodes traversed.

Paper shape: at large sample sizes, growing the cache helps every
metric; at small sample sizes the cache limit barely matters; and as
the cache limit grows, the sample size's effect diminishes (the gap
between sample-size rows narrows from the 16% column to the 32%
column) — sampling matters most when caches must stay small.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_query_stream
from repro.bench.report import WallTimer, format_table
from repro.bench.setup import EvalSetup


@dataclass(frozen=True, slots=True)
class Fig5Cell:
    cache_fraction: float
    sample_size: int
    mean_probes: float
    mean_latency_seconds: float
    mean_nodes_traversed: float


@dataclass
class Fig5Result:
    cells: list[Fig5Cell]
    wall_seconds: float = 0.0

    def cell(self, cache_fraction: float, sample_size: int) -> Fig5Cell:
        for c in self.cells:
            if c.cache_fraction == cache_fraction and c.sample_size == sample_size:
                return c
        raise KeyError((cache_fraction, sample_size))

    def format_table(self) -> str:
        rows = [
            [
                f"{c.cache_fraction:.0%}",
                c.sample_size,
                c.mean_probes,
                c.mean_latency_seconds * 1e3,
                c.mean_nodes_traversed,
            ]
            for c in self.cells
        ]
        return format_table(
            ["cache_limit", "sample_size", "probes", "latency_ms", "nodes_traversed"],
            rows,
            title="Figure 5: cache limit x sample size",
            wall_seconds=self.wall_seconds,
        )


def run_fig5(
    setup: EvalSetup | None = None,
    cache_fractions: list[float] | None = None,
    sample_sizes: list[int] | None = None,
) -> Fig5Result:
    """Run the full sweep; fresh system per cell."""
    setup = setup if setup is not None else EvalSetup()
    fractions = cache_fractions if cache_fractions is not None else [0.16, 0.24, 0.32]
    targets = sample_sizes if sample_sizes is not None else [100, 1000, 10000]
    cells: list[Fig5Cell] = []
    with WallTimer() as timer:
        for fraction in fractions:
            capacity = setup.cache_capacity_for_fraction(fraction)
            for target in targets:
                system = setup.make_colr_tree(
                    setup.config.with_cache_capacity(capacity)
                )
                run = run_query_stream(system, setup.queries, sample_size=target)
                cells.append(
                    Fig5Cell(
                        cache_fraction=fraction,
                        sample_size=target,
                        mean_probes=run.mean("sensors_probed"),
                        mean_latency_seconds=run.mean("processing_seconds"),
                        mean_nodes_traversed=run.mean("nodes_traversed"),
                    )
                )
    return Fig5Result(cells=cells, wall_seconds=timer.seconds)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig5().format_table())
