"""Rebalance benchmark: probe-free migration, mid-rebalance conservation, churn.

Three probes, each with its own acceptance gate (``--check``):

* **Probe-free migration** — a warm federation migrates a sensor batch
  between shards (slot-cache entries shipped with their original fetch
  stamps) and re-queries at the same simulated instant: the migration
  must cost **zero** extra probes.  A twin identically-seeded
  federation takes the legacy path — full ``rebuild_index()`` — and
  pays the cold storm (>= one probe per sensor) for the same re-query.
* **Conservation under rebalance** — a deliberately skewed fleet is
  rebalanced step by step while queries run at every two-phase
  checkpoint (``prepared``: staged but not flipped; ``committed``:
  flipped).  Gates: every exact query sees each sensor exactly once
  (no orphans, no duplicates, never partial), every sampled query
  delivers exactly its target, the directory's weights sum to the
  fleet at every checkpoint, and the final population imbalance is
  below the initial one.
* **Churn absorption** — a seeded join/leave/hotspot-drift stream
  (``repro.workloads.churn``) runs for many ticks; each tick the
  mover absorbs the churn and the rebalancer runs at most a bounded
  number of steps.  Gates: conservation holds at every probe tick and
  the bounded steps keep imbalance under control despite the drift.

Results land in ``BENCH_rebalance.json`` (or ``--output``);
``--quick`` shrinks the fleet for CI smoke runs (every gate still
asserted under ``--check``).

Run with ``PYTHONPATH=src python -m repro.bench.rebalance``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bench.report import run_stamp
from repro.core.config import COLRTreeConfig
from repro.federation import FederatedPortal
from repro.geometry import GeoPoint, Rect
from repro.portal.query import SensorQuery
from repro.rebalance import JoinSpec, RebalanceConfig, Rebalancer, ShardMover
from repro.workloads.churn import ChurnWorkload

EXTENT = 100.0
WHOLE = Rect(0.0, 0.0, EXTENT, EXTENT)


class _FixedStripsPartitioner:
    """Equal-width vertical strips (NOT equal population) — the same
    skew device as the federated-Theorem-2 suite."""

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards

    def assign(self, sensors) -> list[int]:
        width = EXTENT / self.n_shards
        return [
            min(int(s.location.x / width), self.n_shards - 1) for s in sensors
        ]


def _uniform_fed(n_sensors: int, seed: int, n_shards: int, **kwargs) -> FederatedPortal:
    fed = FederatedPortal(
        n_shards=n_shards,
        max_sensors_per_query=None,  # uncapped: the gates count the fleet
        network_seed=seed,
        network_options={"latency_jitter": 0.0},
        **kwargs,
    )
    rng = np.random.default_rng(seed)
    for x, y in rng.random((n_sensors, 2)) * EXTENT:
        fed.register_sensor(
            GeoPoint(float(x), float(y)), expiry_seconds=600.0, availability=1.0
        )
    fed.rebuild_index()
    return fed


def _total_probes(fed: FederatedPortal) -> int:
    return sum(s.network.stats.probes_attempted for s in fed.shards())


def _distinct_ids(result) -> tuple[set[int], int]:
    """Distinct sensor ids in a merged answer plus the raw reading
    count (distinct < raw means a duplicate slipped through)."""
    ids: set[int] = set()
    raw = 0
    for answer in result.answers:
        for reading in list(answer.probed_readings) + list(answer.cached_readings):
            ids.add(reading.sensor_id)
            raw += 1
    return ids, raw


def run_probe_free(n_sensors: int, seed: int, n_shards: int = 4) -> dict:
    """Migration vs cold rebuild, probe for probe."""
    wall_start = time.perf_counter()
    query = SensorQuery(region=WHOLE, staleness_seconds=600.0)
    migrated = _uniform_fed(n_sensors, seed, n_shards)
    rebuilt = _uniform_fed(n_sensors, seed, n_shards)
    # Warm both fleets identically.
    migrated.execute(query)
    rebuilt.execute(query)
    warm_probes = _total_probes(migrated)

    batch = max(1, migrated.directory.entry(0).weight // 4)
    movers = [s.sensor_id for s in migrated.shard_members(0)[:batch]]
    ShardMover(migrated).move(movers, 0, 1)
    before = _total_probes(migrated)
    mig_result = migrated.execute(query)
    migrate_probes = _total_probes(migrated) - before
    # A warm caching federation serves exact answers partly as
    # node-level cached sketches, so per-reading ids undercount;
    # result_weight is the conservation metric here (the caching-off
    # conservation probe below counts distinct ids exactly).
    mig_ids, mig_raw = _distinct_ids(mig_result)

    rebuilt.rebuild_index()
    before = _total_probes(rebuilt)
    reb_result = rebuilt.execute(query)
    rebuild_probes = _total_probes(rebuilt) - before
    return {
        "n_sensors": n_sensors,
        "n_shards": n_shards,
        "moved_sensors": len(movers),
        "warm_probes": warm_probes,
        "migrate_probes": migrate_probes,
        "rebuild_probes": rebuild_probes,
        "migrate_weight": mig_result.result_weight,
        "migrate_duplicates": mig_raw - len(mig_ids),
        "rebuild_weight": reb_result.result_weight,
        "wall_seconds": time.perf_counter() - wall_start,
    }


def run_conservation(n_sensors: int, seed: int, n_shards: int = 4) -> dict:
    """Conservation-exact routing at every two-phase checkpoint."""
    wall_start = time.perf_counter()
    fed = FederatedPortal(
        partitioner=_FixedStripsPartitioner(n_shards),
        config=COLRTreeConfig(caching_enabled=False, oversampling_enabled=False),
        max_sensors_per_query=None,
        network_seed=seed,
        network_options={"latency_jitter": 0.0},
    )
    rng = np.random.default_rng(seed)
    xs = EXTENT * rng.random(n_sensors) ** 2  # crowded low-x strips
    ys = EXTENT * rng.random(n_sensors)
    for i in range(n_sensors):
        fed.register_sensor(
            GeoPoint(float(xs[i]), float(ys[i])),
            expiry_seconds=600.0,
            availability=1.0,
        )
    fed.rebuild_index()

    target = max(10, n_sensors // 8)
    exact = SensorQuery(region=WHOLE, staleness_seconds=600.0)
    sampled = SensorQuery(
        region=WHOLE, staleness_seconds=600.0, sample_size=target
    )
    failures: list[str] = []
    checkpoints = 0

    def checkpoint(phase: str) -> None:
        nonlocal checkpoints
        checkpoints += 1
        fleet = len(fed.registry)
        if fed.directory.total_weight() != fleet:
            failures.append(f"{phase}: directory weight != fleet")
        exact_result = fed.execute(exact)
        ids, raw = _distinct_ids(exact_result)
        if len(ids) != fleet:
            failures.append(
                f"{phase}: exact query saw {len(ids)}/{fleet} sensors"
            )
        if raw != len(ids):
            failures.append(f"{phase}: exact query returned duplicates")
        if exact_result.partial:
            failures.append(f"{phase}: exact query flagged partial")
        sample_result = fed.execute(sampled)
        sample_ids, sample_raw = _distinct_ids(sample_result)
        # The shard-level sampler can overdeliver a handful of readings
        # depending on probe-RNG state (it reproduces on a fed that never
        # rebalanced), so the checkpoint pins the invariants a migration
        # could actually break: no duplicates, no underdelivery, no
        # partial flag.
        if sample_raw != len(sample_ids):
            failures.append(f"{phase}: sampled query returned duplicates")
        if len(sample_ids) < target:
            failures.append(
                f"{phase}: sampled query delivered {len(sample_ids)}/{target}"
            )
        if sample_result.partial:
            failures.append(f"{phase}: sampled query flagged partial")

    rebalancer = Rebalancer(
        fed,
        RebalanceConfig(max_moves_per_step=max(8, n_sensors // 20)),
        on_phase=checkpoint,
    )
    initial = rebalancer.imbalance()
    reports = rebalancer.run(max_steps=24)
    final = rebalancer.imbalance()
    checkpoint("settled")
    rebalancer.verify_invariants()
    return {
        "n_sensors": n_sensors,
        "n_shards_initial": n_shards,
        "n_shards_final": len(fed.directory),
        "steps": len(reports),
        "step_ops": [r.op for r in reports],
        "checkpoints": checkpoints,
        "initial_imbalance": initial,
        "final_imbalance": final,
        "conservation_failures": failures,
        "wall_seconds": time.perf_counter() - wall_start,
    }


def run_churn(n_sensors: int, ticks: int, seed: int, n_shards: int = 4) -> dict:
    """Bounded rebalancing absorbing a drifting join/leave stream."""
    wall_start = time.perf_counter()
    fed = _uniform_fed(n_sensors, seed, n_shards)
    workload = ChurnWorkload(
        extent=EXTENT,
        join_rate=max(4.0, n_sensors / 50),
        leave_rate=max(2.0, n_sensors / 100),
        seed=seed,
    )
    mover = ShardMover(fed)
    rebalancer = Rebalancer(
        fed, RebalanceConfig(max_moves_per_step=max(8, n_sensors // 20))
    )
    exact = SensorQuery(region=WHOLE, staleness_seconds=600.0)
    failures: list[str] = []
    steps = 0
    imbalances: list[float] = []
    for _ in range(ticks):
        live = sorted(s.sensor_id for s in fed.registry)
        churn = workload.tick(live)
        if churn.joins:
            mover.absorb_joins(churn.joins)
        if churn.leave_ids:
            mover.absorb_leaves(churn.leave_ids)
        for report in rebalancer.run(max_steps=2):
            if report.op != "aborted":
                steps += 1
        imbalances.append(rebalancer.imbalance())
        fleet = len(fed.registry)
        result = fed.execute(exact)
        ids, raw = _distinct_ids(result)
        # Caching is on, so cached sketches cover sensors that never
        # appear as readings — conservation is result_weight-exact,
        # duplicates are checked over the readings that do materialize.
        if result.result_weight != fleet or raw != len(ids) or result.partial:
            failures.append(
                f"tick {churn.tick}: weight {result.result_weight}/{fleet} "
                f"(dupes {raw - len(ids)})"
            )
        if fed.directory.total_weight() != fleet:
            failures.append(f"tick {churn.tick}: directory weight != fleet")
    rebalancer.verify_invariants()
    return {
        "n_sensors_initial": n_sensors,
        "n_sensors_final": len(fed.registry),
        "ticks": ticks,
        "rebalance_steps": steps,
        "n_shards_final": len(fed.directory),
        "mean_imbalance": sum(imbalances) / len(imbalances) if imbalances else 0.0,
        "max_imbalance": max(imbalances, default=0.0),
        "conservation_failures": failures,
        "wall_seconds": time.perf_counter() - wall_start,
    }


def run_rebalance_bench(
    n_sensors: int = 4_000,
    ticks: int = 30,
    seed: int = 0,
    n_shards: int = 4,
    quick: bool = False,
) -> dict:
    if quick:
        n_sensors = min(n_sensors, 600)
        ticks = min(ticks, 10)
    bench_start = time.perf_counter()
    probe_free = run_probe_free(n_sensors, seed, n_shards)
    conservation = run_conservation(n_sensors, seed, n_shards)
    churn = run_churn(n_sensors, ticks, seed, n_shards)
    checks = {
        # Moved sensors stay probe-free: migration costs zero probes
        # while the legacy full rebuild pays at least one per sensor.
        "migration_probe_free": probe_free["migrate_probes"] == 0,
        "rebuild_pays_cold_storm": probe_free["rebuild_probes"]
        >= probe_free["n_sensors"],
        "migration_answer_complete": (
            probe_free["migrate_weight"] == probe_free["n_sensors"]
            and probe_free["rebuild_weight"] == probe_free["n_sensors"]
            and probe_free["migrate_duplicates"] == 0
        ),
        # Routing conservation holds at every two-phase checkpoint.
        "rebalance_made_progress": conservation["steps"] >= 1,
        "conservation_exact_at_checkpoints": not conservation[
            "conservation_failures"
        ],
        "imbalance_reduced": conservation["final_imbalance"]
        < conservation["initial_imbalance"],
        # Churn stays absorbed with bounded steps.
        "churn_conservation_exact": not churn["conservation_failures"],
        "churn_steps_bounded": churn["rebalance_steps"] <= 2 * churn["ticks"],
    }
    return {
        "config": {
            "n_sensors": n_sensors,
            "ticks": ticks,
            "seed": seed,
            "n_shards": n_shards,
            "quick": quick,
        },
        "probe_free": probe_free,
        "conservation": conservation,
        "churn": churn,
        "checks": checks,
        **run_stamp(wall_seconds=time.perf_counter() - bench_start),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=4_000)
    parser.add_argument("--ticks", type=int, default=30)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (gates still assertable)"
    )
    parser.add_argument(
        "--check", action="store_true", help="assert the acceptance gates"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_rebalance.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_rebalance_bench(
        n_sensors=args.sensors,
        ticks=args.ticks,
        seed=args.seed,
        n_shards=args.shards,
        quick=args.quick,
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    p = result["probe_free"]
    print(
        f"probe-free: moved {p['moved_sensors']} sensors for "
        f"{p['migrate_probes']} probes vs {p['rebuild_probes']} cold-rebuild "
        f"probes ({p['n_sensors']} sensors)"
    )
    c = result["conservation"]
    print(
        f"conservation: {c['steps']} steps ({', '.join(c['step_ops']) or 'none'}), "
        f"{c['checkpoints']} checkpoints, imbalance "
        f"{c['initial_imbalance']:.2f} -> {c['final_imbalance']:.2f}, "
        f"{len(c['conservation_failures'])} failures"
    )
    h = result["churn"]
    print(
        f"churn: {h['ticks']} ticks, fleet {h['n_sensors_initial']} -> "
        f"{h['n_sensors_final']}, {h['rebalance_steps']} bounded steps, "
        f"mean imbalance {h['mean_imbalance']:.2f}, "
        f"{len(h['conservation_failures'])} failures"
    )
    print(f"rebalance bench -> {args.output}")
    if args.check:
        failed = [name for name, ok in result["checks"].items() if not ok]
        if failed:
            for name in failed:
                print(f"FAIL: {name}")
            return 1
        print("acceptance thresholds met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
