"""Parallel federation benchmark: real wall-clock scaling over workers.

Every other benchmark in this repo reports *modeled* seconds on a
shared ``SimClock`` — no query has ever finished faster on real
hardware because of sharding.  This one drives the same 40k-sensor
fleet and multi-tick batch workload as ``bench.federation`` through the
**process execution backend** (``FederationConfig.execution="process"``,
one worker process per shard over shared-memory flat kernels) at
1 / 2 / 4 / 8 workers, and times the host clock.  The in-process
coordinator runs the identical workload at each shard count as the
baseline column, so the table shows exactly what true parallelism buys
over simulated concurrency.

Three correctness gates run before any timing (the benchmark refuses to
time a backend that changes answers):

* **tiled classification parity** — ``FlatKernel.classify`` with
  cache-sized tiling must produce bit-identical labels to the
  monolithic pass over a mixed rect/polygon region workload, across a
  spread of tile sizes (including degenerate 1-node tiles).
* **process-backend bit-identity** — a process-mode federation and an
  in-process federation built from the same fleet and seeds run the
  same query matrix (exact / sampled x rect / polygon, cold and warm,
  sequential and batch) and every per-answer field, timing and batch
  stat must match exactly.
* **no leaked segments** — after every portal is closed, ``/dev/shm``
  must hold no segments with this run's prefix (asserted in teardown,
  and again by ``--check``).

The wall-clock speedup gates are **core-count aware**: the ≥2× gate at
4 workers needs ≥4 CPUs and the monotonic-to-8 gate needs ≥8; on
smaller hosts they are reported as skipped (a fork worker cannot beat
the in-process loop without a core to run on), while all three
correctness gates above are enforced unconditionally.

Results land in ``BENCH_parallel.json`` (or ``--output``).  ``--quick``
shrinks the fleet for CI smoke runs (all correctness gates still run);
``--workers N`` caps the sweep at N workers; ``--check`` additionally
asserts the acceptance gates.

Run with ``PYTHONPATH=src python -m repro.bench.parallel``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bench.federation import (
    BENCH_FEDERATION,
    FLAKY_AVAILABILITY,
    FLAKY_FRACTION,
    NETWORK_OPTIONS,
    RELIABLE_AVAILABILITY,
    SENSOR_TYPES,
    STALENESS,
    TICK_SECONDS,
    _assert_identical,
    _parity_queries,
    make_federation,
    make_unsharded,
    make_viewports,
)
from repro.bench.report import WallTimer, run_stamp
from repro.core.flat import FlatKernel, auto_tile_nodes
from repro.parallel import leaked_segments

# The bench federation config with the process backend switched on;
# everything else (retry budget, backoff) identical to the in-process
# rows so the comparison isolates the execution backend.
PROCESS_FEDERATION = replace(BENCH_FEDERATION, execution="process")

TILE_SIZES = (1, 7, 64, 1024)


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def check_tiled_parity(n_sensors: int, seed: int) -> int:
    """Gate: tiled classification must label every node identically to
    the monolithic pass, for every sensor-type tree, region shape and
    tile size (including the auto-sized L2 tile).  Returns the number of
    (tree, tile, region) cells compared."""
    portal = make_unsharded(n_sensors, seed)
    regions = [q.region for q in _parity_queries()]
    regions += [q.region for q in make_viewports(8, seed + 99)]
    cells = 0
    sizes = TILE_SIZES + (auto_tile_nodes(),)
    for sensor_type in SENSOR_TYPES:
        root = portal.tree(sensor_type).root
        mono = FlatKernel(root)
        for tile in sizes:
            tiled = FlatKernel(root, tile_nodes=tile)
            for region in regions:
                if not np.array_equal(mono.classify(region), tiled.classify(region)):
                    raise AssertionError(
                        f"tiled parity: {sensor_type} tile={tile} "
                        f"labels diverge on {region!r}"
                    )
                cells += 1
    return cells


def check_process_parity(n_sensors: int, seed: int, n_shards: int = 2) -> int:
    """Gate: the process backend must be answer-bit-identical to the
    in-process coordinator on the same fleet and seeds — per-answer
    fields, modeled timings, batch stats and federation counters — cold
    and warm.  Returns the number of (phase, query) cells compared."""
    cells = 0
    inproc = make_federation(n_sensors, seed, n_shards)
    proc = make_federation(
        n_sensors, seed, n_shards, federation=PROCESS_FEDERATION
    )
    try:
        for phase in ("cold", "warm"):
            for qi, query in enumerate(_parity_queries()):
                _assert_identical(
                    f"process/{phase}/q{qi}",
                    inproc.execute(query),
                    proc.execute(query),
                )
                cells += 1
            a = inproc.execute_batch(_parity_queries())
            b = proc.execute_batch(_parity_queries())
            for qi, (ra, rb) in enumerate(zip(a.results, b.results)):
                _assert_identical(f"process/{phase}/batch-q{qi}", ra, rb)
                cells += 1
            if a.stats != b.stats:
                raise AssertionError(
                    f"parity[process/{phase}]: batch stats diverged"
                )
            inproc.clock.advance(TICK_SECONDS)
            proc.clock.advance(TICK_SECONDS)
        fa = inproc.stats_summary()["federation"]
        fb = proc.stats_summary()["federation"]
        if fa != fb:
            raise AssertionError("parity[process]: federation counters diverged")
    finally:
        proc.close()
    return cells


# ----------------------------------------------------------------------
# Throughput
# ----------------------------------------------------------------------
def _drive(fed, queries: Sequence, ticks: int) -> dict:
    """Run ``ticks`` batch ticks and report wall / modeled seconds."""
    modeled = 0.0
    coordinator_wall = 0.0
    with WallTimer() as timer:
        for _ in range(ticks):
            batch = fed.execute_batch(queries)
            modeled += max(batch.shard_seconds.values(), default=0.0)
            coordinator_wall += batch.stats.wall_seconds
            fed.clock.advance(TICK_SECONDS)
    return {
        "wall_seconds": timer.seconds,
        "batch_wall_seconds": coordinator_wall,
        "modeled_seconds": modeled,
    }


def run_worker_count(
    n_sensors: int, n_workers: int, level: int, ticks: int, seed: int
) -> dict:
    """One sweep row: the identical workload through the in-process
    coordinator and the process backend at ``n_workers`` shards."""
    queries = make_viewports(level, seed + level)
    n_queries = ticks * level

    inproc = make_federation(n_sensors, seed, n_workers)
    baseline = _drive(inproc, queries, ticks)

    proc = make_federation(
        n_sensors, seed, n_workers, federation=PROCESS_FEDERATION
    )
    try:
        worker_pids = [proc.worker_pid(i) for i in range(n_workers)]
        process = _drive(proc, queries, ticks)
    finally:
        proc.close()

    return {
        "workers": n_workers,
        "queries": n_queries,
        "worker_pids_distinct": len(set(worker_pids)),
        "inprocess": baseline,
        "process": process,
        "wall_throughput_qps": {
            "inprocess": n_queries / max(1e-12, baseline["wall_seconds"]),
            "process": n_queries / max(1e-12, process["wall_seconds"]),
        },
        "process_vs_inprocess_wall": baseline["wall_seconds"]
        / max(1e-12, process["wall_seconds"]),
    }


def run_parallel_bench(
    n_sensors: int = 40_000,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    level: int = 64,
    ticks: int = 4,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    if quick:
        n_sensors, level, ticks = 2_500, 16, 2
        worker_counts = tuple(n for n in worker_counts if n <= 4)
    bench_start = time.perf_counter()

    tiled_cells = check_tiled_parity(min(n_sensors, 4_000), seed)
    parity_cells = check_process_parity(min(n_sensors, 4_000), seed)

    per_count = [
        run_worker_count(n_sensors, n, level, ticks, seed) for n in worker_counts
    ]
    base = per_count[0]["process"]["wall_seconds"]
    for row in per_count:
        row["speedup_vs_1_worker"] = base / max(
            1e-12, row["process"]["wall_seconds"]
        )

    leaked = [s for s in leaked_segments()]
    return {
        "benchmark": "parallel_federation",
        **run_stamp(),
        "workload": {
            "n_sensors": n_sensors,
            "worker_counts": list(worker_counts),
            "level": level,
            "ticks": ticks,
            "tick_seconds": TICK_SECONDS,
            "seed": seed,
            "quick": quick,
            "cpu_count": os.cpu_count(),
            "auto_tile_nodes": auto_tile_nodes(),
            "tile_sizes_checked": list(TILE_SIZES),
            "staleness_seconds": STALENESS,
            "sensor_types": list(SENSOR_TYPES),
            "flaky_fraction": FLAKY_FRACTION,
            "availabilities": {
                "reliable": RELIABLE_AVAILABILITY,
                "flaky": FLAKY_AVAILABILITY,
            },
            "network": dict(NETWORK_OPTIONS),
            "federation_config": {
                "execution": PROCESS_FEDERATION.execution,
                "shard_retry_budget": PROCESS_FEDERATION.shard_retry_budget,
                "retry_backoff_base": PROCESS_FEDERATION.retry_backoff_base,
                "retry_backoff_multiplier": (
                    PROCESS_FEDERATION.retry_backoff_multiplier
                ),
            },
        },
        "parity": {
            "status": "identical",
            "tiled_cells": tiled_cells,
            "process_cells": parity_cells,
        },
        "leaked_segments": leaked,
        "wall_seconds": time.perf_counter() - bench_start,
        "worker_counts": per_count,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=40_000)
    parser.add_argument("--level", type=int, default=64)
    parser.add_argument("--ticks", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="cap the worker-count sweep (subset of 1/2/4/8)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (all gates still run)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the acceptance gates (bit-identity and no-leak always; "
        ">=2x wall throughput at 4 workers and monotonic scaling to 8 only "
        "when the host has the cores)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_parallel.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    counts = tuple(n for n in (1, 2, 4, 8) if n <= max(1, args.workers))
    result = run_parallel_bench(
        n_sensors=args.sensors,
        worker_counts=counts,
        level=args.level,
        ticks=args.ticks,
        seed=args.seed,
        quick=args.quick,
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"parity: tiled {result['parity']['tiled_cells']} cells, "
        f"process backend {result['parity']['process_cells']} cells identical"
    )
    for row in result["worker_counts"]:
        print(
            f"  {row['workers']:>2} workers: {row['queries']} queries, wall "
            f"{row['inprocess']['wall_seconds']:.2f}s inprocess -> "
            f"{row['process']['wall_seconds']:.2f}s process "
            f"({row['wall_throughput_qps']['process']:.1f} q/s, "
            f"{row['speedup_vs_1_worker']:.2f}x vs 1 worker)"
        )
    print(f"parallel bench -> {args.output}")
    if args.check:
        if result["leaked_segments"]:
            print(f"FAIL: leaked shm segments {result['leaked_segments']}")
            return 1
        cores = os.cpu_count() or 1
        rows = {r["workers"]: r for r in result["worker_counts"]}
        if cores >= 4 and 4 in rows and 1 in rows:
            speedup = rows[4]["speedup_vs_1_worker"]
            if speedup < 2.0:
                print(f"FAIL: 4-worker wall speedup {speedup:.2f}x < 2x")
                return 1
            print(f"4-worker wall speedup {speedup:.2f}x >= 2x")
        else:
            print(f"2x-at-4-workers gate skipped ({cores} cores)")
        if cores >= 8 and 8 in rows:
            curve = [
                rows[n]["speedup_vs_1_worker"] for n in (1, 2, 4, 8) if n in rows
            ]
            if any(b < a for a, b in zip(curve, curve[1:])):
                print(f"FAIL: speedup curve not monotonic: {curve}")
                return 1
            print(f"speedup curve monotonic to 8 workers: {curve}")
        else:
            print(f"monotonic-to-8 gate skipped ({cores} cores)")
        print("acceptance gates met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
