"""Batch executor benchmark: coalesced ticks vs sequential execution.

Drives the same concurrent-viewport workload through two portals:

``sequential``
    ``portal.execute(q)`` per query, in arrival order — every query
    pays its own probe round trip and its own cache maintenance.
``batch``
    One ``portal.execute_batch(queries)`` tick — shared traversal
    plans, each sensor contacted at most once, one grouped ingestion
    pass, one probe round trip per tree.

Workloads model a portal under load: N concurrent map viewports drawn
from a small pool of hotspots (many users staring at the same few
places), at 1/8/64/256 concurrent queries over >=40k sensors.

Throughput is measured in the repo's end-to-end cost convention (see
``bench.harness.QueryRecord.end_to_end_seconds``): modeled processing
seconds plus simulated collection latency.  Sequential execution
serializes one collection round per query; a batch tick pays one shared
round per tree.  Host wall-clock per pass is reported as a secondary
series (it excludes the simulated network, so it only reflects index
and maintenance work).

Before timing, every level is executed under both modes at
availability 1.0 and the per-query answers compared (result weight
exactly, aggregate to float tolerance) — the benchmark refuses to
report a speedup for a batch path that changes answers.  Timing runs at
availability 0.85: failed probes are not cached, so sequential execution
re-contacts flaky sensors once per overlapping query while the batch
tick asks once — the probe-count series quantifies exactly that.

Results land in ``BENCH_batch.json`` (or ``--output``).  ``--quick``
shrinks the workload for CI smoke runs (parity still asserted);
``--check`` additionally asserts the acceptance thresholds (>=3x
modeled throughput and strictly fewer probes at 64 concurrent).

Run with ``PYTHONPATH=src python -m repro.bench.batch``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bench.report import run_stamp
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery

EXTENT = 100.0
STALENESS = 120.0
TIMING_AVAILABILITY = 0.85


def make_portal(n_sensors: int, availability: float, seed: int) -> SensorMapPortal:
    rng = np.random.default_rng(seed)
    portal = SensorMapPortal(max_sensors_per_query=None)
    xs = rng.uniform(0.0, EXTENT, n_sensors)
    ys = rng.uniform(0.0, EXTENT, n_sensors)
    expiries = rng.uniform(120.0, 600.0, n_sensors)
    for i in range(n_sensors):
        portal.register_sensor(
            GeoPoint(float(xs[i]), float(ys[i])),
            expiry_seconds=float(expiries[i]),
            availability=availability,
        )
    portal.rebuild_index()
    return portal


def make_viewports(level: int, seed: int) -> list[SensorQuery]:
    """``level`` concurrent viewport queries drawn round-robin from a
    pool of distinct hotspots — the many-users-same-map-tile shape that
    makes coalescing matter.  Pool size grows sublinearly with the
    level so higher concurrency means more sharing, not just more
    regions.  Viewports are zoomed-in tiles (a few dozen sensors each):
    the regime where sequential execution pays one collector round trip
    per query while a batch tick packs the union into a few."""
    pool_size = max(1, level // 4)
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(pool_size):
        cx = float(rng.uniform(15.0, EXTENT - 15.0))
        cy = float(rng.uniform(15.0, EXTENT - 15.0))
        half = float(rng.uniform(1.0, 2.0))
        pool.append(
            Rect(
                max(0.0, cx - half),
                max(0.0, cy - half),
                min(EXTENT, cx + half),
                min(EXTENT, cy + half),
            )
        )
    return [
        SensorQuery(region=pool[i % pool_size], staleness_seconds=STALENESS)
        for i in range(level)
    ]


def check_parity(
    n_sensors: int, levels: Sequence[int], seed: int
) -> None:
    """Every level's workload, once through each mode on fresh portals
    at availability 1.0: identical result weights, aggregates equal to
    float tolerance."""
    seq_portal = make_portal(n_sensors, availability=1.0, seed=seed)
    batch_portal = make_portal(n_sensors, availability=1.0, seed=seed)
    for level in levels:
        queries = make_viewports(level, seed + level)
        seq_results = [seq_portal.execute(q) for q in queries]
        batch = batch_portal.execute_batch(queries)
        for i, (s, b) in enumerate(zip(seq_results, batch.results)):
            if s.result_weight != b.result_weight:
                raise AssertionError(
                    f"parity: level {level} query {i} weight "
                    f"{s.result_weight} != {b.result_weight}"
                )
            if s.result_weight == 0:  # aggregate of nothing is undefined
                continue
            sa, ba = s.aggregate(), b.aggregate()
            if abs(sa - ba) > 1e-9 * max(1.0, abs(sa)):
                raise AssertionError(
                    f"parity: level {level} query {i} aggregate {sa} != {ba}"
                )
        seq_portal.tree("generic").clear_caches()
        batch_portal.tree("generic").clear_caches()


def _modeled_seconds_sequential(results) -> float:
    # Serial rounds: each query's processing plus its own collection.
    return sum(r.processing_seconds + r.collection_seconds for r in results)


def _modeled_seconds_batch(batch) -> float:
    # One shared collection round per tree (BatchStats.collection_seconds
    # already sums the per-tree rounds exactly once).
    return (
        sum(r.processing_seconds for r in batch.results)
        + batch.stats.collection_seconds
    )


def time_level(
    seq_portal: SensorMapPortal,
    batch_portal: SensorMapPortal,
    queries: Sequence[SensorQuery],
    reps: int,
) -> dict:
    seq_wall, seq_modeled, seq_probes = [], [], []
    bat_wall, bat_modeled, bat_probes = [], [], []
    last_batch_stats = None
    for _ in range(reps):
        seq_portal.tree("generic").clear_caches()
        probes_before = seq_portal.network.stats.probes_attempted
        start = time.perf_counter()
        results = [seq_portal.execute(q) for q in queries]
        seq_wall.append(time.perf_counter() - start)
        seq_modeled.append(_modeled_seconds_sequential(results))
        seq_probes.append(
            seq_portal.network.stats.probes_attempted - probes_before
        )

        batch_portal.tree("generic").clear_caches()
        probes_before = batch_portal.network.stats.probes_attempted
        start = time.perf_counter()
        batch = batch_portal.execute_batch(queries)
        bat_wall.append(time.perf_counter() - start)
        bat_modeled.append(_modeled_seconds_batch(batch))
        bat_probes.append(
            batch_portal.network.stats.probes_attempted - probes_before
        )
        last_batch_stats = batch.stats

    n = len(queries)
    seq_s, bat_s = min(seq_modeled), min(bat_modeled)
    seq_w, bat_w = min(seq_wall), min(bat_wall)
    return {
        "concurrency": n,
        "distinct_viewports": len({q.region for q in queries}),
        "modeled_seconds": {"sequential": seq_s, "batch": bat_s},
        "throughput_qps": {"sequential": n / seq_s, "batch": n / bat_s},
        "throughput_speedup": seq_s / bat_s,
        "wall_seconds": {"sequential": seq_w, "batch": bat_w},
        "wall_speedup": seq_w / bat_w,
        "probes": {
            "sequential": min(seq_probes),
            "batch": max(bat_probes),
        },
        "probe_ratio": min(seq_probes) / max(1, max(bat_probes)),
        "batch_stats": {
            "probes_requested": last_batch_stats.probes_requested,
            "probes_issued": last_batch_stats.probes_issued,
            "probes_coalesced": last_batch_stats.probes_coalesced,
            "batch_shared_plans": last_batch_stats.batch_shared_plans,
        },
    }


def run_batch_bench(
    n_sensors: int = 40_000,
    levels: Sequence[int] = (1, 8, 64, 256),
    reps: int = 3,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    if quick:
        n_sensors, levels, reps = 2_500, (1, 8, 64), 2
    bench_start = time.perf_counter()

    check_parity(n_sensors, levels, seed)

    seq_portal = make_portal(n_sensors, TIMING_AVAILABILITY, seed)
    batch_portal = make_portal(n_sensors, TIMING_AVAILABILITY, seed)
    per_level = [
        time_level(
            seq_portal, batch_portal, make_viewports(level, seed + level), reps
        )
        for level in levels
    ]
    return {
        "benchmark": "batch_executor",
        **run_stamp(),
        "workload": {
            "n_sensors": n_sensors,
            "levels": list(levels),
            "reps": reps,
            "seed": seed,
            "quick": quick,
            "staleness_seconds": STALENESS,
            "timing_availability": TIMING_AVAILABILITY,
        },
        "parity": "identical",
        "wall_seconds": time.perf_counter() - bench_start,
        "levels": per_level,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=40_000)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (parity still asserted)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the acceptance thresholds "
        "(>=3x throughput, strictly fewer probes at 64 concurrent)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_batch.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_batch_bench(
        n_sensors=args.sensors, reps=args.reps, seed=args.seed, quick=args.quick
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["levels"]:
        print(
            f"  {row['concurrency']:>4} viewports "
            f"({row['distinct_viewports']:>2} distinct): "
            f"{row['throughput_qps']['sequential']:8.1f} -> "
            f"{row['throughput_qps']['batch']:8.1f} q/s "
            f"({row['throughput_speedup']:.1f}x), probes "
            f"{row['probes']['sequential']} -> {row['probes']['batch']} "
            f"({row['probe_ratio']:.2f}x)"
        )
    print(f"batch bench -> {args.output}")
    if args.check:
        checked = [r for r in result["levels"] if r["concurrency"] >= 64]
        if not checked:
            print("FAIL: no level with >=64 concurrent viewports")
            return 1
        for row in checked:
            if row["throughput_speedup"] < 3.0:
                print(
                    f"FAIL: {row['concurrency']} concurrent throughput "
                    f"{row['throughput_speedup']:.2f}x < 3x"
                )
                return 1
            if row["probes"]["batch"] >= row["probes"]["sequential"]:
                print(
                    f"FAIL: {row['concurrency']} concurrent probes not reduced "
                    f"({row['probes']['batch']} >= {row['probes']['sequential']})"
                )
                return 1
        print("acceptance thresholds met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
