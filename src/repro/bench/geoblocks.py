"""Geoblocks benchmark: polygon planning, grid serving, sliding windows.

Four probes, each with its own acceptance gate (``--check``):

* **Rectangle parity** — an axis-aligned rectangle drawn as a polygon
  must be answered by ``execute_polygon`` bit-identically (answer,
  probes, stats, timings) to ``execute`` on the equivalent ``Rect``,
  cold and warm, on a single portal and across a 4-shard federation.
  Compared with the federation bench's own parity comparator over twin
  identically seeded portals (execution warms caches, so one portal
  cannot serve both sides).
* **Conservation** — genuine (non-rectangular) polygons from every
  workload family must return exactly the sensors the portal's exact
  Region path returns: the composed cell plan may change *how* the
  answer is collected, never *what* it contains.
* **Cell-size sweep** — one fixed polygon planned at several cell
  sizes, each over a fresh portal, cold run then warm run.  Gates: on
  the warm grid every interior cell is served from the mirror with
  **zero** interior probes (exact tree work happens only at boundary
  cells), and the boundary fraction of the cover shrinks as cells
  shrink — probes track the boundary fraction, not the cover size.
* **Sliding window** — a viewport panning one cell per step must reuse
  exactly the overlap of consecutive covers (symmetric-difference
  recompute, revalidated not trusted) and refresh only the enter
  strip; gate on exact reuse accounting and on the steady-state reused
  fraction.

The polygon stream itself (``repro.workloads.polygons``) also runs
cold-then-warm end to end for throughput/shape reporting.  Results
land in ``BENCH_geoblocks.json`` (or ``--output``); ``--quick``
shrinks the fleet for CI smoke runs (every gate still asserted under
``--check``).

Run with ``PYTHONPATH=src python -m repro.bench.geoblocks``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Sequence

from repro.bench.federation import _assert_identical, make_federation
from repro.bench.frontdoor import make_livelocal_portal
from repro.bench.harness import StreamSummary
from repro.bench.report import run_stamp
from repro.geoblocks import GeoBlockConfig, PolygonResult, SlidingWindow
from repro.geoblocks.planner import cells_covering
from repro.geometry import GeoPoint, Polygon, Rect
from repro.portal import SensorMapPortal, SensorQuery
from repro.workloads import LiveLocalWorkload, PolygonWorkload

STALENESS = 900.0
SENSOR_TYPE = "restaurant"  # the Live-Local fleet's type
# Bench grid cell edge: city-boundary polygons span 5-40 miles
# (~0.1-1.2 degrees), so 0.2-degree cells give the bigger polygons a
# genuine probe-free interior while staying far under the planner's
# cell budget.
CELL_DEGREES = 0.2


def _rect_as_polygon(rect: Rect) -> Polygon:
    return Polygon(
        [
            GeoPoint(rect.min_x, rect.min_y),
            GeoPoint(rect.max_x, rect.min_y),
            GeoPoint(rect.max_x, rect.max_y),
            GeoPoint(rect.min_x, rect.max_y),
        ]
    )


def make_polygon_portal(
    n_sensors: int, seed: int, cell_degrees: float = CELL_DEGREES
) -> SensorMapPortal:
    """The Live-Local fleet behind an uncapped portal with a geoblock
    grid (the polygon fast path requires exact sub-queries)."""
    portal = SensorMapPortal(
        max_sensors_per_query=None,
        geoblocks=GeoBlockConfig(cell_degrees=cell_degrees),
    )
    portal.register_all(
        LiveLocalWorkload(
            n_sensors=n_sensors, expiry_seconds=2.0 * STALENESS, seed=seed
        ).sensors()
    )
    portal.rebuild_index()
    return portal


def _sensor_ids(result) -> set[int]:
    return {
        r.sensor_id
        for a in result.answers
        for r in list(a.probed_readings) + list(a.cached_readings)
    }


# ----------------------------------------------------------------------
# Probe 1: rectangle parity (single portal + federated)
# ----------------------------------------------------------------------
def run_parity_probe(n_sensors: int, seed: int, n_shards: int = 4) -> dict:
    """``execute_polygon`` on a rectangle drawn as a polygon must be a
    bit-identical pass-through of ``execute`` on the ``Rect`` — cold and
    warm, unsharded and federated."""
    wall_start = time.perf_counter()
    rects = [
        spec.region
        for spec in LiveLocalWorkload(
            n_sensors=n_sensors, n_queries=6, seed=seed + 5
        ).queries()
    ]

    # Twin identical fleets: the rectangle path never touches the grid,
    # so the polygon side needs no geoblock config — only the same
    # sensors in the same order.
    single_cells = 0
    portal_a = make_livelocal_portal(n_sensors, seed)
    portal_b = make_livelocal_portal(n_sensors, seed)
    for i, rect in enumerate(rects):
        rect_query = SensorQuery(region=rect, staleness_seconds=STALENESS)
        poly_query = SensorQuery(
            region=_rect_as_polygon(rect), staleness_seconds=STALENESS
        )
        for phase in ("cold", "warm"):
            _assert_identical(
                f"rect-parity/single/{phase}/q{i}",
                portal_a.execute(rect_query),
                portal_b.execute_polygon(poly_query),
            )
            single_cells += 1

    # Federated: the coordinator scatters execute_polygon to the shards;
    # a rectangle-polygon must normalize before any clipping happens.
    from repro.bench.federation import EXTENT

    import numpy as np

    rng = np.random.default_rng(seed + 9)
    fed_a = make_federation(n_sensors, seed, n_shards)
    fed_b = make_federation(n_sensors, seed, n_shards)
    federated_cells = 0
    for i in range(4):
        cx = float(rng.uniform(15.0, EXTENT - 15.0))
        cy = float(rng.uniform(15.0, EXTENT - 15.0))
        half = float(rng.uniform(10.0, 25.0))
        rect = Rect(cx - half, cy - half, cx + half, cy + half)
        rect_query = SensorQuery(region=rect, staleness_seconds=120.0)
        poly_query = SensorQuery(
            region=_rect_as_polygon(rect), staleness_seconds=120.0
        )
        for phase in ("cold", "warm"):
            _assert_identical(
                f"rect-parity/federated/{phase}/q{i}",
                fed_a.execute(rect_query),
                fed_b.execute_polygon(poly_query),
            )
            federated_cells += 1
    return {
        "n_sensors": n_sensors,
        "n_shards": n_shards,
        "single_cells": single_cells,
        "federated_cells": federated_cells,
        "wall_seconds": time.perf_counter() - wall_start,
    }


# ----------------------------------------------------------------------
# Probe 2: conservation on genuine polygons
# ----------------------------------------------------------------------
def run_conservation_probe(
    n_sensors: int, seed: int, n_polygons: int = 12
) -> dict:
    """The cell plan changes how the answer is collected, never what it
    contains: twin fresh portals, one answering through the geoblock
    planner and one through the exact Region path, must return exactly
    the same sensor-id sets for every workload family."""
    wall_start = time.perf_counter()
    workload = PolygonWorkload(
        n_sensors=n_sensors,
        n_queries=n_polygons,
        expiry_seconds=2.0 * STALENESS,
        revisit_probability=0.0,
        staleness_seconds=STALENESS,
        seed=seed,
    )
    # Twin portals over the workload's own fleet (not merely same-seed
    # rebuilds): one composes through the cell plan, one answers via the
    # exact Region path.
    sensors = workload.sensors()
    portal_grid = SensorMapPortal(
        max_sensors_per_query=None,
        geoblocks=GeoBlockConfig(cell_degrees=CELL_DEGREES),
    )
    portal_exact = SensorMapPortal(max_sensors_per_query=None)
    for portal in (portal_grid, portal_exact):
        portal.register_all(sensors)
        portal.rebuild_index()
    compared = 0
    mismatches = 0
    grid_path = 0
    by_family: dict[str, int] = {}
    for spec in workload.queries():
        query = SensorQuery(
            region=spec.region, staleness_seconds=spec.staleness_seconds
        )
        via_grid = portal_grid.execute_polygon(query)
        via_exact = portal_exact.execute(query)
        if _sensor_ids(via_grid) != _sensor_ids(via_exact):
            mismatches += 1
        if isinstance(via_grid, PolygonResult):
            grid_path += 1
        by_family[spec.family] = by_family.get(spec.family, 0) + 1
        compared += 1
    return {
        "n_sensors": n_sensors,
        "compared": compared,
        "mismatches": mismatches,
        "grid_path": grid_path,
        "by_family": by_family,
        "wall_seconds": time.perf_counter() - wall_start,
    }


# ----------------------------------------------------------------------
# Probe 3: cell-size sweep (probe-free interior, boundary fraction)
# ----------------------------------------------------------------------
def run_sweep_probe(
    n_sensors: int,
    seed: int,
    cell_sizes: Sequence[float] = (0.5, 0.2, 0.1),
) -> dict:
    """One fixed polygon planned at several cell sizes, each over a
    fresh portal: the cold run warms the grid through the tree's
    reading listeners, then the warm run must serve every interior cell
    from the mirror with zero interior probes.  Finer grids push more
    of the cover into the (probe-free) interior."""
    wall_start = time.perf_counter()
    workload = PolygonWorkload(
        n_sensors=n_sensors,
        n_queries=8,
        expiry_seconds=2.0 * STALENESS,
        family_weights=(1.0, 0.0, 0.0),
        revisit_probability=0.0,
        staleness_seconds=STALENESS,
        seed=seed + 1,
    )
    # The largest city-boundary polygon of the batch: big enough to
    # have a genuine interior at every cell size in the sweep.
    region = max(
        (spec.region for spec in workload.queries()),
        key=lambda p: p.bounding_box.area,
    )
    query = SensorQuery(region=region, staleness_seconds=STALENESS)
    levels = []
    for cell_degrees in cell_sizes:
        portal = make_polygon_portal(n_sensors, seed, cell_degrees=cell_degrees)
        cold = portal.execute_polygon(query)
        warm = portal.execute_polygon(query)
        assert isinstance(cold, PolygonResult) and isinstance(warm, PolygonResult)
        total = warm.interior_cells + warm.boundary_cells
        levels.append(
            {
                "cell_degrees": cell_degrees,
                "interior_cells": warm.interior_cells,
                "boundary_cells": warm.boundary_cells,
                "boundary_fraction": warm.boundary_cells / max(1, total),
                "cold_grid_cells_served": cold.grid_cells_served,
                "cold_interior_probes": cold.interior_probes,
                "warm_grid_cells_served": warm.grid_cells_served,
                "warm_interior_probes": warm.interior_probes,
                "warm_sensors_probed": sum(
                    a.stats.sensors_probed for a in warm.answers
                ),
                "grid": portal.geoblocks().stats.__dict__.copy(),
            }
        )
    return {
        "n_sensors": n_sensors,
        "bbox_area_degrees2": region.bounding_box.area,
        "levels": levels,
        "wall_seconds": time.perf_counter() - wall_start,
    }


# ----------------------------------------------------------------------
# Probe 4: sliding-window incrementality
# ----------------------------------------------------------------------
def run_window_probe(
    n_sensors: int,
    seed: int,
    viewport_cells: int = 5,
    steps: int = 8,
    step_seconds: float = 15.0,
    cell_degrees: float = 1.0,
) -> dict:
    """A viewport panning one cell east per step: each step must reuse
    exactly the cells shared with the previous cover and refresh only
    the enter strip."""
    wall_start = time.perf_counter()
    portal = make_polygon_portal(n_sensors, seed, cell_degrees=cell_degrees)
    window = SlidingWindow(
        portal,
        staleness_seconds=STALENESS,
        sensor_type=SENSOR_TYPE,
        aggregate="avg",
        temporal_steps=3,
    )
    # Start over the densest metro in the fleet (New York) so the
    # window actually aggregates sensors, and pan east.
    from repro.workloads import CITIES

    anchor = max(CITIES, key=lambda c: c.population)
    span = viewport_cells * cell_degrees
    records = []
    prev_cover: set[tuple[int, int]] | None = None
    exact_reuse = True
    for step in range(steps):
        offset = step * cell_degrees
        rect = Rect(
            anchor.lon + offset,
            anchor.lat,
            anchor.lon + offset + span,
            anchor.lat + span,
        )
        result = window.step(rect)
        cover = set(cells_covering(rect, window.cell_degrees))
        expected_reuse = (
            len(cover & prev_cover) if prev_cover is not None else 0
        )
        if result.cells_reused != expected_reuse:
            exact_reuse = False
        if result.cells_reused + result.cells_refreshed != result.cells_total:
            exact_reuse = False
        records.append(
            {
                "step": step,
                "cells_total": result.cells_total,
                "cells_reused": result.cells_reused,
                "cells_refreshed": result.cells_refreshed,
                "expected_reuse": expected_reuse,
                "sensors": len(_sensor_ids(result)),
                "window_aggregate": result.window_aggregate,
            }
        )
        prev_cover = cover
        portal.clock.advance(step_seconds)
    steady = records[1:]
    reused_fraction = (
        sum(r["cells_reused"] for r in steady)
        / max(1, sum(r["cells_total"] for r in steady))
    )
    return {
        "n_sensors": n_sensors,
        "viewport_cells": viewport_cells,
        "steps": steps,
        "exact_symmetric_difference": exact_reuse,
        "steady_reused_fraction": reused_fraction,
        "window_cells_reused_total": portal.network.stats.window_cells_reused,
        "aggregated_any": any(r["window_aggregate"] is not None for r in records),
        "records": records,
        "wall_seconds": time.perf_counter() - wall_start,
    }


# ----------------------------------------------------------------------
# Probe 5 (reporting): the polygon stream, cold then warm
# ----------------------------------------------------------------------
def run_stream_probe(n_sensors: int, n_queries: int, seed: int) -> dict:
    """The full polygon workload through one portal, twice: the cold
    pass pays probes and warms the grid, the warm pass measures how
    much of the stream the mirror then serves."""
    wall_start = time.perf_counter()
    workload = PolygonWorkload(
        n_sensors=n_sensors,
        n_queries=n_queries,
        expiry_seconds=2.0 * STALENESS,
        staleness_seconds=STALENESS,
        seed=seed,
    )
    portal = make_polygon_portal(n_sensors, seed)
    specs = workload.queries()
    out: dict = {"n_sensors": n_sensors, "n_queries": n_queries}
    t0 = portal.clock.now()
    for name in ("cold", "warm"):
        grid_path = 0
        grid_cells_served = 0
        interior_cells = 0
        boundary_cells = 0
        interior_probes = 0
        probe_free = 0
        processing = StreamSummary()
        for spec in specs:
            if name == "cold":
                target = t0 + spec.at_time
                if target > portal.clock.now():
                    portal.clock.advance(target - portal.clock.now())
            result = portal.execute_polygon(
                SensorQuery(
                    region=spec.region,
                    staleness_seconds=spec.staleness_seconds,
                )
            )
            processing.add(result.processing_seconds)
            if isinstance(result, PolygonResult):
                grid_path += 1
                grid_cells_served += result.grid_cells_served
                interior_cells += result.interior_cells
                boundary_cells += result.boundary_cells
                interior_probes += result.interior_probes
                if result.interior_probes == 0:
                    probe_free += 1
        out[name] = {
            "grid_path": grid_path,
            "interior_cells": interior_cells,
            "boundary_cells": boundary_cells,
            "grid_cells_served": grid_cells_served,
            "interior_probes": interior_probes,
            "interior_probe_free_queries": probe_free,
            "processing_seconds": processing.as_dict(),
        }
    out["grid"] = portal.geoblocks().stats.__dict__.copy()
    out["network"] = {
        "polygon_cells_interior": portal.network.stats.polygon_cells_interior,
        "polygon_cells_boundary": portal.network.stats.polygon_cells_boundary,
    }
    out["wall_seconds"] = time.perf_counter() - wall_start
    return out


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_geoblocks_bench(
    n_sensors: int = 40_000,
    n_queries: int = 300,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    if quick:
        n_sensors, n_queries = 2_500, 60
    bench_start = time.perf_counter()
    parity = run_parity_probe(min(n_sensors, 4_000), seed)
    conservation = run_conservation_probe(min(n_sensors, 8_000), seed)
    sweep = run_sweep_probe(min(n_sensors, 8_000), seed)
    window = run_window_probe(min(n_sensors, 8_000), seed)
    stream = run_stream_probe(n_sensors, n_queries, seed)
    fractions = [level["boundary_fraction"] for level in sweep["levels"]]
    checks = {
        "rect_parity_single_portal": parity["single_cells"] > 0,
        "rect_parity_federated": parity["federated_cells"] > 0,
        "polygon_conservation": conservation["mismatches"] == 0
        and conservation["compared"] > 0,
        "warm_interior_probe_free": all(
            level["warm_interior_probes"] == 0 for level in sweep["levels"]
        )
        and stream["warm"]["interior_probes"] == 0,
        "warm_interior_grid_served": all(
            level["warm_grid_cells_served"] == level["interior_cells"]
            for level in sweep["levels"]
        ),
        "boundary_fraction_shrinks_with_cells": all(
            a >= b for a, b in zip(fractions, fractions[1:])
        )
        and fractions[-1] < fractions[0],
        "stream_warm_serves_interior_from_grid": stream["warm"]["grid_cells_served"]
        > 0,
        "window_exact_symmetric_difference": window["exact_symmetric_difference"],
        "window_reused_fraction_ge_60pct": window["steady_reused_fraction"] >= 0.60,
    }
    return {
        "benchmark": "geoblocks",
        **run_stamp(wall_seconds=time.perf_counter() - bench_start),
        "workload": {
            "n_sensors": n_sensors,
            "n_queries": n_queries,
            "seed": seed,
            "quick": quick,
            "staleness_seconds": STALENESS,
            "cell_degrees": CELL_DEGREES,
        },
        "parity": parity,
        "conservation": conservation,
        "sweep": sweep,
        "window": window,
        "stream": stream,
        "checks": checks,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=40_000)
    parser.add_argument("--queries", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (gates still assertable)"
    )
    parser.add_argument(
        "--check", action="store_true", help="assert the acceptance gates"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_geoblocks.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_geoblocks_bench(
        n_sensors=args.sensors,
        n_queries=args.queries,
        seed=args.seed,
        quick=args.quick,
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    p = result["parity"]
    print(
        f"parity: {p['single_cells']} single-portal + "
        f"{p['federated_cells']} federated rectangle-polygon cells bit-identical"
    )
    c = result["conservation"]
    print(
        f"conservation: {c['compared']} polygons, {c['mismatches']} mismatches "
        f"({c['grid_path']} via the cell plan; families {c['by_family']})"
    )
    for level in result["sweep"]["levels"]:
        print(
            f"sweep {level['cell_degrees']:>4}°: "
            f"{level['interior_cells']} interior / {level['boundary_cells']} boundary "
            f"(boundary fraction {level['boundary_fraction']:.2f}), warm interior "
            f"probes {level['warm_interior_probes']}, "
            f"grid-served {level['warm_grid_cells_served']}"
        )
    w = result["window"]
    print(
        f"window: {w['steps']} steps, steady reused fraction "
        f"{w['steady_reused_fraction']:.1%}, exact symmetric difference: "
        f"{w['exact_symmetric_difference']}"
    )
    s = result["stream"]
    print(
        f"stream: {s['warm']['grid_path']}/{s['n_queries']} warm queries via the "
        f"cell plan, {s['warm']['grid_cells_served']} cells grid-served, "
        f"{s['warm']['interior_probes']} warm interior probes"
    )
    print(f"geoblocks bench -> {args.output}")
    if args.check:
        failed = [name for name, ok in result["checks"].items() if not ok]
        if failed:
            for name in failed:
                print(f"FAIL: {name}")
            return 1
        print("acceptance thresholds met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
