"""Transport benchmark: async probe dispatcher vs synchronous probing.

Drives the same flaky-network multi-tick viewport workload through two
portals:

``sync``
    No transport layer — every batch tick probes each live sensor
    directly, one blocking collection round per tree, failed sensors
    re-contacted on every tick that wants them.
``transport``
    The ``ProbeDispatcher`` in front of the network: per-sensor
    in-flight/recently-probed dedup across overlapping ticks, bounded
    retry with backoff for transient failures, cooldown for sensors the
    availability model has written off, per-tree rounds overlapping on
    the shared connection pool, and completed readings streamed into the
    caches in completion order.

The workload models the regime the dispatcher is built for: a mixed
fleet (70% reliable sensors at availability 0.95, 30% flaky at 0.35),
jittered per-probe latency with a timeout, several sensor types so each
tick fans out one probe round per tree, and ticks arriving faster than
the freshness window so consecutive ticks re-request recently-answered
sensors.

Costs follow the repo's end-to-end convention: modeled processing
seconds (including grouped-ingestion maintenance, wherever it is
metered) plus simulated collection seconds.  The sync arm serializes
one round per tree; the transport arm pays the makespan of its
overlapped rounds.  Wire cost is the network's ``probes_attempted``
counter — retries count against the transport arm, dedup and cooldown
count for it.

Before timing, the full workload runs once with the dispatcher in
parity mode (no retries, no overlap, no dedup, no cooldown) on a twin
portal and every per-query answer is compared — the benchmark refuses
to report a win for a transport path that changes answers.

Results land in ``BENCH_transport.json`` (or ``--output``).
``--quick`` shrinks the workload for CI smoke runs (parity still
asserted); ``--check`` additionally asserts the acceptance thresholds
(strictly fewer total probes and lower end-to-end simulated seconds at
>=64 concurrent viewports).

Run with ``PYTHONPATH=src python -m repro.bench.transport``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bench.report import run_stamp
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery
from repro.transport import TransportConfig

EXTENT = 100.0
STALENESS = 120.0
TICK_SECONDS = 45.0
SENSOR_TYPES = ("temperature", "humidity", "wind", "rain")
RELIABLE_AVAILABILITY = 0.95
FLAKY_AVAILABILITY = 0.35
FLAKY_FRACTION = 0.3
NETWORK_OPTIONS = {"latency_jitter": 0.3, "timeout_seconds": 0.45}

# One retry recovers most transient failures without letting wire
# attempts on truly-dead sensors balloon past what dedup+cooldown save.
BENCH_TRANSPORT = TransportConfig(
    max_retries=1,
    backoff_base=0.5,
    inflight_ttl=STALENESS,
    cooldown_seconds=600.0,
    cooldown_threshold=0.5,
    overlap_enabled=True,
)


def make_portal(
    n_sensors: int,
    seed: int,
    transport: TransportConfig | None,
    flaky_fraction: float = FLAKY_FRACTION,
) -> SensorMapPortal:
    rng = np.random.default_rng(seed)
    portal = SensorMapPortal(
        max_sensors_per_query=None,
        transport=transport,
        network_options=dict(NETWORK_OPTIONS),
    )
    xs = rng.uniform(0.0, EXTENT, n_sensors)
    ys = rng.uniform(0.0, EXTENT, n_sensors)
    expiries = rng.uniform(120.0, 600.0, n_sensors)
    flaky = rng.random(n_sensors) < flaky_fraction
    for i in range(n_sensors):
        portal.register_sensor(
            GeoPoint(float(xs[i]), float(ys[i])),
            expiry_seconds=float(expiries[i]),
            sensor_type=SENSOR_TYPES[i % len(SENSOR_TYPES)],
            availability=FLAKY_AVAILABILITY if flaky[i] else RELIABLE_AVAILABILITY,
        )
    portal.rebuild_index()
    return portal


def make_viewports(level: int, seed: int) -> list[SensorQuery]:
    """``level`` concurrent viewports drawn round-robin from a hotspot
    pool (same shape as ``bench.batch``).  No ``sensor_type`` filter:
    each tick probes every tree, so the dispatcher has one round per
    tree to overlap on the shared connection pool."""
    pool_size = max(1, level // 4)
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(pool_size):
        cx = float(rng.uniform(15.0, EXTENT - 15.0))
        cy = float(rng.uniform(15.0, EXTENT - 15.0))
        half = float(rng.uniform(1.5, 3.0))
        pool.append(
            Rect(
                max(0.0, cx - half),
                max(0.0, cy - half),
                min(EXTENT, cx + half),
                min(EXTENT, cy + half),
            )
        )
    return [
        SensorQuery(region=pool[i % pool_size], staleness_seconds=STALENESS)
        for i in range(level)
    ]


def check_parity(n_sensors: int, levels: Sequence[int], ticks: int, seed: int) -> None:
    """The full multi-tick workload once per level through a plain
    portal and a parity-mode dispatcher portal: per-query result weights
    must match exactly, aggregates to float tolerance, probe counters
    exactly."""
    for level in levels:
        plain = make_portal(n_sensors, seed, transport=None)
        parity = make_portal(n_sensors, seed, transport=TransportConfig.parity())
        queries = make_viewports(level, seed + level)
        for _ in range(ticks):
            a = plain.execute_batch(queries)
            b = parity.execute_batch(queries)
            for i, (ra, rb) in enumerate(zip(a.results, b.results)):
                if ra.result_weight != rb.result_weight:
                    raise AssertionError(
                        f"parity: level {level} query {i} weight "
                        f"{ra.result_weight} != {rb.result_weight}"
                    )
                if ra.result_weight == 0:
                    continue
                va, vb = ra.aggregate(), rb.aggregate()
                if abs(va - vb) > 1e-9 * max(1.0, abs(va)):
                    raise AssertionError(
                        f"parity: level {level} query {i} aggregate {va} != {vb}"
                    )
            plain.clock.advance(TICK_SECONDS)
            parity.clock.advance(TICK_SECONDS)
        if plain.network.stats.probes_attempted != parity.network.stats.probes_attempted:
            raise AssertionError(
                f"parity: level {level} probe counts diverged "
                f"({plain.network.stats.probes_attempted} != "
                f"{parity.network.stats.probes_attempted})"
            )


def _modeled_tick_seconds(portal: SensorMapPortal, batch) -> float:
    """End-to-end simulated seconds of one batch tick.

    Per-query processing already includes per-query-metered maintenance;
    streamed ingestion meters its maintenance on ``BatchStats`` instead,
    so it is charged here at the same per-op rate — neither arm gets
    free cache maintenance."""
    return (
        sum(r.processing_seconds for r in batch.results)
        + batch.stats.collection_seconds
        + batch.stats.maintenance_ops * portal.cost_model.per_maintenance_op
    )


def run_level(
    n_sensors: int, level: int, ticks: int, seed: int
) -> dict:
    sync_portal = make_portal(n_sensors, seed, transport=None)
    transport_portal = make_portal(n_sensors, seed, transport=BENCH_TRANSPORT)
    queries = make_viewports(level, seed + level)

    def drive(portal: SensorMapPortal) -> dict:
        modeled = 0.0
        wall = time.perf_counter()
        for _ in range(ticks):
            batch = portal.execute_batch(queries)
            modeled += _modeled_tick_seconds(portal, batch)
            portal.clock.advance(TICK_SECONDS)
        wall = time.perf_counter() - wall
        net = portal.network.stats
        out = {
            "modeled_seconds": modeled,
            "wall_seconds": wall,
            "probes_attempted": net.probes_attempted,
            "probes_succeeded": net.probes_succeeded,
            "probes_unavailable": net.probes_unavailable,
            "probes_timed_out": net.probes_timed_out,
        }
        if portal.dispatcher is not None:
            t = portal.dispatcher.stats
            out["transport"] = {
                "rounds": t.rounds,
                "retries": t.retries,
                "dedup_hits": t.dedup_hits,
                "cooldown_skips": t.cooldown_skips,
                "overlapped_rounds": t.overlapped_rounds,
                "streamed_readings": t.streamed_readings,
            }
        return out

    sync = drive(sync_portal)
    transport = drive(transport_portal)
    return {
        "concurrency": level,
        "distinct_viewports": len({q.region for q in queries}),
        "ticks": ticks,
        "sync": sync,
        "transport": transport,
        "probe_ratio": sync["probes_attempted"]
        / max(1, transport["probes_attempted"]),
        "latency_ratio": sync["modeled_seconds"]
        / max(1e-12, transport["modeled_seconds"]),
    }


def run_transport_bench(
    n_sensors: int = 40_000,
    levels: Sequence[int] = (1, 8, 64, 256),
    ticks: int = 8,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    if quick:
        n_sensors, levels, ticks = 2_500, (1, 8, 64), 8
    bench_start = time.perf_counter()

    check_parity(n_sensors, levels, ticks, seed)

    per_level = [run_level(n_sensors, level, ticks, seed) for level in levels]
    return {
        "benchmark": "transport_dispatcher",
        **run_stamp(),
        "workload": {
            "n_sensors": n_sensors,
            "levels": list(levels),
            "ticks": ticks,
            "tick_seconds": TICK_SECONDS,
            "seed": seed,
            "quick": quick,
            "staleness_seconds": STALENESS,
            "sensor_types": list(SENSOR_TYPES),
            "flaky_fraction": FLAKY_FRACTION,
            "availabilities": {
                "reliable": RELIABLE_AVAILABILITY,
                "flaky": FLAKY_AVAILABILITY,
            },
            "network": dict(NETWORK_OPTIONS),
            "transport_config": {
                "max_retries": BENCH_TRANSPORT.max_retries,
                "backoff_base": BENCH_TRANSPORT.backoff_base,
                "inflight_ttl": BENCH_TRANSPORT.inflight_ttl,
                "cooldown_seconds": BENCH_TRANSPORT.cooldown_seconds,
                "cooldown_threshold": BENCH_TRANSPORT.cooldown_threshold,
                "overlap_enabled": BENCH_TRANSPORT.overlap_enabled,
            },
        },
        "parity": "identical",
        "wall_seconds": time.perf_counter() - bench_start,
        "levels": per_level,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=40_000)
    parser.add_argument("--ticks", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (parity still asserted)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the acceptance thresholds (fewer probes and lower "
        "modeled latency at >=64 concurrent viewports)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_transport.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_transport_bench(
        n_sensors=args.sensors, ticks=args.ticks, seed=args.seed, quick=args.quick
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["levels"]:
        t = row["transport"].get("transport", {})
        print(
            f"  {row['concurrency']:>4} viewports "
            f"({row['distinct_viewports']:>2} distinct, {row['ticks']} ticks): "
            f"probes {row['sync']['probes_attempted']} -> "
            f"{row['transport']['probes_attempted']} "
            f"({row['probe_ratio']:.2f}x), latency "
            f"{row['sync']['modeled_seconds']:.2f}s -> "
            f"{row['transport']['modeled_seconds']:.2f}s "
            f"({row['latency_ratio']:.2f}x) "
            f"[dedup {t.get('dedup_hits', 0)}, cooldown "
            f"{t.get('cooldown_skips', 0)}, retries {t.get('retries', 0)}]"
        )
    print(f"transport bench -> {args.output}")
    if args.check:
        checked = [r for r in result["levels"] if r["concurrency"] >= 64]
        if not checked:
            print("FAIL: no level with >=64 concurrent viewports")
            return 1
        for row in checked:
            if (
                row["transport"]["probes_attempted"]
                >= row["sync"]["probes_attempted"]
            ):
                print(
                    f"FAIL: {row['concurrency']} concurrent probes not reduced "
                    f"({row['transport']['probes_attempted']} >= "
                    f"{row['sync']['probes_attempted']})"
                )
                return 1
            if (
                row["transport"]["modeled_seconds"]
                >= row["sync"]["modeled_seconds"]
            ):
                print(
                    f"FAIL: {row['concurrency']} concurrent latency not reduced "
                    f"({row['transport']['modeled_seconds']:.2f} >= "
                    f"{row['sync']['modeled_seconds']:.2f})"
                )
                return 1
        print("acceptance thresholds met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
