"""Plain-text table formatting for experiment output.

Every figure driver prints through this module so the regenerated
"figures" are consistent, diff-able rows.
"""

from __future__ import annotations

import subprocess
import time
from typing import Mapping, Sequence


class WallTimer:
    """Context-managed wall-clock stopwatch for bench sections.

    Modeled seconds (the simulated-clock costs the paper's model
    predicts) and wall seconds (what this machine actually spent) are
    reported side by side in every benchmark; this is the one way the
    wall side gets measured.

    >>> with WallTimer() as t:
    ...     do_work()
    >>> t.seconds
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: float | None = None

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.seconds = time.perf_counter() - self._start
        self._start = None


def git_fingerprint() -> dict[str, object]:
    """The commit this bench ran against, for artifact attribution.

    Returns ``{"git_commit": <sha or None>, "git_dirty": <bool or
    None>}``.  ``None``s mean git itself was unavailable (artifact
    built outside a checkout) — the artifact stays valid, just
    unattributed.  ``git_dirty`` is true when tracked files differ from
    the commit, so a perf number from an uncommitted tree can never
    masquerade as the commit's.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return {"git_commit": None, "git_dirty": None}
    return {"git_commit": commit, "git_dirty": bool(status)}


def run_stamp(wall_seconds: float | None = None) -> dict[str, object]:
    """The standard ``BENCH_*.json`` header fields: wall clock of the
    run, when it ran, and which commit produced it."""
    stamp: dict[str, object] = {"unix_time": int(time.time())}
    if wall_seconds is not None:
        stamp["wall_seconds"] = wall_seconds
    stamp.update(git_fingerprint())
    return stamp


def summary_columns(summary: "Mapping[str, float] | object") -> tuple[float, ...]:
    """The (p50, p95, p99) cells for a latency column triple — accepts a
    :class:`repro.bench.harness.StreamSummary` or its ``as_dict``."""
    if isinstance(summary, Mapping):
        return (float(summary["p50"]), float(summary["p95"]), float(summary["p99"]))
    return (float(summary.p50), float(summary.p95), float(summary.p99))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    wall_seconds: float | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns.

    ``wall_seconds`` appends a footer row reporting the real time the
    driver spent producing the table — the paper figures report modeled
    quantities, and the footer keeps modeled-vs-real visible everywhere.
    """
    rendered: list[list[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if wall_seconds is not None:
        lines.append(f"wall_seconds: {wall_seconds:.3f}")
    return "\n".join(lines)


def format_counters(
    counters: dict[str, object], title: str | None = None
) -> str:
    """One name/value row per counter, in insertion order — the shape
    used for NetworkStats / TransportStats surfaces in bench output and
    the CLI."""
    return format_table(
        ("counter", "value"), [(k, v) for k, v in counters.items()], title=title
    )


def network_counters(stats) -> dict[str, object]:
    """The reportable slice of a ``NetworkStats``, transport and
    storage meters included (both stay zero on purely synchronous /
    in-memory runs)."""
    return {
        "probes_attempted": stats.probes_attempted,
        "probes_succeeded": stats.probes_succeeded,
        "probes_unavailable": stats.probes_unavailable,
        "probes_timed_out": stats.probes_timed_out,
        "probes_retried": stats.probes_retried,
        "probes_deduped": stats.probes_deduped,
        "probes_cooldown_skipped": stats.probes_cooldown_skipped,
        "batches": stats.batches,
        "total_collection_seconds": stats.total_latency_seconds,
        "page_reads": stats.page_reads,
        "page_writes": stats.page_writes,
        "wal_appends": stats.wal_appends,
        "wal_fsyncs": stats.wal_fsyncs,
        "polygon_cells_interior": stats.polygon_cells_interior,
        "polygon_cells_boundary": stats.polygon_cells_boundary,
        "window_cells_reused": stats.window_cells_reused,
    }


def transport_counters(stats) -> dict[str, object]:
    """The reportable slice of a dispatcher's ``TransportStats``."""
    return {
        "rounds": stats.rounds,
        "overlapped_rounds": stats.overlapped_rounds,
        "attempts": stats.attempts,
        "retries": stats.retries,
        "timeouts": stats.timeouts,
        "unavailable": stats.unavailable,
        "dedup_inflight": stats.dedup_inflight,
        "dedup_recent": stats.dedup_recent,
        "cooldown_skips": stats.cooldown_skips,
        "streamed_readings": stats.streamed_readings,
        "stream_flushes": stats.stream_flushes,
        "maintenance_ops": stats.maintenance_ops,
    }


def storage_counters(stats) -> dict[str, object]:
    """The reportable slice of a ``StorageStats`` (the storage engine's
    cumulative disk accounting)."""
    return {
        "page_reads": stats.page_reads,
        "page_writes": stats.page_writes,
        "wal_appends": stats.wal_appends,
        "wal_fsyncs": stats.wal_fsyncs,
        "wal_records_replayed": stats.wal_records_replayed,
        "torn_tail_truncations": stats.torn_tail_truncations,
        "checkpoints": stats.checkpoints,
        "recoveries": stats.recoveries,
    }


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
