"""Plain-text table formatting for experiment output.

Every figure driver prints through this module so the regenerated
"figures" are consistent, diff-able rows.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    rendered: list[list[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
