"""Figure 7 — aggregate approximation error vs sample size.

The USGS Washington workload: 200 gauges over a spatially correlated
discharge field, querying the statewide average with different
SAMPLESIZE budgets and measuring the relative error against the
noise-free regional mean.

Paper shape: the error falls quickly with sample size; ~15 sampled
sensors already land within 10%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import StreamSummary
from repro.bench.report import WallTimer, format_table
from repro.core.config import COLRTreeConfig
from repro.core.tree import COLRTree
from repro.sensors.network import SensorNetwork
from repro.workloads.usgs import WA_BBOX, UsgsWaWorkload


@dataclass(frozen=True, slots=True)
class Fig7Point:
    sample_size: int
    mean_relative_error: float
    p90_relative_error: float


@dataclass
class Fig7Result:
    points: list[Fig7Point]
    wall_seconds: float = 0.0

    def error_at(self, sample_size: int) -> float:
        for p in self.points:
            if p.sample_size == sample_size:
                return p.mean_relative_error
        raise KeyError(sample_size)

    def format_table(self) -> str:
        rows = [
            [p.sample_size, p.mean_relative_error, p.p90_relative_error]
            for p in self.points
        ]
        return format_table(
            ["sample_size", "mean_rel_err", "p90_rel_err"],
            rows,
            title="Figure 7: approximation error vs sample size (USGS WA)",
            wall_seconds=self.wall_seconds,
        )


def run_fig7(
    sample_sizes: list[int] | None = None,
    n_trials: int = 25,
    seed: int = 0,
) -> Fig7Result:
    """Average relative error over fresh-tree trials per sample size.

    Each trial uses a cold cache (so the answer really is a random
    sample) and a distinct index RNG stream.
    """
    sizes = sample_sizes if sample_sizes is not None else [5, 10, 15, 20, 30, 50, 100, 200]
    workload = UsgsWaWorkload(seed=seed)
    sensors = workload.sensors()
    truth = workload.true_regional_mean(0.0)
    config = COLRTreeConfig(
        fanout=4,
        leaf_capacity=8,
        max_expiry_seconds=workload.expiry_seconds,
        slot_seconds=workload.expiry_seconds / 5.0,
        terminal_level=1,
        oversample_level=2,
    )
    points: list[Fig7Point] = []
    with WallTimer() as timer:
        for size in sizes:
            errors = []
            for trial in range(n_trials):
                network = SensorNetwork(
                    sensors, value_fn=workload.value_fn(), seed=seed + trial
                )
                tree = COLRTree(sensors, _with_seed(config, trial), network=network)
                answer = tree.query(
                    WA_BBOX,
                    now=0.0,
                    max_staleness=workload.expiry_seconds,
                    sample_size=size,
                )
                if answer.result_weight == 0:
                    continue
                estimate = answer.estimate("avg")
                errors.append(abs(estimate - truth) / abs(truth))
            summary = StreamSummary(errors)
            points.append(
                Fig7Point(
                    sample_size=size,
                    mean_relative_error=summary.mean,
                    p90_relative_error=summary.percentile(90.0),
                )
            )
    return Fig7Result(points=points, wall_seconds=timer.seconds)


def _with_seed(config: COLRTreeConfig, seed: int) -> COLRTreeConfig:
    from dataclasses import replace

    return replace(config, seed=seed)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig7().format_table())
