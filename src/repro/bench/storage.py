"""Storage benchmark: durability overhead, crash recovery, warm restart.

Drives a multi-tick viewport workload through durable portals and
measures what the storage engine costs and what recovery buys:

``overhead``
    The identical workload through an in-memory portal and a durable
    one (WAL journaling every acknowledged probe batch).  Answers must
    be bit-identical — durability is an observational layer — and the
    report shows the disk I/O and wall-clock cost of the journaling.
``crash``
    The durable portal is killed mid-flight (WAL handle abandoned, no
    checkpoint) and reopened.  Replay preserves the original batch
    boundaries, so the recovered portal's answers are bit-identical
    *including* float sums, and the first tick after restart is
    probe-free for every fresh slot.
``checkpoint``
    The WAL is compacted into a checkpoint page file, the portal closes
    cleanly and reopens.  Counts, weights and extremes reproduce
    exactly; sums agree to float tolerance (checkpoint compaction
    groups readings by fetch time, which can reassociate additions).
``determinism``
    After more ticks and a second crash, the data directory is copied
    byte-for-byte and both copies are recovered independently.  The two
    recovered portals must answer bit-identically — recovery is a pure
    function of the bytes on disk.
``federation``
    A durable federation kills one shard (a real crash of its engine),
    revives it through disk recovery, and checks the modeled recovery
    time is reported and charged to the revived shard's next gather.

Acceptance gates (asserted under ``--check``):

- crash reopen bit-identical (weights and sums) with zero probes;
- checkpoint reopen exact weights, sums to 1e-9 relative tolerance,
  zero probes;
- the two independently recovered directory copies bit-identical;
- warm-restart first tick issues <= 20% of the cold first tick's
  probes;
- ``revive_shard`` returns positive modeled recovery seconds and the
  next gather's collection makespan is at least that long.

Results land in ``BENCH_storage.json`` (or ``--output``).  ``--quick``
shrinks the workload for CI smoke runs (gates still asserted with
``--check``).

Run with ``PYTHONPATH=src python -m repro.bench.storage``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bench.report import run_stamp
from repro.federation.federated import FederatedPortal
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery
from repro.sensors.registry import SensorRegistry
from repro.sensors.sensor import Sensor
from repro.storage import StorageConfig

EXTENT = 100.0
STALENESS = 120.0
TICK_SECONDS = 45.0
SENSOR_TYPES = ("temperature", "humidity")
WARM_PROBE_RATIO_MAX = 0.2
SUM_RTOL = 1e-9


def make_fleet(n_sensors: int, seed: int) -> list[Sensor]:
    """A deterministic sensor fleet, reusable across portal opens (the
    same ``Sensor`` objects register identically against a fresh portal
    and a recovered one)."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, EXTENT, n_sensors)
    ys = rng.uniform(0.0, EXTENT, n_sensors)
    expiries = rng.uniform(150.0, 600.0, n_sensors)
    registry = SensorRegistry()
    return [
        registry.register(
            GeoPoint(float(xs[i]), float(ys[i])),
            expiry_seconds=float(expiries[i]),
            sensor_type=SENSOR_TYPES[i % len(SENSOR_TYPES)],
        )
        for i in range(n_sensors)
    ]


def open_portal(
    fleet: list[Sensor], seed: int, data_dir: Path | None
) -> SensorMapPortal:
    """Open (or recover) a portal over the fleet; ``data_dir=None``
    keeps it in-memory."""
    storage = StorageConfig(data_dir=data_dir) if data_dir is not None else None
    portal = SensorMapPortal(
        max_sensors_per_query=None, network_seed=seed, storage=storage
    )
    portal.register_all(list(fleet))
    portal.rebuild_index()
    return portal


def make_viewports(n_viewports: int, seed: int) -> list[SensorQuery]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(n_viewports):
        cx = float(rng.uniform(10.0, EXTENT - 10.0))
        cy = float(rng.uniform(10.0, EXTENT - 10.0))
        half = float(rng.uniform(3.0, 8.0))
        queries.append(
            SensorQuery(
                region=Rect(cx - half, cy - half, cx + half, cy + half),
                staleness_seconds=STALENESS,
                aggregate="sum",
            )
        )
    return queries


def run_tick(portal, queries: Sequence[SensorQuery]) -> dict:
    """One tick: every viewport once.  Returns per-query fingerprints
    plus tick-level probe/latency totals."""
    weights = []
    sums = []
    probes = 0
    collection = 0.0
    for query in queries:
        result = portal.execute(query)
        weights.append(result.result_weight)
        sums.append(result.aggregate() if result.result_weight else 0.0)
        probes += sum(a.stats.sensors_probed for a in result.answers)
        collection += result.collection_seconds
    return {
        "weights": weights,
        "sums": sums,
        "probes": probes,
        "collection_seconds": collection,
    }


def answers_match(a: dict, b: dict, sum_rtol: float = 0.0) -> bool:
    """Whether two tick fingerprints agree — weights exactly, sums
    bit-exactly (``sum_rtol=0``) or to a relative tolerance."""
    if a["weights"] != b["weights"]:
        return False
    for va, vb in zip(a["sums"], b["sums"]):
        if sum_rtol == 0.0:
            if va != vb:
                return False
        elif abs(va - vb) > sum_rtol * max(1.0, abs(va), abs(vb)):
            return False
    return True


def drive_ticks(portal, queries: Sequence[SensorQuery], ticks: int) -> list[dict]:
    """Run ``ticks`` ticks, advancing the simulated clock between them;
    returns every tick's fingerprint (tick 0 is the cold tick)."""
    out = []
    for i in range(ticks):
        if i:
            portal.clock.advance(TICK_SECONDS)
        out.append(run_tick(portal, queries))
    return out


def run_single_portal_phase(
    n_sensors: int, n_viewports: int, ticks: int, seed: int, tmp: Path
) -> dict:
    fleet = make_fleet(n_sensors, seed)
    queries = make_viewports(n_viewports, seed + 1)
    data_dir = tmp / "portal"

    # -- overhead: identical workload, in-memory vs durable ------------
    memory_portal = open_portal(fleet, seed, None)
    with_timer = time.perf_counter()
    memory_ticks = drive_ticks(memory_portal, queries, ticks)
    memory_wall = time.perf_counter() - with_timer

    durable = open_portal(fleet, seed, data_dir)
    with_timer = time.perf_counter()
    durable_ticks = drive_ticks(durable, queries, ticks)
    durable_wall = time.perf_counter() - with_timer
    parity = all(
        answers_match(m, d) for m, d in zip(memory_ticks, durable_ticks)
    )
    io = {
        k: getattr(durable.storage.stats, k)
        for k in ("page_reads", "page_writes", "wal_appends", "wal_fsyncs")
    }
    cold_probes = durable_ticks[0]["probes"]
    reference_clock = durable.clock.now()
    reference = run_tick(durable, queries)  # warm, probe-free baseline

    # -- crash: reopen must be bit-identical and probe-free ------------
    durable.crash()
    recover_timer = time.perf_counter()
    recovered = open_portal(fleet, seed, data_dir)
    recovery_wall = time.perf_counter() - recover_timer
    recovered.clock.advance_to(reference_clock)
    warm = run_tick(recovered, queries)
    crash_gate = {
        "bit_identical": answers_match(reference, warm),
        "warm_probes": warm["probes"],
        "cold_probes": cold_probes,
        "probe_free": warm["probes"] == 0,
        "recovery_modeled_seconds": recovered.recovery_seconds,
        "recovery_wall_seconds": recovery_wall,
        "wal_records_replayed": recovered.last_recovery.wal_records,
        "nonzero_answers": sum(reference["weights"]) > 0,
    }

    # -- checkpoint: compact, clean close, reopen ----------------------
    recovered.checkpoint()
    checkpoint_file = recovered.storage.checkpoint_name
    checkpoint_bytes = (data_dir / checkpoint_file).stat().st_size
    recovered.close()
    recover_timer = time.perf_counter()
    reopened = open_portal(fleet, seed, data_dir)
    checkpoint_recovery_wall = time.perf_counter() - recover_timer
    reopened.clock.advance_to(reference_clock)
    after_checkpoint = run_tick(reopened, queries)
    checkpoint_gate = {
        "weights_exact": after_checkpoint["weights"] == reference["weights"],
        "sums_close": answers_match(reference, after_checkpoint, SUM_RTOL),
        "probe_free": after_checkpoint["probes"] == 0,
        "checkpoint_bytes": checkpoint_bytes,
        "checkpoint_pages": reopened.last_recovery.checkpoint_pages,
        "wal_records_replayed": reopened.last_recovery.wal_records,
        "recovery_modeled_seconds": reopened.recovery_seconds,
        "recovery_wall_seconds": checkpoint_recovery_wall,
    }

    # -- determinism: two recoveries of the same bytes agree -----------
    reopened.clock.advance(TICK_SECONDS * (ticks + 1))  # age everything out
    post_checkpoint_ticks = drive_ticks(reopened, queries, 2)
    assert post_checkpoint_ticks[0]["probes"] > 0  # fresh WAL on top
    determinism_clock = reopened.clock.now()
    reopened.crash()
    copy_dir = tmp / "portal-copy"
    shutil.copytree(data_dir, copy_dir)
    left = open_portal(fleet, seed, data_dir)
    right = open_portal(fleet, seed, copy_dir)
    left.clock.advance_to(determinism_clock)
    right.clock.advance_to(determinism_clock)
    left_tick = run_tick(left, queries)
    # Advancing the shared-free clocks independently keeps both portals
    # at the same instant; the comparison is bit-exact.
    right_tick = run_tick(right, queries)
    determinism_gate = {
        "bit_identical": answers_match(left_tick, right_tick),
        "probe_free": left_tick["probes"] == 0 and right_tick["probes"] == 0,
    }
    left.close()
    right.close()

    return {
        "n_sensors": n_sensors,
        "n_viewports": n_viewports,
        "ticks": ticks,
        "overhead": {
            "memory_wall_seconds": memory_wall,
            "durable_wall_seconds": durable_wall,
            "answers_identical": parity,
            "io": io,
            "wal_bytes": sum(
                p.stat().st_size for p in data_dir.glob("wal-*.log")
            ),
        },
        "crash": crash_gate,
        "checkpoint": checkpoint_gate,
        "determinism": determinism_gate,
        "warm_probe_ratio": crash_gate["warm_probes"] / max(1, cold_probes),
    }


def run_federation_phase(
    n_sensors: int, n_viewports: int, seed: int, tmp: Path, n_shards: int = 4
) -> dict:
    fleet = make_fleet(n_sensors, seed + 100)
    queries = make_viewports(n_viewports, seed + 101)
    portal = FederatedPortal(
        n_shards=n_shards,
        max_sensors_per_query=None,
        network_seed=seed,
        storage=StorageConfig(data_dir=tmp / "federation"),
    )
    portal.register_all(fleet)
    portal.rebuild_index()
    warm_ticks = drive_ticks(portal, queries, 2)
    reference = run_tick(portal, queries)
    portal.kill_shard(0)
    degraded = run_tick(portal, queries)
    recovery_seconds = portal.revive_shard(0)
    revived = run_tick(portal, queries)
    out = {
        "n_shards": portal.n_shards,
        "cold_probes": warm_ticks[0]["probes"],
        "revive_recovery_seconds": recovery_seconds,
        "revived_bit_identical": answers_match(reference, revived),
        "revived_probes": revived["probes"],
        "recovery_charged_to_gather": revived["collection_seconds"]
        >= recovery_seconds,
        "degraded_weight_drop": sum(reference["weights"])
        - sum(degraded["weights"]),
        "shard_recoveries": portal.stats.shard_recoveries,
        "recovery_seconds_total": portal.stats.recovery_seconds_total,
    }
    portal.close()
    return out


def gate_failures(result: dict) -> list[str]:
    """Every acceptance-gate violation in a bench result (empty = pass)."""
    single = result["single_portal"]
    fed = result["federation"]
    checks = [
        ("durability overhead changed answers", single["overhead"]["answers_identical"]),
        ("crash reopen not bit-identical", single["crash"]["bit_identical"]),
        ("crash reopen not probe-free", single["crash"]["probe_free"]),
        ("crash workload answered nothing", single["crash"]["nonzero_answers"]),
        ("checkpoint reopen weights diverged", single["checkpoint"]["weights_exact"]),
        ("checkpoint reopen sums diverged", single["checkpoint"]["sums_close"]),
        ("checkpoint reopen not probe-free", single["checkpoint"]["probe_free"]),
        ("recovery not deterministic", single["determinism"]["bit_identical"]),
        (
            f"warm restart probed too much "
            f"(ratio {single['warm_probe_ratio']:.3f} > {WARM_PROBE_RATIO_MAX})",
            single["warm_probe_ratio"] <= WARM_PROBE_RATIO_MAX,
        ),
        ("revive reported no recovery time", fed["revive_recovery_seconds"] > 0),
        ("revive recovery not charged to gather", fed["recovery_charged_to_gather"]),
        ("revived shard changed answers", fed["revived_bit_identical"]),
    ]
    return [message for message, ok in checks if not ok]


def run_storage_bench(
    n_sensors: int = 20_000,
    n_viewports: int = 32,
    ticks: int = 5,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    if quick:
        n_sensors, n_viewports, ticks = 2_000, 8, 3
    bench_start = time.perf_counter()
    tmp = Path(tempfile.mkdtemp(prefix="colr-bench-storage-"))
    try:
        single = run_single_portal_phase(
            n_sensors, n_viewports, ticks, seed, tmp
        )
        federation = run_federation_phase(
            max(200, n_sensors // 4), max(4, n_viewports // 4), seed, tmp
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    result = {
        "benchmark": "storage_durability",
        **run_stamp(),
        "workload": {
            "n_sensors": n_sensors,
            "n_viewports": n_viewports,
            "ticks": ticks,
            "tick_seconds": TICK_SECONDS,
            "staleness_seconds": STALENESS,
            "seed": seed,
            "quick": quick,
        },
        "single_portal": single,
        "federation": federation,
        "wall_seconds": time.perf_counter() - bench_start,
    }
    result["gate_failures"] = gate_failures(result)
    return result


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=20_000)
    parser.add_argument("--viewports", type=int, default=32)
    parser.add_argument("--ticks", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (gates unchanged)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless every acceptance gate passes",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_storage.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_storage_bench(
        n_sensors=args.sensors,
        n_viewports=args.viewports,
        ticks=args.ticks,
        seed=args.seed,
        quick=args.quick,
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    single = result["single_portal"]
    fed = result["federation"]
    print(
        f"  overhead: memory {single['overhead']['memory_wall_seconds']:.2f}s, "
        f"durable {single['overhead']['durable_wall_seconds']:.2f}s "
        f"(wal {single['overhead']['wal_bytes']:,} B, "
        f"{single['overhead']['io']['wal_appends']} appends, "
        f"{single['overhead']['io']['wal_fsyncs']} fsyncs)"
    )
    print(
        f"  crash recovery: {single['crash']['wal_records_replayed']} WAL "
        f"records in {single['crash']['recovery_wall_seconds']*1e3:.1f} ms wall "
        f"({single['crash']['recovery_modeled_seconds']*1e3:.2f} ms modeled), "
        f"warm/cold probes {single['crash']['warm_probes']}/"
        f"{single['crash']['cold_probes']}"
    )
    print(
        f"  checkpoint: {single['checkpoint']['checkpoint_bytes']:,} B, "
        f"{single['checkpoint']['checkpoint_pages']} pages, reopen "
        f"{single['checkpoint']['recovery_wall_seconds']*1e3:.1f} ms wall"
    )
    print(
        f"  federation: revive recovered in "
        f"{fed['revive_recovery_seconds']*1e3:.2f} ms modeled "
        f"(charged to gather: {fed['recovery_charged_to_gather']}), "
        f"{fed['shard_recoveries']} recoveries total"
    )
    print(f"storage bench -> {args.output}")
    if result["gate_failures"]:
        for message in result["gate_failures"]:
            print(f"GATE FAIL: {message}")
        if args.check:
            return 1
    elif args.check:
        print("acceptance gates met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
