"""Figure 6 — sampling accuracy and probe discretization error.

Over the same cache-limit x target-size sweep as Figure 5, reports:

* **target accuracy** — ``min(target, achieved) / min(target,
  unsampled result size)``: how well the SAMPLESIZE contract is met;
* **probe discretization error (pde)** — per-terminal relative gap
  between assigned target and delivered results; cached aggregates
  over-deliver (negative terms), thin terminals under-deliver.

Paper shape: ≥93% accuracy even at target 100 with a small cache,
rising to ~99% at larger targets/caches; pde reveals the tension
between cached aggregates and uniform sampling (|pde| grows with cache
size at small targets, shrinks at the largest target).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.binning import ideal_result_sizes
from repro.bench.harness import run_query_stream, target_accuracy
from repro.bench.report import WallTimer, format_table
from repro.bench.setup import EvalSetup


@dataclass(frozen=True, slots=True)
class Fig6Cell:
    cache_fraction: float
    sample_size: int
    target_accuracy: float
    mean_pde: float
    mean_abs_pde: float


@dataclass
class Fig6Result:
    cells: list[Fig6Cell]
    wall_seconds: float = 0.0

    def cell(self, cache_fraction: float, sample_size: int) -> Fig6Cell:
        for c in self.cells:
            if c.cache_fraction == cache_fraction and c.sample_size == sample_size:
                return c
        raise KeyError((cache_fraction, sample_size))

    def format_table(self) -> str:
        rows = [
            [
                f"{c.cache_fraction:.0%}",
                c.sample_size,
                c.target_accuracy,
                c.mean_pde,
                c.mean_abs_pde,
            ]
            for c in self.cells
        ]
        return format_table(
            ["cache_limit", "sample_size", "target_acc", "pde", "abs_pde"],
            rows,
            title="Figure 6: sampling accuracy and probe discretization error",
            wall_seconds=self.wall_seconds,
        )


def run_fig6(
    setup: EvalSetup | None = None,
    cache_fractions: list[float] | None = None,
    sample_sizes: list[int] | None = None,
) -> Fig6Result:
    setup = setup if setup is not None else EvalSetup()
    fractions = cache_fractions if cache_fractions is not None else [0.16, 0.24, 0.32]
    targets = sample_sizes if sample_sizes is not None else [100, 1000, 10000]
    cells: list[Fig6Cell] = []
    with WallTimer() as timer:
        sizes = ideal_result_sizes(setup.sensors, setup.queries)
        for fraction in fractions:
            capacity = setup.cache_capacity_for_fraction(fraction)
            for target in targets:
                system = setup.make_colr_tree(
                    setup.config.with_cache_capacity(capacity)
                )
                run = run_query_stream(system, setup.queries, sample_size=target)
                accuracies = [
                    target_accuracy(rec.result_weight, target, int(size))
                    for rec, size in zip(run.records, sizes)
                ]
                pdes = [rec.terminal_pde for rec in run.records]
                cells.append(
                    Fig6Cell(
                        cache_fraction=fraction,
                        sample_size=target,
                        target_accuracy=float(np.mean(accuracies)),
                        mean_pde=float(np.mean(pdes)),
                        mean_abs_pde=float(np.mean(np.abs(pdes))),
                    )
                )
    return Fig6Result(cells=cells, wall_seconds=timer.seconds)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig6().format_table())
