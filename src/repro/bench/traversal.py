"""Traversal microbenchmark: flattened kernel vs pointer traversal.

Times the spatial half of the exact range path (``range_scan``: node
classification, cache consults, terminal emission — everything except
the network probes, which would otherwise dominate and hide the index
cost) on the same seeded workload under three configurations:

``legacy``
    ``flat_kernel_enabled=False`` — the per-node pointer recursion.
``kernel_cold``
    Kernel on, every region seen for the first time (plan-cache miss:
    pays one vectorized classification per query).
``kernel_warm``
    The same regions again (plan-cache hit: memoized plans only).

Before timing, every region is executed under both configurations and
the answers are compared field-for-field (stats excluding the three
kernel-only counters, which are structurally zero on the legacy path) —
the benchmark refuses to report a speedup for a kernel that is not
bit-identical.

Results land in ``BENCH_traversal.json`` next to the repo root (or at
``--output``).  ``--quick`` shrinks the workload for CI smoke runs;
``--check`` additionally asserts the acceptance thresholds (>=3x cold,
>=10x warm), which only make sense at full scale on a quiet machine.

Run with ``PYTHONPATH=src python -m repro.bench.traversal``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import fields, replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bench.report import run_stamp
from repro.core.config import COLRTreeConfig
from repro.core.lookup import QueryAnswer, Region, range_scan
from repro.core.tree import COLRTree
from repro.geometry import GeoPoint, Polygon, Rect
from repro.sensors.sensor import Sensor

KERNEL_ONLY_STATS = ("plan_cache_hits", "plan_cache_misses", "nodes_pruned_vectorized")
EXTENT = 100.0


def make_sensors(n: int, seed: int) -> list[Sensor]:
    """A uniform random population over the benchmark extent."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, EXTENT, n)
    ys = rng.uniform(0.0, EXTENT, n)
    expiries = rng.uniform(120.0, 600.0, n)
    return [
        Sensor(
            sensor_id=i,
            location=GeoPoint(float(xs[i]), float(ys[i])),
            expiry_seconds=float(expiries[i]),
        )
        for i in range(n)
    ]


def make_regions(
    n: int, seed: int, polygon_every: int = 0
) -> list[Region]:
    """A mixed-selectivity viewport workload: rectangles across three
    size classes (the portal's map-viewport query shape).  With
    ``polygon_every`` > 0, every that-many-th region is a convex-ish
    polygon instead, exercising the generic classification path."""
    rng = np.random.default_rng(seed)
    regions: list[Region] = []
    for i in range(n):
        cx = float(rng.uniform(0.0, EXTENT))
        cy = float(rng.uniform(0.0, EXTENT))
        half = float(rng.choice([2.0, 8.0, 25.0]) * rng.uniform(0.5, 1.5))
        if polygon_every and i % polygon_every == polygon_every - 1:
            k = int(rng.integers(3, 7))
            angles = np.sort(rng.uniform(0.0, 2 * np.pi, k))
            verts = [
                GeoPoint(
                    min(EXTENT, max(0.0, cx + half * float(np.cos(a)))),
                    min(EXTENT, max(0.0, cy + half * float(np.sin(a)))),
                )
                for a in angles
            ]
            regions.append(Polygon(verts))
        else:
            regions.append(
                Rect(
                    max(0.0, cx - half),
                    max(0.0, cy - half),
                    min(EXTENT, cx + half),
                    min(EXTENT, cy + half),
                )
            )
    return regions


def answer_key(answer: QueryAnswer, probes: list[int]) -> tuple:
    """Everything a caller can observe from ``range_scan``, with the
    kernel-only stats counters masked out."""
    stats = {
        f.name: getattr(answer.stats, f.name)
        for f in fields(answer.stats)
        if f.name not in KERNEL_ONLY_STATS
    }
    return (
        answer.probed_readings,
        answer.cached_readings,
        answer.cached_sketches,
        answer.cached_sketch_nodes,
        answer.terminals,
        stats,
        probes,
    )


def check_parity(
    legacy: COLRTree, kernel: COLRTree, regions: Sequence[Region], now: float,
    staleness: float,
) -> None:
    """Every region, twice (second pass goes through the plan cache)."""
    for _ in range(2):
        for region in regions:
            a_legacy, p_legacy = range_scan(legacy, region, now, staleness)
            a_kernel, p_kernel = range_scan(kernel, region, now, staleness)
            if answer_key(a_legacy, p_legacy) != answer_key(a_kernel, p_kernel):
                raise AssertionError(
                    f"kernel/legacy answers diverge on region {region!r}"
                )


def time_pass(
    tree: COLRTree, regions: Sequence[Region], now: float, staleness: float
) -> float:
    start = time.perf_counter()
    for region in regions:
        range_scan(tree, region, now, staleness)
    return time.perf_counter() - start


def run_traversal_bench(
    n_sensors: int = 40_000,
    n_regions: int = 200,
    warm_passes: int = 5,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    if quick:
        n_sensors, n_regions, warm_passes = 2_500, 60, 3
    bench_start = time.perf_counter()
    sensors = make_sensors(n_sensors, seed)
    # Timed workload: rectangular viewports (the portal's query shape).
    # Parity additionally covers polygonal regions, which exercise the
    # generic classification path; they are timed as a secondary series
    # because both configurations bottom out in the same exact polygon
    # predicates, so the kernel's win there is plan-cache reuse only.
    regions = make_regions(n_regions, seed + 1)
    n_poly = max(10, n_regions // 10)
    poly_regions = [
        r
        for r in make_regions(3 * n_poly, seed + 2, polygon_every=1)
        if isinstance(r, Polygon)
    ][:n_poly]
    base = COLRTreeConfig(
        fanout=8,
        leaf_capacity=32,
        max_expiry_seconds=600.0,
        slot_seconds=120.0,
        seed=seed,
        plan_cache_size=max(256, 2 * (n_regions + n_poly)),
    )
    legacy = COLRTree(sensors, replace(base, flat_kernel_enabled=False))
    kernel = COLRTree(sensors, base)
    now, staleness = 1_000.0, 240.0

    check_parity(legacy, kernel, regions + poly_regions, now, staleness)

    # Parity ran every region through both trees; reset the plan cache so
    # the first timed kernel pass is genuinely cold.
    legacy_times = []
    cold_times = []
    for _ in range(3):
        legacy_times.append(time_pass(legacy, regions, now, staleness))
        kernel.plan_cache.clear()
        cold_times.append(time_pass(kernel, regions, now, staleness))
    warm_times = [
        time_pass(kernel, regions, now, staleness) for _ in range(warm_passes)
    ]
    poly_legacy_s = time_pass(legacy, poly_regions, now, staleness)
    kernel.plan_cache.clear()
    poly_cold_s = time_pass(kernel, poly_regions, now, staleness)
    poly_warm_s = time_pass(kernel, poly_regions, now, staleness)

    legacy_s = min(legacy_times)
    cold_s = min(cold_times)
    warm_s = min(warm_times)
    result = {
        "benchmark": "traversal",
        **run_stamp(),
        "workload": {
            "n_sensors": n_sensors,
            "n_regions": n_regions,
            "warm_passes": warm_passes,
            "seed": seed,
            "quick": quick,
            "tree_nodes": len(kernel.kernel.nodes),
            "tree_height": int(kernel.root.level),
        },
        "parity": "identical",
        "wall_seconds": time.perf_counter() - bench_start,
        "seconds_per_pass": {
            "legacy": legacy_s,
            "kernel_cold": cold_s,
            "kernel_warm": warm_s,
        },
        "microseconds_per_query": {
            "legacy": 1e6 * legacy_s / n_regions,
            "kernel_cold": 1e6 * cold_s / n_regions,
            "kernel_warm": 1e6 * warm_s / n_regions,
        },
        "speedup": {
            "cold": legacy_s / cold_s,
            "warm": legacy_s / warm_s,
        },
        "polygon_secondary": {
            "n_regions": len(poly_regions),
            "seconds_per_pass": {
                "legacy": poly_legacy_s,
                "kernel_cold": poly_cold_s,
                "kernel_warm": poly_warm_s,
            },
            "speedup": {
                "cold": poly_legacy_s / poly_cold_s,
                "warm": poly_legacy_s / poly_warm_s,
            },
        },
        "plan_cache": {
            "hits": kernel.plan_cache.hits,
            "misses": kernel.plan_cache.misses,
            "entries": len(kernel.plan_cache),
        },
    }
    return result


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=40_000)
    parser.add_argument("--regions", type=int, default=200)
    parser.add_argument("--warm-passes", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (parity still asserted)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the acceptance thresholds (>=3x cold, >=10x warm)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_traversal.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_traversal_bench(
        n_sensors=args.sensors,
        n_regions=args.regions,
        warm_passes=args.warm_passes,
        seed=args.seed,
        quick=args.quick,
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    per_query = result["microseconds_per_query"]
    print(
        f"traversal bench ({result['workload']['n_sensors']} sensors, "
        f"{result['workload']['n_regions']} regions): "
        f"legacy {per_query['legacy']:.0f}us/q, "
        f"kernel cold {per_query['kernel_cold']:.0f}us/q "
        f"({result['speedup']['cold']:.1f}x), "
        f"warm {per_query['kernel_warm']:.0f}us/q "
        f"({result['speedup']['warm']:.1f}x) -> {args.output}"
    )
    if args.check:
        if result["speedup"]["cold"] < 3.0:
            print(f"FAIL: cold speedup {result['speedup']['cold']:.2f}x < 3x")
            return 1
        if result["speedup"]["warm"] < 10.0:
            print(f"FAIL: warm speedup {result['speedup']['warm']:.2f}x < 10x")
            return 1
        print("acceptance thresholds met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
