"""Figure 4 — end-to-end probes and latency over freshness windows.

Four panels over a sweep of query freshness (staleness) windows:

i.   ratio of sensor probes (flat cache / COLR-Tree, hierarchical
     cache / COLR-Tree),
ii.  ratio of processing latency,
iii. absolute probe counts,
iv.  absolute processing latencies.

Paper shape: COLR-Tree probes 30-100x fewer sensors than the
collection-agnostic configurations, cuts processing latency 3-5x vs
the hierarchical cache (≈40 ms absolute), and its probe curve bends at
a freshness of ≈4 minutes as the cache covers more of each query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import RunResult, run_query_stream
from repro.bench.report import WallTimer, format_table
from repro.bench.setup import EvalSetup


@dataclass
class Fig4Row:
    freshness_seconds: float
    probes: dict[str, float]
    latency: dict[str, float]

    def probe_ratio(self, name: str) -> float:
        return self.probes[name] / max(1e-9, self.probes["colr_tree"])

    def latency_ratio(self, name: str) -> float:
        return self.latency[name] / max(1e-9, self.latency["colr_tree"])


@dataclass
class Fig4Result:
    rows: list[Fig4Row]
    wall_seconds: float = 0.0

    def format_table(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.freshness_seconds / 60.0,
                    row.probes["flat_cache"],
                    row.probes["hier_cache"],
                    row.probes["colr_tree"],
                    row.probe_ratio("flat_cache"),
                    row.probe_ratio("hier_cache"),
                    row.latency["flat_cache"] * 1e3,
                    row.latency["hier_cache"] * 1e3,
                    row.latency["colr_tree"] * 1e3,
                    row.latency_ratio("hier_cache"),
                ]
            )
        return format_table(
            [
                "fresh_min",
                "probes_flat",
                "probes_hier",
                "probes_colr",
                "probe_x_flat",
                "probe_x_hier",
                "lat_flat_ms",
                "lat_hier_ms",
                "lat_colr_ms",
                "lat_x_hier",
            ],
            table_rows,
            title="Figure 4: probes and processing latency vs freshness window",
            wall_seconds=self.wall_seconds,
        )

    def summary(self) -> dict[str, float]:
        """The paper's headline claims over the sweep."""
        max_flat_ratio = max(r.probe_ratio("flat_cache") for r in self.rows)
        mean_hier_lat_ratio = sum(r.latency_ratio("hier_cache") for r in self.rows) / len(
            self.rows
        )
        mean_colr_ms = sum(r.latency["colr_tree"] for r in self.rows) / len(self.rows) * 1e3
        return {
            "max_probe_reduction_vs_flat": max_flat_ratio,
            "mean_latency_ratio_hier_over_colr": mean_hier_lat_ratio,
            "mean_colr_processing_ms": mean_colr_ms,
        }


def run_fig4(
    setup: EvalSetup | None = None,
    freshness_windows: list[float] | None = None,
) -> Fig4Result:
    """Sweep freshness windows; fresh systems per point (cold caches)."""
    setup = setup if setup is not None else EvalSetup()
    windows = (
        freshness_windows
        if freshness_windows is not None
        else [60.0, 120.0, 240.0, 360.0, 480.0, 600.0]
    )
    rows: list[Fig4Row] = []
    with WallTimer() as timer:
        for w in windows:
            queries = [
                q.__class__(
                    region=q.region,
                    at_time=q.at_time,
                    staleness_seconds=w,
                    sample_size=q.sample_size,
                )
                for q in setup.queries
            ]
            systems = {
                "flat_cache": (setup.make_flat_cache(), False),
                "hier_cache": (setup.make_hierarchical_cache(), False),
                "colr_tree": (setup.make_colr_tree(), True),
            }
            probes: dict[str, float] = {}
            latency: dict[str, float] = {}
            for name, (system, sampling) in systems.items():
                run: RunResult = run_query_stream(
                    system, queries, use_sampling=sampling
                )
                probes[name] = run.mean("sensors_probed")
                latency[name] = run.mean("processing_seconds")
            rows.append(Fig4Row(freshness_seconds=w, probes=probes, latency=latency))
    return Fig4Result(rows=rows, wall_seconds=timer.seconds)


if __name__ == "__main__":  # pragma: no cover
    result = run_fig4()
    print(result.format_table())
    print(result.summary())
