"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation toggles one mechanism of the full index and reports the
metric that mechanism is supposed to move:

* **oversampling** (1/a availability scale-up) → achieved sample size
  under an unreliable fleet;
* **redistribution** (Algorithm 2) → achieved sample size under a
  spatially skewed deployment;
* **aggregate caching** (slot caches at internal nodes vs leaf-only
  caching) → probes and processing latency;
* **build method** (k-means clustering vs STR packing) → traversal;
* **live slot size** (Δ on the running system, complementing the
  Figure 2 model) → probes and latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.bench.harness import run_query_stream
from repro.bench.report import WallTimer, format_table
from repro.bench.setup import EvalSetup
from repro.core.tree import COLRTree
from repro.sensors.availability import AvailabilityModel
from repro.sensors.network import SensorNetwork


@dataclass(frozen=True, slots=True)
class AblationRow:
    ablation: str
    variant: str
    metric: str
    value: float


@dataclass
class AblationResult:
    rows: list[AblationRow]
    wall_seconds: float = 0.0

    def value(self, ablation: str, variant: str, metric: str) -> float:
        for row in self.rows:
            if (row.ablation, row.variant, row.metric) == (ablation, variant, metric):
                return row.value
        raise KeyError((ablation, variant, metric))

    def format_table(self) -> str:
        return format_table(
            ["ablation", "variant", "metric", "value"],
            [[r.ablation, r.variant, r.metric, r.value] for r in self.rows],
            title="Design-choice ablations",
            wall_seconds=self.wall_seconds,
        )


def run_oversampling_ablation(setup: EvalSetup | None = None) -> AblationResult:
    """Unreliable fleet: does the 1/a scale-up recover the target R?"""
    setup = setup if setup is not None else EvalSetup(
        n_sensors=10_000, n_queries=200, availability=0.5
    )
    rows: list[AblationRow] = []
    for variant, enabled in (("on", True), ("off", False)):
        config = replace(setup.config, oversampling_enabled=enabled)
        system = setup.make_colr_tree(config)
        # Warm the availability history first so estimates are honest.
        run_query_stream(system, setup.queries[:50])
        run = run_query_stream(system, setup.queries[50:])
        achieved = np.mean(
            [min(r.result_weight, r.target_size) / max(1, r.target_size) for r in run.records]
        )
        rows.append(AblationRow("oversampling", variant, "achieved_fraction", float(achieved)))
        rows.append(
            AblationRow("oversampling", variant, "mean_probes", run.mean("sensors_probed"))
        )
    return AblationResult(rows)


def run_redistribution_ablation(seed: int = 0) -> AblationResult:
    """Skewed deployment with spatial holes: does Algorithm 2 recover
    genuine shortfalls?

    The query covers only the *sparse* part of a heavily skewed
    population, with a target close to the in-region population:
    overlap-weighted shares routinely exceed thin subtrees' real pools
    (the bounding-box uniformity assumption fails at the dense/sparse
    boundary), so without redistribution the sample under-delivers.
    """
    from repro.geometry import GeoPoint, Rect
    from repro.sensors.registry import SensorRegistry
    from repro.workloads.livelocal import QuerySpec

    rng = np.random.default_rng(seed)
    registry = SensorRegistry()
    for _ in range(1800):  # dense corner
        registry.register(
            GeoPoint(float(rng.uniform(0, 15)), float(rng.uniform(0, 15))),
            expiry_seconds=300.0,
        )
    for _ in range(200):  # sparse elsewhere
        registry.register(
            GeoPoint(float(rng.uniform(15, 100)), float(rng.uniform(15, 100))),
            expiry_seconds=300.0,
        )
    queries = [
        QuerySpec(
            region=Rect(15, 15, 100, 100),
            at_time=float(i) * 1000.0,  # cold cache each time
            staleness_seconds=60.0,
            sample_size=150,
        )
        for i in range(30)
    ]
    from repro.core.config import COLRTreeConfig

    rows: list[AblationRow] = []
    for variant, enabled in (("on", True), ("off", False)):
        config = COLRTreeConfig(
            caching_enabled=False, redistribution_enabled=enabled, seed=seed
        )
        network = SensorNetwork(registry.all(), seed=seed)
        tree = COLRTree(registry.all(), config, network=network)
        run = run_query_stream(tree, queries)
        achieved = np.mean([r.result_weight for r in run.records])
        rows.append(AblationRow("redistribution", variant, "achieved_size", float(achieved)))
    return AblationResult(rows)


def run_aggregate_cache_ablation(setup: EvalSetup | None = None) -> AblationResult:
    """Leaf-only caching vs the full slot-cache tree."""
    setup = setup if setup is not None else EvalSetup(n_sensors=10_000, n_queries=300)
    rows: list[AblationRow] = []
    for variant, enabled in (("tree", True), ("leaf_only", False)):
        config = replace(setup.config, aggregate_caching_enabled=enabled)
        system = setup.make_colr_tree(config)
        run = run_query_stream(system, setup.queries)
        rows.append(
            AblationRow("aggregate_cache", variant, "mean_probes", run.mean("sensors_probed"))
        )
        rows.append(
            AblationRow(
                "aggregate_cache",
                variant,
                "mean_latency_ms",
                run.mean("processing_seconds") * 1e3,
            )
        )
    return AblationResult(rows)


def run_build_method_ablation(setup: EvalSetup | None = None) -> AblationResult:
    """k-means clustering (the paper's builder) vs STR and Hilbert
    packing."""
    setup = setup if setup is not None else EvalSetup(n_sensors=10_000, n_queries=300)
    rows: list[AblationRow] = []
    for method in ("kmeans", "str", "hilbert"):
        model = AvailabilityModel()
        network = SensorNetwork(setup.sensors, availability_model=model, seed=setup.seed + 1)
        tree = COLRTree(
            setup.sensors,
            setup.config,
            network=network,
            availability_model=model,
            cost_model=setup.cost_model,
            build_method=method,
        )
        run = run_query_stream(tree, setup.queries)
        rows.append(
            AblationRow("build_method", method, "mean_nodes_traversed", run.mean("nodes_traversed"))
        )
        rows.append(
            AblationRow("build_method", method, "mean_probes", run.mean("sensors_probed"))
        )
    return AblationResult(rows)


def run_live_slot_size_ablation(
    setup: EvalSetup | None = None,
    slot_seconds: list[float] | None = None,
) -> AblationResult:
    """Sweep Δ on the running index (Figure 2 validated the model; this
    validates the live system's sensitivity)."""
    setup = setup if setup is not None else EvalSetup(n_sensors=10_000, n_queries=300)
    deltas = slot_seconds if slot_seconds is not None else [30.0, 120.0, 300.0, 600.0]
    rows: list[AblationRow] = []
    for delta in deltas:
        config = setup.config.with_slot_seconds(delta)
        system = setup.make_colr_tree(config)
        run = run_query_stream(system, setup.queries)
        rows.append(
            AblationRow("slot_size", f"{delta:.0f}s", "mean_probes", run.mean("sensors_probed"))
        )
        rows.append(
            AblationRow(
                "slot_size",
                f"{delta:.0f}s",
                "mean_latency_ms",
                run.mean("processing_seconds") * 1e3,
            )
        )
    return AblationResult(rows)


def run_terminal_level_ablation(
    setup: EvalSetup | None = None,
    levels: list[int] | None = None,
) -> AblationResult:
    """Sweep the terminal threshold ``T`` (the zoom knob): shallower
    thresholds terminate paths higher, trading traversal for coarser
    per-terminal allocation."""
    setup = setup if setup is not None else EvalSetup(n_sensors=10_000, n_queries=300)
    sweep = levels if levels is not None else [0, 1, 2, 3]
    rows: list[AblationRow] = []
    for level in sweep:
        system = setup.make_colr_tree(
            replace(
                setup.config,
                terminal_level=level,
                oversample_level=max(level, setup.config.oversample_level),
            )
        )
        run = run_query_stream(system, setup.queries)
        rows.append(
            AblationRow("terminal_level", f"T={level}", "mean_nodes_traversed", run.mean("nodes_traversed"))
        )
        rows.append(
            AblationRow("terminal_level", f"T={level}", "mean_terminals", run.mean("terminal_count"))
        )
        rows.append(
            AblationRow("terminal_level", f"T={level}", "mean_probes", run.mean("sensors_probed"))
        )
    return AblationResult(rows)


def run_reversible_aggregates_ablation(setup: EvalSetup | None = None) -> AblationResult:
    """The future-work extension: decomposable cached aggregates should
    cut the cache-induced probe discretization error at small targets
    without extra probes."""
    setup = setup if setup is not None else EvalSetup(n_sensors=10_000, n_queries=300)
    rows: list[AblationRow] = []
    for variant, enabled in (("on", True), ("off", False)):
        config = replace(setup.config, reversible_aggregates=enabled)
        system = setup.make_colr_tree(config)
        run = run_query_stream(system, setup.queries, sample_size=30)
        rows.append(
            AblationRow(
                "reversible_aggregates",
                variant,
                "mean_abs_pde",
                float(np.mean([abs(r.terminal_pde) for r in run.records])),
            )
        )
        rows.append(
            AblationRow(
                "reversible_aggregates",
                variant,
                "mean_probes",
                run.mean("sensors_probed"),
            )
        )
        rows.append(
            AblationRow(
                "reversible_aggregates",
                variant,
                "mean_result_weight",
                run.mean("result_weight"),
            )
        )
    return AblationResult(rows)


def run_all_ablations() -> AblationResult:
    """Every ablation at its default (bench-friendly) scale."""
    rows: list[AblationRow] = []
    with WallTimer() as timer:
        for result in (
            run_oversampling_ablation(),
            run_redistribution_ablation(),
            run_aggregate_cache_ablation(),
            run_build_method_ablation(),
            run_live_slot_size_ablation(),
            run_terminal_level_ablation(),
            run_reversible_aggregates_ablation(),
        ):
            rows.extend(result.rows)
    return AblationResult(rows, wall_seconds=timer.seconds)


if __name__ == "__main__":  # pragma: no cover
    print(run_all_ablations().format_table())
