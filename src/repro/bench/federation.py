"""Federation benchmark: scatter-gather throughput over portal shards.

Partitions a mixed sensor fleet across 1 / 2 / 4 / 8 shards (spatial
grid partitioner) and drives the same multi-tick batch-query workload
through each federation, measuring *modeled* end-to-end seconds per
tick — for a federation that is the makespan across shards (each shard
owns its sub-batch, its own connection pool and its own maintenance
bill; shards work concurrently), so throughput is queries per modeled
makespan second.  Wall-clock seconds are recorded too, but this process
simulates every shard itself, so the modeled makespan is the scaling
claim.

Before any timing, two parity gates run (the benchmark refuses to time
a federation that changes answers):

* **single-shard bit-identity** — a 1-shard ``FederatedPortal`` and an
  unsharded ``SensorMapPortal`` built from the same fleet run the same
  query matrix (exact / sampled x rectangle / polygon x cold / warm
  cache, over a reliable and a flaky network, sync and transport-parity
  probe paths) and every per-answer field, timing and network counter
  must match exactly.
* **multi-shard conservation** — on a fully reliable fleet, every
  sharded exact answer must carry the same result weight as the
  unsharded one (sampled answers the same sample total).

A degradation probe then kills one shard of the widest federation and
asserts the workload yields flagged partial answers — never an
exception — with the other shards' results intact.

A **shortfall-recovery probe** exercises the coordinator-level
REDISTRIBUTE (Algorithm 2 lifted to the federation): an
availability-skewed fleet (one spatial half near-dead) makes the flaky
shards' overlap-weighted shares exceed what their pools can deliver, so
the first gather of a large sampled query comes up short by >= 10%.
With redistribution off the shortfall stands; with it on, the top-up
round re-splits the shortfall over the healthy shards' residual pools
and the achieved size must recover to within 2% of the target (or every
routed shard must be provably drained).

Results land in ``BENCH_federation.json`` (or ``--output``).
``--quick`` shrinks the fleet for CI smoke runs (both parity gates, the
degradation probe and the shortfall probe still run); ``--check``
additionally asserts the acceptance thresholds (>= 1.5x batch-query
throughput at 4 shards vs 1, partial — not failed — answers with a dead
shard, and the shortfall-recovery bounds above).

Run with ``PYTHONPATH=src python -m repro.bench.federation``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bench.report import run_stamp
from repro.core.config import COLRTreeConfig
from repro.federation import FederatedPortal, FederationConfig, make_partitioner
from repro.geometry import GeoPoint, Polygon, Rect
from repro.portal import SensorMapPortal, SensorQuery
from repro.transport import TransportConfig

EXTENT = 100.0
STALENESS = 120.0
TICK_SECONDS = 45.0
SENSOR_TYPES = ("temperature", "humidity", "wind", "rain")
RELIABLE_AVAILABILITY = 0.95
FLAKY_AVAILABILITY = 0.35
FLAKY_FRACTION = 0.3
NETWORK_OPTIONS = {"latency_jitter": 0.3, "timeout_seconds": 0.45}

BENCH_FEDERATION = FederationConfig(
    shard_retry_budget=1,
    retry_backoff_base=0.5,
    retry_backoff_multiplier=2.0,
)


def _fleet(
    n_sensors: int,
    seed: int,
    flaky_fraction: float,
    reliable_availability: float = RELIABLE_AVAILABILITY,
):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, EXTENT, n_sensors)
    ys = rng.uniform(0.0, EXTENT, n_sensors)
    expiries = rng.uniform(120.0, 600.0, n_sensors)
    flaky = rng.random(n_sensors) < flaky_fraction
    for i in range(n_sensors):
        yield (
            GeoPoint(float(xs[i]), float(ys[i])),
            float(expiries[i]),
            SENSOR_TYPES[i % len(SENSOR_TYPES)],
            FLAKY_AVAILABILITY if flaky[i] else reliable_availability,
        )


def make_unsharded(
    n_sensors: int,
    seed: int,
    transport: TransportConfig | None = None,
    flaky_fraction: float = FLAKY_FRACTION,
    reliable_availability: float = RELIABLE_AVAILABILITY,
    network_options: dict | None = None,
    config: COLRTreeConfig | None = None,
) -> SensorMapPortal:
    portal = SensorMapPortal(
        config=config,
        max_sensors_per_query=None,
        transport=transport,
        network_options=dict(
            NETWORK_OPTIONS if network_options is None else network_options
        ),
    )
    for location, expiry, sensor_type, availability in _fleet(
        n_sensors, seed, flaky_fraction, reliable_availability
    ):
        portal.register_sensor(
            location, expiry, sensor_type=sensor_type, availability=availability
        )
    portal.rebuild_index()
    return portal


def make_federation(
    n_sensors: int,
    seed: int,
    n_shards: int,
    partitioner_kind: str = "grid",
    transport: TransportConfig | None = None,
    flaky_fraction: float = FLAKY_FRACTION,
    reliable_availability: float = RELIABLE_AVAILABILITY,
    network_options: dict | None = None,
    federation: FederationConfig | None = None,
    config: COLRTreeConfig | None = None,
) -> FederatedPortal:
    portal = FederatedPortal(
        partitioner=make_partitioner(partitioner_kind, n_shards, seed=seed),
        config=config,
        max_sensors_per_query=None,
        transport=transport,
        network_options=dict(
            NETWORK_OPTIONS if network_options is None else network_options
        ),
        federation=BENCH_FEDERATION if federation is None else federation,
    )
    for location, expiry, sensor_type, availability in _fleet(
        n_sensors, seed, flaky_fraction, reliable_availability
    ):
        portal.register_sensor(
            location, expiry, sensor_type=sensor_type, availability=availability
        )
    portal.rebuild_index()
    return portal


def make_viewports(
    level: int, seed: int, half_range: tuple[float, float] = (8.0, 20.0)
) -> list[SensorQuery]:
    """``level`` concurrent viewports drawn round-robin from a hotspot
    pool spread over the whole extent, so a grid federation sees work on
    every shard (same pool shape as ``bench.transport``, but the default
    viewports are wide-area: thousands of in-region sensors at the
    40k-fleet scale, so probe rounds are volume-bound — many connection
    waves — rather than one fixed round trip, which is the regime where
    splitting the fleet splits collection time)."""
    pool_size = max(1, level // 4)
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(pool_size):
        cx = float(rng.uniform(15.0, EXTENT - 15.0))
        cy = float(rng.uniform(15.0, EXTENT - 15.0))
        half = float(rng.uniform(*half_range))
        pool.append(
            Rect(
                max(0.0, cx - half),
                max(0.0, cy - half),
                min(EXTENT, cx + half),
                min(EXTENT, cy + half),
            )
        )
    return [
        SensorQuery(region=pool[i % pool_size], staleness_seconds=STALENESS)
        for i in range(level)
    ]


# ----------------------------------------------------------------------
# Parity gates
# ----------------------------------------------------------------------
def _parity_queries() -> list[SensorQuery]:
    """Exact/sampled x rectangle/polygon (an L-shaped hexagon), typed
    and untyped."""
    rect = Rect(12.0, 18.0, 68.0, 74.0)
    poly = Polygon(
        [
            GeoPoint(10.0, 10.0),
            GeoPoint(90.0, 10.0),
            GeoPoint(90.0, 45.0),
            GeoPoint(50.0, 45.0),
            GeoPoint(50.0, 90.0),
            GeoPoint(10.0, 90.0),
        ]
    )
    return [
        SensorQuery(region=rect, staleness_seconds=STALENESS),
        SensorQuery(region=rect, staleness_seconds=STALENESS, sample_size=40),
        SensorQuery(region=poly, staleness_seconds=STALENESS),
        SensorQuery(region=poly, staleness_seconds=STALENESS, sample_size=25),
        SensorQuery(
            region=rect, staleness_seconds=STALENESS, sensor_type="temperature"
        ),
        SensorQuery(
            region=poly,
            staleness_seconds=60.0,
            sample_size=15,
            sensor_type="humidity",
        ),
    ]


def _assert_identical(context: str, a, b) -> None:
    if len(a.answers) != len(b.answers):
        raise AssertionError(f"parity[{context}]: answer count diverged")
    for x, y in zip(a.answers, b.answers):
        for field in (
            "probed_readings",
            "cached_readings",
            "cached_sketches",
            "cached_sketch_nodes",
            "terminals",
            "stats",
        ):
            if getattr(x, field) != getattr(y, field):
                raise AssertionError(f"parity[{context}]: {field} diverged")
    if a.groups != b.groups:
        raise AssertionError(f"parity[{context}]: display groups diverged")
    if (a.processing_seconds, a.collection_seconds) != (
        b.processing_seconds,
        b.collection_seconds,
    ):
        raise AssertionError(f"parity[{context}]: timings diverged")


def check_single_shard_parity(n_sensors: int, seed: int) -> int:
    """Gate 1: a one-shard federation must be a bit-identical
    pass-through of the unsharded portal on every query shape, cold and
    warm, over reliable / flaky fleets and sync / transport probe paths.
    Returns the number of (context, query) cells compared."""
    cells = 0
    variants = [
        ("reliable-sync", 0.0, None),
        ("flaky-sync", FLAKY_FRACTION, None),
        ("flaky-transport", FLAKY_FRACTION, TransportConfig.parity()),
    ]
    for name, flaky_fraction, transport in variants:
        plain = make_unsharded(
            n_sensors, seed, transport=transport, flaky_fraction=flaky_fraction
        )
        fed = make_federation(
            n_sensors,
            seed,
            n_shards=1,
            transport=transport,
            flaky_fraction=flaky_fraction,
        )
        for phase in ("cold", "warm"):
            for qi, query in enumerate(_parity_queries()):
                _assert_identical(
                    f"{name}/{phase}/q{qi}", plain.execute(query), fed.execute(query)
                )
                cells += 1
            # Batch path over the same matrix, then advance into the
            # next phase so "warm" reuses slot caches across a tick.
            a = plain.execute_batch(_parity_queries())
            b = fed.execute_batch(_parity_queries())
            for qi, (ra, rb) in enumerate(zip(a.results, b.results)):
                _assert_identical(f"{name}/{phase}/batch-q{qi}", ra, rb)
                cells += 1
            if a.stats != b.stats:
                raise AssertionError(f"parity[{name}/{phase}]: batch stats diverged")
            plain.clock.advance(TICK_SECONDS)
            fed.clock.advance(TICK_SECONDS)
        if plain.network.stats != fed.shard(0).network.stats:
            raise AssertionError(f"parity[{name}]: network counters diverged")
    return cells


def check_conservation(n_sensors: int, seed: int, shard_counts: Sequence[int]) -> None:
    """Gate 2: on a fully deterministic network (availability 1.0, no
    latency jitter, no probe timeout — probe outcomes carry no RNG),
    sharding must conserve cold-cache answers: exact result weights
    match the unsharded portal one-for-one (shards hold disjoint
    sensors, so exact scatter-gather loses and double-counts nothing)
    and sampled answers probe the full scattered target.  Each query
    runs against fresh portals so slot caches from earlier queries
    cannot blur the comparison (warm-cache identity is gate 1's job at
    one shard; warm multi-shard answers legitimately differ because the
    shard trees cache different node aggregates)."""
    det = {"latency_jitter": 0.0}
    # Oversampling off on both sides: with every sensor reliable but
    # *unobserved*, the Beta-prior estimate of 0.5 would double each
    # leaf's probe count, and that rounding noise lands differently on
    # one big tree than on eight small ones — exactly the kind of drift
    # this gate is not about.
    exact = COLRTreeConfig(oversampling_enabled=False)
    for qi, query in enumerate(_parity_queries()):
        reference = make_unsharded(
            n_sensors,
            seed,
            flaky_fraction=0.0,
            reliable_availability=1.0,
            network_options=det,
            config=exact,
        )
        want = reference.execute(query).result_weight
        for n_shards in shard_counts:
            if n_shards == 1:
                continue
            fed = make_federation(
                n_sensors,
                seed,
                n_shards,
                flaky_fraction=0.0,
                reliable_availability=1.0,
                network_options=det,
                config=exact,
                # This gate measures what Algorithm 1's *scatter split*
                # conserves on its own; cross-shard top-up rounds
                # legitimately add weight on top and are gated
                # separately by the shortfall-recovery probe.
                federation=replace(
                    BENCH_FEDERATION, redistribution_enabled=False
                ),
            )
            got = fed.execute(query).result_weight
            if query.sample_size:
                # Sampled sizes are only approximately conserved: the
                # scattered shares sum to the unsharded target, but
                # overlap-weighted apportionment estimates per-shard
                # populations, per-shard shortfalls are not topped up
                # here (redistribution is off for this gate), and
                # polygonal regions overshoot their clipped share
                # weights differently per shard geometry.  Bound the
                # drift at 25% (or one whole target for tiny samples).
                slack = max(query.sample_size, int(0.25 * want))
                if abs(got - want) > slack:
                    raise AssertionError(
                        f"conservation: {n_shards} shards q{qi} sampled weight "
                        f"{got} vs {want} (slack {slack})"
                    )
            elif got != want:
                raise AssertionError(
                    f"conservation: {n_shards} shards q{qi} weight "
                    f"{got} != {want}"
                )


# ----------------------------------------------------------------------
# Throughput
# ----------------------------------------------------------------------
def run_shard_count(
    n_sensors: int,
    n_shards: int,
    level: int,
    ticks: int,
    seed: int,
    partitioner_kind: str,
) -> dict:
    fed = make_federation(n_sensors, seed, n_shards, partitioner_kind)
    queries = make_viewports(level, seed + level)
    modeled = 0.0
    wall = time.perf_counter()
    for _ in range(ticks):
        batch = fed.execute_batch(queries)
        # The tick's modeled cost is the slowest shard's sub-batch
        # (processing + collection + maintenance + penalties): shards
        # run concurrently, the gather waits for the stragglers.
        modeled += max(batch.shard_seconds.values(), default=0.0)
        fed.clock.advance(TICK_SECONDS)
    wall = time.perf_counter() - wall
    probes = sum(s.network.stats.probes_attempted for s in fed.shards())
    n_queries = ticks * level
    return {
        "shards": n_shards,
        "queries": n_queries,
        "modeled_seconds": modeled,
        "wall_seconds": wall,
        "modeled_throughput_qps": n_queries / max(1e-12, modeled),
        "probes_attempted": probes,
        "subqueries_scattered": fed.stats.subqueries_scattered,
        "shard_populations": [e.weight for e in fed.directory.entries()],
    }


SHORTFALL_FLAKY_AVAILABILITY = 0.1
SHORTFALL_CALIBRATION_OBS = 400


def _skewed_fleet(n_sensors: int, seed: int):
    """A spatially availability-skewed fleet: sensors in the left half
    of the extent are near-dead (a = 0.1), the right half is perfectly
    reliable.  Under a spatial grid partitioner this concentrates the
    flaky sensors on one side's shards, which is exactly the regime
    where per-shard Algorithm 2 cannot help — the flaky shards' whole
    in-region pools are too small to deliver their overlap-weighted
    shares — and only a cross-shard top-up can close the gap."""
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, EXTENT, n_sensors)
    ys = rng.uniform(0.0, EXTENT, n_sensors)
    expiries = rng.uniform(120.0, 600.0, n_sensors)
    for i in range(n_sensors):
        availability = (
            SHORTFALL_FLAKY_AVAILABILITY if xs[i] < EXTENT / 2.0 else 1.0
        )
        yield (
            GeoPoint(float(xs[i]), float(ys[i])),
            float(expiries[i]),
            SENSOR_TYPES[i % len(SENSOR_TYPES)],
            availability,
        )


def make_skewed_federation(
    n_sensors: int, seed: int, n_shards: int, redistribution_rounds: int
) -> FederatedPortal:
    """A federation over the skewed fleet with calibrated availability
    estimates (the deployed portal would have probe history), a
    jitter-free network, and redistribution dialed to
    ``redistribution_rounds``."""
    fed = FederatedPortal(
        partitioner=make_partitioner("grid", n_shards, seed=seed),
        max_sensors_per_query=None,
        network_options={"latency_jitter": 0.0},
        federation=FederationConfig(
            shard_retry_budget=0,
            redistribution_enabled=redistribution_rounds > 0,
            redistribution_rounds=max(redistribution_rounds, 0),
        ),
    )
    for location, expiry, sensor_type, availability in _skewed_fleet(n_sensors, seed):
        fed.register_sensor(
            location, expiry, sensor_type=sensor_type, availability=availability
        )
    fed.rebuild_index()
    obs = SHORTFALL_CALIBRATION_OBS
    for shard in fed.shards():
        for sensor in shard.registry.all():
            successes = round(sensor.availability * obs)
            shard.availability.seed(sensor.sensor_id, successes, obs - successes)
    return fed


def run_shortfall_recovery(
    n_sensors: int, seed: int, n_shards: int = 8, redistribution_rounds: int = 1
) -> dict:
    """Measure the first-round shortfall of a whole-extent sampled query
    on the skewed fleet, then how much a single cross-shard top-up round
    recovers.  Both runs share the fleet, seeds and the round-1 scatter,
    so the delta is redistribution alone.

    The SAMPLESIZE target is an eighth of the fleet (per type tree —
    half the fleet in readings): large enough that the flaky shards'
    shares dwarf what their near-dead pools can deliver (>= 10% first
    round shortfall), small enough that the healthy shards keep genuine
    residual pool for the top-up to draw on.  Shortfall and recovery
    are reported against ``sample_requested`` — the federated target in
    readings, which is the unit ``result_weight`` counts in."""
    wall_start = time.perf_counter()
    target_units = n_sensors // 8
    query = SensorQuery(
        region=Rect(0.0, 0.0, EXTENT, EXTENT),
        staleness_seconds=STALENESS,
        sample_size=target_units,
    )
    off = make_skewed_federation(n_sensors, seed, n_shards, redistribution_rounds=0)
    result_off = off.execute(query)
    first_round = result_off.result_weight

    on = make_skewed_federation(
        n_sensors, seed, n_shards, redistribution_rounds=max(1, redistribution_rounds)
    )
    result_on = on.execute(query)
    recovered = result_on.result_weight

    target = result_on.sample_requested
    assert target is not None and target == result_off.sample_requested
    shortfall_fraction = (target - first_round) / target
    recovered_gap = max(0, target - recovered) / target
    return {
        "n_sensors": n_sensors,
        "n_shards": n_shards,
        "target_units": target_units,
        "target_readings": target,
        "flaky_availability": SHORTFALL_FLAKY_AVAILABILITY,
        "first_round_achieved": first_round,
        "first_round_shortfall_fraction": shortfall_fraction,
        "recovered_achieved": recovered,
        "recovered_gap_fraction": recovered_gap,
        "redistribution_rounds_run": result_on.redistribution_rounds_run,
        "topup_sensors_gained": result_on.topup_sensors_gained,
        "residual_shortfall": result_on.sampled_shortfall,
        "pool_exhausted_shards": list(result_on.pool_exhausted_shards),
        "all_pools_exhausted": len(result_on.pool_exhausted_shards) >= n_shards,
        "topup_collection_charged": result_on.collection_seconds
        > result_off.collection_seconds,
        "wall_seconds": time.perf_counter() - wall_start,
    }


def run_degradation(n_sensors: int, seed: int, n_shards: int) -> dict:
    """Kill one shard of a federation mid-workload; the answers must
    degrade to flagged partials, never raise."""
    wall_start = time.perf_counter()
    fed = make_federation(n_sensors, seed, n_shards)
    wide = SensorQuery(
        region=Rect(0.0, 0.0, EXTENT, EXTENT), staleness_seconds=STALENESS
    )
    healthy = fed.execute(wide)
    victim = n_shards // 2
    fed.kill_shard(victim)
    degraded = fed.execute(wide)
    batch = fed.execute_batch(make_viewports(8, seed))
    fed.revive_shard(victim)
    recovered = fed.execute(wide)
    return {
        "shards": n_shards,
        "victim": victim,
        "healthy_weight": healthy.result_weight,
        "degraded_weight": degraded.result_weight,
        "degraded_partial": degraded.partial,
        "degraded_failed_shards": list(degraded.failed_shards),
        "batch_partial": batch.partial,
        "recovered_partial": recovered.partial,
        "shard_retries": fed.stats.shard_retries,
        "wall_seconds": time.perf_counter() - wall_start,
    }


def run_federation_bench(
    n_sensors: int = 40_000,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    level: int = 64,
    ticks: int = 6,
    seed: int = 0,
    partitioner_kind: str = "grid",
    quick: bool = False,
    redistribution_rounds: int = 1,
) -> dict:
    if quick:
        n_sensors, shard_counts, level, ticks = 2_500, (1, 2, 4), 32, 4
    bench_start = time.perf_counter()

    parity_cells = check_single_shard_parity(min(n_sensors, 4_000), seed)
    check_conservation(min(n_sensors, 4_000), seed, shard_counts)

    per_count = [
        run_shard_count(n_sensors, n, level, ticks, seed, partitioner_kind)
        for n in shard_counts
    ]
    base = per_count[0]["modeled_seconds"]
    for row in per_count:
        row["speedup_vs_1"] = base / max(1e-12, row["modeled_seconds"])
    degradation = run_degradation(
        min(n_sensors, 4_000), seed, n_shards=max(shard_counts)
    )
    shortfall = run_shortfall_recovery(
        4_000 if quick else n_sensors,
        seed,
        n_shards=8,
        redistribution_rounds=redistribution_rounds,
    )
    return {
        "benchmark": "federation_scatter_gather",
        **run_stamp(),
        "workload": {
            "n_sensors": n_sensors,
            "shard_counts": list(shard_counts),
            "level": level,
            "ticks": ticks,
            "tick_seconds": TICK_SECONDS,
            "seed": seed,
            "quick": quick,
            "partitioner": partitioner_kind,
            "staleness_seconds": STALENESS,
            "sensor_types": list(SENSOR_TYPES),
            "flaky_fraction": FLAKY_FRACTION,
            "availabilities": {
                "reliable": RELIABLE_AVAILABILITY,
                "flaky": FLAKY_AVAILABILITY,
            },
            "network": dict(NETWORK_OPTIONS),
            "federation_config": {
                "shard_retry_budget": BENCH_FEDERATION.shard_retry_budget,
                "retry_backoff_base": BENCH_FEDERATION.retry_backoff_base,
                "retry_backoff_multiplier": BENCH_FEDERATION.retry_backoff_multiplier,
            },
            "redistribution_rounds": redistribution_rounds,
        },
        "parity": {"status": "identical", "cells": parity_cells},
        "wall_seconds": time.perf_counter() - bench_start,
        "shard_counts": per_count,
        "degradation": degradation,
        "shortfall_recovery": shortfall,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=40_000)
    parser.add_argument("--level", type=int, default=64)
    parser.add_argument("--ticks", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--partitioner", choices=("grid", "kmeans"), default="grid"
    )
    parser.add_argument(
        "--redistribution-rounds",
        type=int,
        default=1,
        help="top-up scatter rounds the shortfall-recovery probe grants "
        "the coordinator (the 'off' baseline always runs with 0)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (parity still asserted)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the acceptance thresholds (>=1.5x modeled throughput "
        "at 4 shards vs 1; dead shard degrades to partial answers)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_federation.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_federation_bench(
        n_sensors=args.sensors,
        level=args.level,
        ticks=args.ticks,
        seed=args.seed,
        partitioner_kind=args.partitioner,
        quick=args.quick,
        redistribution_rounds=args.redistribution_rounds,
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"parity: {result['parity']['cells']} cells identical")
    for row in result["shard_counts"]:
        print(
            f"  {row['shards']:>2} shards: {row['queries']} queries in "
            f"{row['modeled_seconds']:.2f}s modeled / "
            f"{row['wall_seconds']:.2f}s wall "
            f"({row['modeled_throughput_qps']:.1f} q/s, "
            f"{row['speedup_vs_1']:.2f}x vs 1 shard, "
            f"populations {row['shard_populations']})"
        )
    d = result["degradation"]
    print(
        f"  degradation: shard {d['victim']}/{d['shards']} killed -> partial="
        f"{d['degraded_partial']} weight {d['healthy_weight']} -> "
        f"{d['degraded_weight']}, recovered partial={d['recovered_partial']}"
    )
    s = result["shortfall_recovery"]
    print(
        f"  shortfall: {s['n_shards']} shards, target {s['target_readings']} -> "
        f"round 1 {s['first_round_achieved']} "
        f"({s['first_round_shortfall_fraction']:.1%} short), "
        f"redistributed -> {s['recovered_achieved']} "
        f"(gap {s['recovered_gap_fraction']:.1%}, "
        f"+{s['topup_sensors_gained']} in "
        f"{s['redistribution_rounds_run']} round(s))"
    )
    print(f"federation bench -> {args.output}")
    if args.check:
        four = [r for r in result["shard_counts"] if r["shards"] == 4]
        if not four:
            print("FAIL: no 4-shard level in the sweep")
            return 1
        if four[0]["speedup_vs_1"] < 1.5:
            print(
                f"FAIL: 4-shard modeled speedup {four[0]['speedup_vs_1']:.2f}x "
                "< 1.5x vs 1 shard"
            )
            return 1
        if not d["degraded_partial"] or d["recovered_partial"]:
            print("FAIL: dead shard did not degrade to a flagged partial answer")
            return 1
        if s["first_round_shortfall_fraction"] < 0.10:
            print(
                f"FAIL: skewed-fleet first round only "
                f"{s['first_round_shortfall_fraction']:.1%} short (< 10% — the "
                "probe is not exercising a real shortfall)"
            )
            return 1
        if s["recovered_gap_fraction"] > 0.02 and not s["all_pools_exhausted"]:
            print(
                f"FAIL: redistribution left a {s['recovered_gap_fraction']:.1%} "
                "gap to target without provable pool exhaustion"
            )
            return 1
        print("acceptance thresholds met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
