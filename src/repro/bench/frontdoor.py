"""Front-door benchmark: tiered result cache, streaming gathers,
admission control.

Three probes, each with its own acceptance gate (``--check``):

* **Cache tiers** — the Zipf multi-tenant Live-Local viewport stream
  runs through two identically built portals, one behind the tiered
  cache and one with caching disabled (both quantize viewports — the
  serving contract, not a cache trick).  Gates: warm-half L1+L2 hit
  rate >= 50%; cache-hit serving p99 at least 5x below the uncached
  serving p99.
* **Streaming gathers** — twin degraded federations (one shard killed)
  drive the same standing viewports through the continuous-query
  manager, one with synchronous gathers and one publishing at a
  freshness deadline.  Gates: streaming per-tick published-latency p99
  <= 0.7x sync; on a healthy fleet the streaming *final* answer is
  bit-identical to the synchronous gather (asserted with the
  federation bench's own parity comparator).
* **Admission** — the uncached open-loop serving harness runs at 2x
  the calibrated sustainable rate with admission off, then on.  Gates:
  admission keeps served p99 <= 0.5x the unprotected p99; shedding
  actually happened; and the accounting is exact (offered == served +
  shed — nothing disappears silently).

Results land in ``BENCH_frontdoor.json`` (or ``--output``); ``--quick``
shrinks the fleet for CI smoke runs (every gate still asserted under
``--check``).

Run with ``PYTHONPATH=src python -m repro.bench.frontdoor``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Sequence

from repro.bench.federation import (
    BENCH_FEDERATION,
    EXTENT,
    STALENESS,
    _assert_identical,
    make_federation,
)
from repro.bench.harness import StreamSummary
from repro.bench.report import run_stamp
from repro.frontdoor import (
    AdmissionConfig,
    FrontDoor,
    FrontDoorConfig,
    OpenLoopRunner,
)
from repro.geometry import Rect
from repro.portal import SensorMapPortal, SensorQuery
from repro.portal.continuous import ContinuousQueryManager
from repro.workloads import LiveLocalWorkload, OpenLoopWorkload

CACHE_ON = FrontDoorConfig(admission=AdmissionConfig(enabled=False))
CACHE_OFF = FrontDoorConfig(
    l1_capacity=0, l2_enabled=False, admission=AdmissionConfig(enabled=False)
)


def make_livelocal_portal(n_sensors: int, seed: int) -> SensorMapPortal:
    """The Live-Local fleet behind an uncapped portal (the front door's
    tile layer needs exact sub-queries to stay exact)."""
    portal = SensorMapPortal(max_sensors_per_query=None)
    portal.register_all(LiveLocalWorkload(n_sensors=n_sensors, seed=seed).sensors())
    portal.rebuild_index()
    return portal


def make_requests(n_sensors: int, n_requests: int, seed: int, target_qps: float):
    return OpenLoopWorkload(
        base=LiveLocalWorkload(
            n_sensors=n_sensors, n_queries=n_requests, seed=seed
        ),
        n_requests=n_requests,
        target_qps=target_qps,
        seed=seed,
    ).requests()


# ----------------------------------------------------------------------
# Probe 1: cache tiers
# ----------------------------------------------------------------------
def run_cache_probe(
    n_sensors: int, n_requests: int, seed: int, target_qps: float = 50.0
) -> dict:
    """Drive the same stream through a cached and an uncached front
    door (fresh but identically seeded portals), advancing the clock to
    each arrival so slot windows age realistically.  Serving cost is
    ``FrontDoorResult.service_seconds`` — queueing is probe 3's
    subject, not this one's."""
    wall_start = time.perf_counter()
    requests = make_requests(n_sensors, n_requests, seed, target_qps)
    out: dict = {"n_sensors": n_sensors, "n_requests": n_requests}
    services: dict[str, list] = {}
    for name, config in (("on", CACHE_ON), ("off", CACHE_OFF)):
        portal = make_livelocal_portal(n_sensors, seed)
        door = FrontDoor(portal, config)
        t0 = portal.clock.now()
        records = []
        for req in requests:
            target = t0 + req.arrival_seconds
            if target > portal.clock.now():
                portal.clock.advance(target - portal.clock.now())
            res = door.execute(req.query)
            records.append(res)
        warm = records[len(records) // 2 :]
        warm_hits = sum(1 for r in warm if r.cache_hit)
        summary = StreamSummary(r.service_seconds for r in records)
        services[name] = records
        out[name] = {
            "served": len(records),
            "warm_hit_rate": warm_hits / max(1, len(warm)),
            "served_from": {
                tier: sum(1 for r in records if r.served_from == tier)
                for tier in ("l1", "l2", "portal")
            },
            "service_seconds": summary.as_dict(),
            "cache": door.cache.stats.as_dict(),
        }
    hit_services = StreamSummary(
        r.service_seconds for r in services["on"] if r.cache_hit
    )
    off_p99 = out["off"]["service_seconds"]["p99"]
    out["hit_service_seconds"] = hit_services.as_dict() if hit_services.count else None
    out["hit_p99_speedup"] = (
        off_p99 / hit_services.p99 if hit_services.count else 0.0
    )
    out["wall_seconds"] = time.perf_counter() - wall_start
    return out


# ----------------------------------------------------------------------
# Probe 2: streaming gathers
# ----------------------------------------------------------------------
def _standing_viewports(n: int, seed: int) -> list[SensorQuery]:
    import numpy as np

    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        cx = float(rng.uniform(15.0, EXTENT - 15.0))
        cy = float(rng.uniform(15.0, EXTENT - 15.0))
        half = float(rng.uniform(8.0, 20.0))
        out.append(
            SensorQuery(
                region=Rect(
                    max(0.0, cx - half),
                    max(0.0, cy - half),
                    min(EXTENT, cx + half),
                    min(EXTENT, cy + half),
                ),
                staleness_seconds=STALENESS,
            )
        )
    return out


def run_streaming_probe(
    n_sensors: int,
    seed: int,
    n_shards: int = 4,
    n_subscriptions: int = 12,
    warm_ticks: int = 2,
    degraded_ticks: int = 4,
    tick_seconds: float = 45.0,
) -> dict:
    """Continuous ticks over twin federations with a killed shard: the
    synchronous manager waits out the dead shard's retry penalty every
    tick; the streaming manager publishes at the deadline and defers
    the stragglers to the next refresh."""
    wall_start = time.perf_counter()

    # Healthy-fleet bit-identity: the streaming final IS the sync
    # gather.  Twin federations (execute consumes shard RNG, so one
    # portal cannot serve both sides).
    fed_a = make_federation(n_sensors, seed, n_shards)
    fed_b = make_federation(n_sensors, seed, n_shards)
    identity_cells = 0
    for query in _standing_viewports(4, seed + 7):
        _assert_identical(
            f"streaming-final/q{identity_cells}",
            fed_a.execute(query),
            fed_b.execute_streaming(query).final,
        )
        identity_cells += 1

    queries = _standing_viewports(n_subscriptions, seed + 11)

    def run_side(deadline: float | None, probe_deadline: bool = False):
        fed = make_federation(n_sensors, seed, n_shards)
        manager = ContinuousQueryManager(
            fed, gather_deadline_seconds=deadline
        )
        for query in queries:
            manager.subscribe(query, refresh_seconds=tick_seconds)
        published: list[float] = []
        healthy_max = 0.0
        for t in range(warm_ticks):
            manager.tick()
            # Calibrate off the *last* warm tick only: the first tick
            # runs cold (every slot cache empty) and would inflate the
            # deadline past the dead shard's retry penalty.
            if probe_deadline and t == warm_ticks - 1:
                healthy_max = max(
                    s.last_result.collection_seconds
                    for s in manager.subscriptions()
                )
            fed.clock.advance(tick_seconds)
        fed.kill_shard(n_shards // 2)
        for t in range(degraded_ticks):
            for subscription, _delta in manager.tick():
                published.append(subscription.last_result.collection_seconds)
            fed.clock.advance(tick_seconds)
        return fed, published, healthy_max

    # Calibrate the deadline off the sync side's *healthy* warm ticks:
    # generous enough that a healthy gather always beats it, tight
    # enough to cut out the dead shard's retry backoff.
    fed_sync, sync_published, healthy_max = run_side(None, probe_deadline=True)
    backoff = BENCH_FEDERATION.retry_backoff_base
    deadline = min(healthy_max * 1.25, healthy_max + 0.5 * backoff)
    fed_stream, stream_published, _ = run_side(deadline)

    sync_p99 = StreamSummary(sync_published).p99
    stream_p99 = StreamSummary(stream_published).p99
    return {
        "n_sensors": n_sensors,
        "n_shards": n_shards,
        "n_subscriptions": n_subscriptions,
        "identity_cells": identity_cells,
        "healthy_tick_max_seconds": healthy_max,
        "deadline_seconds": deadline,
        "degraded_sync_p99": sync_p99,
        "degraded_streaming_p99": stream_p99,
        "streaming_vs_sync": stream_p99 / sync_p99 if sync_p99 else 1.0,
        "deferred_shard_answers": fed_stream.stats.deferred_shard_answers,
        "streaming_queries": fed_stream.stats.streaming_queries,
        "wall_seconds": time.perf_counter() - wall_start,
    }


# ----------------------------------------------------------------------
# Probe 3: admission at 2x sustainable load
# ----------------------------------------------------------------------
def run_admission_probe(
    n_sensors: int,
    n_requests: int,
    seed: int,
    max_batch: int = 8,
    queue_depth: int = 8,
) -> dict:
    """Open-loop serving at twice the sustainable rate, uncached (clean
    capacity arithmetic), admission off then on.

    The sustainable rate is calibrated on *this* probe's own fleet AND
    its serving shape: a throwaway portal serves a slice of the stream
    in ``max_batch``-sized batches (the runner's shape — batched
    traversals are most of the serving capacity) and the warm-half mean
    per-request cost sets capacity."""
    wall_start = time.perf_counter()
    calibration = make_requests(n_sensors, min(96, max(1, n_requests)), seed + 1, 10.0)
    door = FrontDoor(make_livelocal_portal(n_sensors, seed), CACHE_OFF)
    per_request: list[float] = []
    for i in range(0, len(calibration), max_batch):
        chunk = calibration[i : i + max_batch]
        outcome = door.execute_batch([r.query for r in chunk])
        per_request.extend([outcome.service_seconds / len(chunk)] * len(chunk))
    warm_half = per_request[len(per_request) // 2 :]
    mean_service_seconds = sum(warm_half) / max(1, len(warm_half))
    sustainable_qps = 1.0 / max(1e-9, mean_service_seconds)
    offered_qps = 2.0 * sustainable_qps
    out: dict = {
        "n_sensors": n_sensors,
        "n_requests": n_requests,
        "mean_service_seconds": mean_service_seconds,
        "sustainable_qps": sustainable_qps,
        "offered_qps": offered_qps,
        "max_batch": max_batch,
        "queue_depth": queue_depth,
    }
    requests = make_requests(n_sensors, n_requests, seed + 1, offered_qps)
    n_tenants = max(t.tenant for t in requests) + 1
    admission_on = AdmissionConfig(
        # Per-tenant fair share of the *sustainable* rate with headroom:
        # hot Zipf tenants blow through it (shed_rate), the backlog guard
        # catches the rest (shed_queue).
        tenant_rate_qps=2.0 * sustainable_qps / n_tenants,
        tenant_burst=max(2.0, queue_depth / 4),
        queue_depth=queue_depth,
    )
    for name, admission in (
        ("off", AdmissionConfig(enabled=False)),
        ("on", admission_on),
    ):
        config = FrontDoorConfig(l1_capacity=0, l2_enabled=False, admission=admission)
        door = FrontDoor(make_livelocal_portal(n_sensors, seed), config)
        report = OpenLoopRunner(door, max_batch=max_batch).run(requests)
        stats = door.admission.stats
        out[name] = {
            "report": report.as_dict(),
            "admission": stats.as_dict(),
            "accounting_exact": stats.offered
            == stats.admitted + stats.shed_rate + stats.shed_queue
            and report.offered == len(requests),
        }
    off_p99 = out["off"]["report"]["latency"]["p99"]
    on_p99 = out["on"]["report"]["latency"]["p99"]
    out["p99_ratio_on_vs_off"] = on_p99 / off_p99 if off_p99 else 1.0
    out["wall_seconds"] = time.perf_counter() - wall_start
    return out


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_frontdoor_bench(
    n_sensors: int = 40_000,
    n_requests: int = 2_000,
    seed: int = 0,
    quick: bool = False,
) -> dict:
    if quick:
        n_sensors, n_requests = 2_500, 300
    bench_start = time.perf_counter()
    cache = run_cache_probe(n_sensors, n_requests, seed)
    streaming = run_streaming_probe(min(n_sensors, 4_000), seed)
    # The unprotected baseline's pain is its backlog, which takes a
    # long enough open-loop horizon to accumulate — don't shrink the
    # stream below 600 arrivals except in quick mode.
    admission = run_admission_probe(
        min(n_sensors, 4_000), min(n_requests, 600), seed
    )
    checks = {
        "warm_hit_rate_ge_50pct": cache["on"]["warm_hit_rate"] >= 0.50,
        "hit_p99_speedup_ge_5x": cache["hit_p99_speedup"] >= 5.0,
        "streaming_p99_le_0.7x_sync": streaming["streaming_vs_sync"] <= 0.7,
        "streaming_final_bit_identical": streaming["identity_cells"] > 0,
        "admission_p99_le_0.5x_unprotected": admission["p99_ratio_on_vs_off"] <= 0.5,
        "admission_shed_metered": admission["on"]["admission"]["shed_rate"]
        + admission["on"]["admission"]["shed_queue"]
        > 0,
        "admission_accounting_exact": admission["on"]["accounting_exact"]
        and admission["off"]["accounting_exact"],
    }
    return {
        "benchmark": "frontdoor",
        **run_stamp(wall_seconds=time.perf_counter() - bench_start),
        "workload": {
            "n_sensors": n_sensors,
            "n_requests": n_requests,
            "seed": seed,
            "quick": quick,
            "cache_config": {
                "l1_capacity": CACHE_ON.l1_capacity,
                "tile_extent_degrees": CACHE_ON.tile_extent_degrees,
                "l2_capacity": CACHE_ON.l2_capacity,
                "max_tiles_per_cover": CACHE_ON.max_tiles_per_cover,
            },
        },
        "cache": cache,
        "streaming": streaming,
        "admission": admission,
        "checks": checks,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sensors", type=int, default=40_000)
    parser.add_argument("--requests", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (gates still assertable)"
    )
    parser.add_argument(
        "--check", action="store_true", help="assert the acceptance gates"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_frontdoor.json"),
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_frontdoor_bench(
        n_sensors=args.sensors,
        n_requests=args.requests,
        seed=args.seed,
        quick=args.quick,
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    c = result["cache"]
    print(
        f"cache: warm hit rate {c['on']['warm_hit_rate']:.1%} "
        f"(l1 {c['on']['served_from']['l1']} / l2 {c['on']['served_from']['l2']} "
        f"/ portal {c['on']['served_from']['portal']}), "
        f"hit p99 speedup {c['hit_p99_speedup']:.1f}x"
    )
    s = result["streaming"]
    print(
        f"streaming: degraded tick p99 {s['degraded_streaming_p99']:.3f}s vs "
        f"sync {s['degraded_sync_p99']:.3f}s "
        f"({s['streaming_vs_sync']:.2f}x, deadline {s['deadline_seconds']:.3f}s, "
        f"{s['deferred_shard_answers']} deferred answers, "
        f"{s['identity_cells']} healthy finals bit-identical)"
    )
    a = result["admission"]
    print(
        f"admission: offered {a['offered_qps']:.1f} q/s (2x sustainable), "
        f"p99 {a['on']['report']['latency']['p99']:.2f}s with admission vs "
        f"{a['off']['report']['latency']['p99']:.2f}s without "
        f"({a['p99_ratio_on_vs_off']:.2f}x), shed "
        f"{a['on']['report']['shed_fraction']:.1%}"
    )
    print(f"frontdoor bench -> {args.output}")
    if args.check:
        failed = [name for name, ok in result["checks"].items() if not ok]
        if failed:
            for name in failed:
                print(f"FAIL: {name}")
            return 1
        print("acceptance thresholds met")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
