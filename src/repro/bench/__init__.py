"""The experiment harness: one driver per paper figure.

Each ``figN`` module exposes a ``run_figN(...)`` function that executes
the experiment at a configurable scale and returns a structured result
whose ``rows()`` / ``format_table()`` output mirrors the series the
paper plots.  ``benchmarks/`` wraps these drivers in pytest-benchmark
targets; EXPERIMENTS.md records measured-vs-paper shape.
"""

from repro.bench.harness import QueryRecord, RunResult, run_query_stream
from repro.bench.binning import bin_by_result_size, ideal_result_sizes
from repro.bench.report import format_table

__all__ = [
    "QueryRecord",
    "RunResult",
    "run_query_stream",
    "bin_by_result_size",
    "ideal_result_sizes",
    "format_table",
]
