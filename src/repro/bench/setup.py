"""Shared experiment setup: workload construction and fresh systems.

Each evaluated configuration gets its own network instance (so probe
meters don't mix) built over the *same* sensor population with the same
seed, keeping ground-truth availability draws comparable across
systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import FlatCache, full_colr_tree, hierarchical_cache, plain_rtree
from repro.core.config import COLRTreeConfig
from repro.core.stats import ProcessingCostModel
from repro.core.tree import COLRTree
from repro.sensors.availability import AvailabilityModel
from repro.sensors.network import SensorNetwork
from repro.sensors.sensor import Sensor
from repro.workloads.livelocal import LiveLocalWorkload, QuerySpec


@dataclass
class EvalSetup:
    """One workload instance with factories for the evaluated systems.

    Default scale is bench-friendly; pass larger ``n_sensors`` /
    ``n_queries`` for paper-scale runs (370 k / 106 k).
    """

    n_sensors: int = 40_000
    n_queries: int = 500
    expiry_seconds: object = 300.0
    availability: object = 0.9
    staleness_seconds: float = 240.0
    sample_size: int = 30
    mean_interarrival_seconds: float = 0.5
    seed: int = 0
    config: COLRTreeConfig = field(
        default_factory=lambda: COLRTreeConfig(
            fanout=8,
            leaf_capacity=32,
            max_expiry_seconds=600.0,
            slot_seconds=120.0,
            terminal_level=2,
            oversample_level=4,
        )
    )
    cost_model: ProcessingCostModel = field(default_factory=ProcessingCostModel)

    def __post_init__(self) -> None:
        self._workload = LiveLocalWorkload(
            n_sensors=self.n_sensors,
            n_queries=self.n_queries,
            expiry_seconds=self.expiry_seconds,
            availability=self.availability,
            staleness_seconds=self.staleness_seconds,
            sample_size=self.sample_size,
            mean_interarrival_seconds=self.mean_interarrival_seconds,
            seed=self.seed,
        )
        self._sensors: list[Sensor] | None = None
        self._queries: list[QuerySpec] | None = None

    @property
    def sensors(self) -> list[Sensor]:
        if self._sensors is None:
            self._sensors = self._workload.sensors()
        return self._sensors

    @property
    def queries(self) -> list[QuerySpec]:
        if self._queries is None:
            self._queries = self._workload.queries()
        return self._queries

    # ------------------------------------------------------------------
    # System factories (fresh caches/meters each call)
    # ------------------------------------------------------------------
    def _network(self, model: AvailabilityModel | None = None) -> SensorNetwork:
        return SensorNetwork(
            self.sensors, availability_model=model, seed=self.seed + 1
        )

    def make_flat_cache(self, cache_capacity: int | None = None) -> FlatCache:
        return FlatCache(
            self.sensors,
            self._network(),
            cost_model=self.cost_model,
            cache_capacity=cache_capacity,
        )

    def make_plain_rtree(self) -> COLRTree:
        return plain_rtree(
            self.sensors, self.config, self._network(), cost_model=self.cost_model
        )

    def make_hierarchical_cache(self, config: COLRTreeConfig | None = None) -> COLRTree:
        model = AvailabilityModel()
        return hierarchical_cache(
            self.sensors,
            config if config is not None else self.config,
            self._network(model),
            availability_model=model,
            cost_model=self.cost_model,
        )

    def make_colr_tree(self, config: COLRTreeConfig | None = None) -> COLRTree:
        model = AvailabilityModel()
        return full_colr_tree(
            self.sensors,
            config if config is not None else self.config,
            self._network(model),
            availability_model=model,
            cost_model=self.cost_model,
        )

    def cache_capacity_for_fraction(self, fraction: float) -> int:
        """Cache limit as a fraction of the sensor population (the
        Figure 5/6 sweep parameter)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        return max(1, int(round(fraction * self.n_sensors)))
