"""Configuration of the geoblock grid and polygon planner."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GeoBlockConfig:
    """Knobs of the geoblock subsystem.

    ``cell_degrees`` is the grid cell edge in degrees — smaller cells
    raise the interior (probe-free) fraction of a polygon's cover at
    the price of more cells per query.  ``max_cells_per_query`` bounds
    the rasterization; a polygon whose bounding box covers more cells
    than this falls back to the exact tree path (the planner never
    silently truncates a cover).
    """

    cell_degrees: float = 1.0
    max_cells_per_query: int = 4096

    def __post_init__(self) -> None:
        if self.cell_degrees <= 0:
            raise ValueError("cell_degrees must be positive")
        if self.max_cells_per_query < 1:
            raise ValueError("max_cells_per_query must be positive")
