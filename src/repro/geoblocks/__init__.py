"""GeoBlocks-style polygon & analytic-window query subsystem.

COLR-Tree's native query surface is axis-aligned rectangles; this
package opens the city-boundary / watershed / corridor workload class.
Following GeoBlocks (Winter et al., arXiv:1908.07753) and Aggregate
Analytic Window Query over Spatial Data (Shi & Wang, arXiv:2007.14997),
it fuses a pre-aggregated **geoblock grid** with the COLR slot cache:

``GeoBlockGrid`` (:mod:`repro.geoblocks.grid`)
    A configurable-cell-size grid over the portal's sensor population.
    Each cell mirrors its sensors' latest readings and maintains a
    per-cell aggregate sketch, kept fresh by subscribing to every
    tree's reading listeners — probe fills, grouped-delta batch
    ingestion and streamed transport ingestion all land here the
    instant the slot caches see them.

``plan_polygon`` (:mod:`repro.geoblocks.planner`)
    Rasterizes a polygon into fully *interior* cells (servable from the
    grid without probing) and *boundary* cells (delegated to exact
    COLR-Tree sub-queries over the Sutherland–Hodgman clip of the
    polygon to the cell).

``execute_polygon`` (:mod:`repro.geoblocks.executor`)
    Composes one :class:`PolygonResult` from the cell plan with exact
    sensor dedup at shared cell edges.  An axis-aligned rectangular
    polygon short-circuits to the plain rectangle path and is
    bit-identical to ``SensorMapPortal.execute``.

``SlidingWindow`` (:mod:`repro.geoblocks.windows`)
    Moving-viewport / k-step temporal analytic windows that reuse the
    previous step's still-valid cell aggregates and recompute only the
    symmetric difference (the enter/leave cell strips).
"""

from repro.geoblocks.config import GeoBlockConfig
from repro.geoblocks.grid import GeoBlockGrid
from repro.geoblocks.planner import (
    CellPlan,
    cell_of_point,
    cell_rect,
    cells_covering,
    plan_polygon,
)
from repro.geoblocks.executor import PolygonResult
from repro.geoblocks.windows import SlidingWindow, WindowResult

__all__ = [
    "CellPlan",
    "GeoBlockConfig",
    "GeoBlockGrid",
    "PolygonResult",
    "SlidingWindow",
    "WindowResult",
    "cell_of_point",
    "cell_rect",
    "cells_covering",
    "plan_polygon",
]
