"""Polygon rasterization onto the geoblock grid.

A polygon query is answered cell-by-cell: cells fully inside the
polygon (*interior*) are candidates for probe-free serving from the
grid mirror, cells the polygon boundary passes through (*boundary*)
delegate to exact COLR-Tree sub-queries over the Sutherland–Hodgman
clip of the polygon to the cell rectangle.

Cell membership of a *sensor* is half-open — a sensor belongs to the
cell ``[ix*c, (ix+1)*c) x [iy*c, (iy+1)*c)`` — so the grid assigns each
sensor to exactly one cell.  Cell *geometry* (classification, clipping,
sub-query regions) uses the closed rectangle; the resulting overlap at
shared cell edges is removed at compose time by sensor-id dedup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry import GeoPoint, Polygon, Rect


def cell_of_point(p: GeoPoint, cell_degrees: float) -> tuple[int, int]:
    """The (half-open) cell owning a point."""
    return (
        math.floor(p.x / cell_degrees),
        math.floor(p.y / cell_degrees),
    )


def cell_rect(cell: tuple[int, int], cell_degrees: float) -> Rect:
    """The closed rectangle of one cell."""
    ix, iy = cell
    c = cell_degrees
    return Rect(ix * c, iy * c, (ix + 1) * c, (iy + 1) * c)


def cells_covering(bbox: Rect, cell_degrees: float) -> list[tuple[int, int]]:
    """The cells whose closed rectangles cover a bounding box.

    Same floor/ceil arithmetic as the front door's ``tile_cover``: an
    edge landing exactly on a cell boundary does not drag in the next
    (measure-zero-overlap) cell.
    """
    c = cell_degrees
    ix0 = math.floor(bbox.min_x / c)
    iy0 = math.floor(bbox.min_y / c)
    ix1 = max(ix0, math.ceil(bbox.max_x / c) - 1)
    iy1 = max(iy0, math.ceil(bbox.max_y / c) - 1)
    return [(ix, iy) for ix in range(ix0, ix1 + 1) for iy in range(iy0, iy1 + 1)]


@dataclass(frozen=True)
class CellPlan:
    """One polygon's rasterization: interior and boundary cells, both in
    deterministic (ix, iy) scan order."""

    cell_degrees: float
    interior: tuple[tuple[int, int], ...]
    boundary: tuple[tuple[int, int], ...]

    @property
    def total_cells(self) -> int:
        return len(self.interior) + len(self.boundary)

    @property
    def boundary_fraction(self) -> float:
        total = self.total_cells
        return len(self.boundary) / total if total else 0.0


def plan_polygon(
    polygon: Polygon, cell_degrees: float, max_cells: int
) -> CellPlan | None:
    """Rasterize a polygon into interior/boundary cells, or ``None``
    when its bounding box covers more than ``max_cells`` cells (the
    caller falls back to the exact un-gridded path — covers are never
    truncated)."""
    c = cell_degrees
    bbox = polygon.bounding_box
    nx = max(1, math.ceil(bbox.max_x / c) - math.floor(bbox.min_x / c))
    ny = max(1, math.ceil(bbox.max_y / c) - math.floor(bbox.min_y / c))
    if nx * ny > max_cells:
        return None
    interior: list[tuple[int, int]] = []
    boundary: list[tuple[int, int]] = []
    for cell in cells_covering(bbox, c):
        rect = cell_rect(cell, c)
        if polygon.contains_rect(rect):
            interior.append(cell)
        elif polygon.intersects_rect(rect):
            boundary.append(cell)
    return CellPlan(
        cell_degrees=c, interior=tuple(interior), boundary=tuple(boundary)
    )


@dataclass(frozen=True)
class CellClipRegion:
    """Fallback boundary-cell region for degenerate clips.

    When ``polygon.clip_to_rect(cell)`` reports a measure-zero overlap
    (the polygon only touches the cell along an edge or at a corner),
    sensors sitting exactly on that touch line are still inside the
    closed polygon.  This region answers the three Region-protocol
    predicates as the *conjunction* of the cell rectangle and the
    polygon, which is exact for containment and conservatively correct
    for intersection (over-approximation only widens traversal; leaves
    filter by ``contains_point``).
    """

    polygon: Polygon
    rect: Rect

    @property
    def bounding_box(self) -> Rect:
        """The conjunction lies within the cell, so the cell rectangle
        is a (tight enough) bounding box — required by the tree's
        region protocol for traversal pruning."""
        return self.rect

    def contains_point(self, p: GeoPoint) -> bool:
        return self.rect.contains_point(p) and self.polygon.contains_point(p)

    def intersects_rect(self, rect: Rect) -> bool:
        return self.rect.intersects(rect) and self.polygon.intersects_rect(rect)

    def contains_rect(self, rect: Rect) -> bool:
        return self.rect.contains_rect(rect) and self.polygon.contains_rect(rect)


def boundary_subregion(
    polygon: Polygon, cell: tuple[int, int], cell_degrees: float
) -> Polygon | CellClipRegion:
    """The exact sub-query region of one boundary cell: the
    Sutherland–Hodgman clip of the polygon to the cell, or the
    conjunction fallback when the clip degenerates to zero area."""
    rect = cell_rect(cell, cell_degrees)
    clipped = polygon.clip_to_rect(rect)
    if clipped is not None:
        return clipped
    return CellClipRegion(polygon=polygon, rect=rect)
