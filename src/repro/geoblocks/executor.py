"""Polygon query execution: cell plan → composed ``PolygonResult``.

The executor is the portal-side half of the geoblock subsystem:

1. An axis-aligned **rectangular polygon** is detected up front and
   dispatched down the plain rectangle path — ``execute_polygon`` on
   such a region is bit-identical (answer, probes, stats) to
   ``execute`` on the equivalent ``Rect``.
2. An eligible genuine polygon (exact, un-zoomed query on an uncapped
   portal) is rasterized by :func:`repro.geoblocks.planner.plan_polygon`;
   interior cells are served probe-free from the grid when their whole
   population is fresh-mirrored (falling back to an exact per-cell tree
   query otherwise), boundary cells run exact COLR sub-queries over the
   Sutherland–Hodgman clip of the polygon to the cell.
3. Everything else (sampled, zoomed, capped) falls back to
   ``portal.execute`` — ``Polygon`` implements the full Region
   protocol, so the tree answers it exactly without the grid.

Compose dedups sensors **by id** at shared cell edges: sub-queries use
closed cell geometry, so a sensor sitting exactly on an edge can answer
two adjacent cells; the first occurrence wins.  Boundary/interior
fallback sub-queries run with ``aggregate_termination=False`` so every
result is an identifiable per-sensor reading — an anonymous node-level
sketch could not be deduplicated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.lookup import QueryAnswer
from repro.geoblocks.planner import (
    boundary_subregion,
    cell_rect,
    plan_polygon,
)
from repro.geometry import Polygon, Rect
from repro.portal.portal import PortalResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.portal.portal import SensorMapPortal
    from repro.portal.query import SensorQuery


@dataclass
class PolygonResult(PortalResult):
    """A composed polygon answer plus its cell-plan provenance.

    ``interior_cells`` / ``boundary_cells`` count plan cells summed over
    the per-type trees the query fanned out to (matching how the
    per-query stats counters accumulate); ``grid_cells_served`` of the
    interior cells were answered probe-free from the grid mirror, and
    ``interior_probes`` counts live probes the interior fallbacks paid —
    zero on a warm grid, which the geoblocks bench gates on.
    """

    interior_cells: int = 0
    boundary_cells: int = 0
    grid_cells_served: int = 0
    interior_probes: int = 0


def grid_eligible(portal: "SensorMapPortal", query: "SensorQuery") -> bool:
    """Whether the geoblock fast path may serve this query: the compose
    is exact per-sensor, so the portal must be uncapped and the query
    exact and un-zoomed (grouping via ``cluster_miles`` composes fine —
    it groups the merged readings)."""
    return (
        portal.max_sensors_per_query is None
        and query.sample_size in (None, 0)
        and query.zoom_level is None
    )


def execute_polygon(
    portal: "SensorMapPortal", query: "SensorQuery"
) -> PortalResult:
    """Execute a polygon viewport against one portal (see module doc)."""
    region = query.region
    if isinstance(region, Rect):
        return portal.execute(query)
    assert isinstance(region, Polygon)
    rect = region.as_rect()
    if rect is not None:
        # Rectangle drawn as a polygon: the rectangle path *is* the
        # exact answer, and normalizing the region keeps the result
        # (including its query field) bit-identical to execute().
        return portal.execute(replace(query, region=rect))
    if not grid_eligible(portal, query):
        return portal.execute(query)
    grid = portal.geoblocks()
    plan = plan_polygon(
        region, grid.config.cell_degrees, grid.config.max_cells_per_query
    )
    if plan is None:
        return portal.execute(query)

    portal._ensure_index()
    now = portal.clock.now()
    if query.sensor_type is not None:
        if query.sensor_type not in portal._trees:
            raise KeyError(f"no sensors of type {query.sensor_type!r} registered")
        trees = {query.sensor_type: portal._trees[query.sensor_type]}
    else:
        trees = dict(portal._trees)

    from repro.portal.grouping import group_answer

    answers: list[QueryAnswer] = []
    groups = []
    processing = 0.0
    collection = 0.0
    grid_served = 0
    interior_probes = 0
    staleness = query.staleness_seconds
    for sensor_type, tree in trees.items():
        merged = QueryAnswer()
        seen: set[int] = set()

        def fold(sub: QueryAnswer) -> None:
            merged.stats.merge(sub.stats)
            merged.terminals.extend(sub.terminals)
            for reading in sub.probed_readings:
                if reading.sensor_id not in seen:
                    seen.add(reading.sensor_id)
                    merged.probed_readings.append(reading)
            for reading in sub.cached_readings:
                if reading.sensor_id not in seen:
                    seen.add(reading.sensor_id)
                    merged.cached_readings.append(reading)

        for cell in plan.interior:
            served = grid.serve_cell(sensor_type, cell, now, staleness)
            if served is not None:
                grid_served += 1
                # Scanning the mirror is the modeled work of a grid
                # serve — the same per-reading charge the leaf caches
                # pay, with no traversal and no probes.
                merged.stats.readings_scanned += len(served)
                for reading in served:
                    if reading.sensor_id not in seen:
                        seen.add(reading.sensor_id)
                        merged.cached_readings.append(reading)
            else:
                sub = tree.query(
                    cell_rect(cell, plan.cell_degrees),
                    now=now,
                    max_staleness=staleness,
                    sample_size=0,
                    aggregate_termination=False,
                )
                interior_probes += sub.stats.sensors_probed
                fold(sub)
        for cell in plan.boundary:
            sub = tree.query(
                boundary_subregion(region, cell, plan.cell_degrees),
                now=now,
                max_staleness=staleness,
                sample_size=0,
                aggregate_termination=False,
            )
            fold(sub)
        merged.stats.polygon_cells_interior += len(plan.interior)
        merged.stats.polygon_cells_boundary += len(plan.boundary)
        answers.append(merged)
        processing += portal.cost_model.processing_seconds(merged.stats)
        collection += merged.stats.collection_latency_seconds
        groups.extend(group_answer(merged, query.cluster_miles, tree=tree))
    net = portal.network.stats
    net.polygon_cells_interior += len(plan.interior) * len(trees)
    net.polygon_cells_boundary += len(plan.boundary) * len(trees)
    return PolygonResult(
        query=query,
        groups=groups,
        answers=answers,
        processing_seconds=processing,
        collection_seconds=collection,
        sample_requested=None,
        interior_cells=len(plan.interior) * len(trees),
        boundary_cells=len(plan.boundary) * len(trees),
        grid_cells_served=grid_served,
        interior_probes=interior_probes,
    )
