"""Sliding analytic windows over the geoblock grid.

An analytic window is a **cell-granular** standing query: a moving
viewport (map pan) and/or a k-step temporal window whose aggregate is
maintained incrementally.  The window quantizes its viewport to the
geoblock grid — it answers over the full population of every covered
cell, the same serving contract the front door's tile quantization
uses — which is exactly what makes incrementality possible: when the
viewport slides, cells in the overlap of consecutive covers are *reused*
from the previous step's snapshots and only the symmetric difference
(the enter strip; the leave strip is dropped) is recomputed.

A reused snapshot is **revalidated, not trusted blindly**: it must be
from the grid's current generation, at the cell's current mirror
version, and all of its readings must still be fresh and unexpired at
the new step time.  Any miss recaptures the cell — from the grid mirror
when the whole population is fresh there, else from an exact COLR-Tree
sub-query over the cell rectangle (filtered to the cell's half-open
population, so cells partition sensors and per-cell sketches sum
without dedup).

The temporal dimension is a ring of the last ``temporal_steps`` per-step
sketches; the window aggregate combines the ring, giving "avg over the
viewport for the last k refreshes" for free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.aggregates import AggregateSketch, combine
from repro.core.lookup import QueryAnswer
from repro.geoblocks.planner import cell_of_point, cell_rect, cells_covering
from repro.geometry import Polygon, Rect
from repro.portal.portal import PortalResult
from repro.portal.query import SensorQuery
from repro.sensors.sensor import Reading


@dataclass(frozen=True)
class CellSnapshot:
    """One cell's captured answer, revalidated before every reuse."""

    readings: tuple[Reading, ...]
    probed_ids: frozenset[int]
    sketch: AggregateSketch
    generation: int
    version: int
    oldest_timestamp: float
    min_expires: float

    def valid_at(self, grid, sensor_type: str, cell: tuple[int, int],
                 now: float, max_staleness: float) -> bool:
        if self.generation != grid.generation:
            return False
        if self.version != grid.cell_version(sensor_type, cell):
            return False
        if not self.readings:
            return True
        return (
            self.oldest_timestamp >= now - max_staleness
            and now < self.min_expires
        )


@dataclass
class WindowResult(PortalResult):
    """One window step's answer plus its incrementality accounting."""

    step_index: int = 0
    cells_total: int = 0
    cells_reused: int = 0
    cells_refreshed: int = 0
    # combine() of the last `temporal_steps` per-step sketches, reduced
    # by the window's aggregate function; None while the window is empty.
    window_aggregate: float | None = None


class SlidingWindow:
    """A standing cell-granular aggregate window (see module doc)."""

    def __init__(
        self,
        portal,
        staleness_seconds: float,
        sensor_type: str = "generic",
        aggregate: str = "avg",
        cell_degrees: float | None = None,
        temporal_steps: int = 1,
    ) -> None:
        if temporal_steps < 1:
            raise ValueError("temporal_steps must be positive")
        self.portal = portal
        self.staleness_seconds = staleness_seconds
        self.sensor_type = sensor_type
        self.aggregate = aggregate
        grid = portal.geoblocks()
        self.cell_degrees = (
            cell_degrees if cell_degrees is not None else grid.config.cell_degrees
        )
        self.temporal_steps = temporal_steps
        self._snapshots: dict[tuple[int, int], CellSnapshot] = {}
        self._ring: deque[AggregateSketch] = deque(maxlen=temporal_steps)
        self._steps = 0

    # ------------------------------------------------------------------
    def _cover(self, region: Rect | Polygon) -> list[tuple[int, int]]:
        if isinstance(region, Rect):
            return cells_covering(region, self.cell_degrees)
        return [
            cell
            for cell in cells_covering(region.bounding_box, self.cell_degrees)
            if region.intersects_rect(cell_rect(cell, self.cell_degrees))
        ]

    def _capture(
        self, grid, tree, cell: tuple[int, int], now: float
    ) -> tuple[CellSnapshot, QueryAnswer | None]:
        """Capture one cell: grid mirror when fully fresh, exact tree
        sub-query otherwise.  Returns the snapshot plus the tree
        sub-answer (None on a mirror serve) so the caller can charge the
        step's stats once, at capture time only."""
        served = grid.serve_cell(
            self.sensor_type, cell, now, self.staleness_seconds
        )
        if served is not None:
            readings = tuple(served)
            probed_ids: frozenset[int] = frozenset()
            sub = None
        else:
            sub = tree.query(
                cell_rect(cell, self.cell_degrees),
                now=now,
                max_staleness=self.staleness_seconds,
                sample_size=0,
                aggregate_termination=False,
            )
            # Closed cell geometry can hand us an edge sensor owned by
            # the neighbouring cell — keep only this cell's (half-open)
            # population so per-cell sketches partition the sensors.
            owned = [
                r
                for r in sub.probed_readings + sub.cached_readings
                if cell_of_point(tree.sensor(r.sensor_id).location,
                                 self.cell_degrees) == cell
            ]
            owned.sort(key=lambda r: r.sensor_id)
            readings = tuple(owned)
            probed = {r.sensor_id for r in sub.probed_readings}
            probed_ids = frozenset(
                r.sensor_id for r in readings if r.sensor_id in probed
            )
        snapshot = CellSnapshot(
            readings=readings,
            probed_ids=probed_ids,
            sketch=AggregateSketch.of(
                (r.value, r.timestamp) for r in readings
            ),
            generation=grid.generation,
            version=grid.cell_version(self.sensor_type, cell),
            oldest_timestamp=min(
                (r.timestamp for r in readings), default=float("inf")
            ),
            min_expires=min(
                (r.expires_at for r in readings), default=float("inf")
            ),
        )
        return snapshot, sub

    # ------------------------------------------------------------------
    def step(self, region: Rect | Polygon) -> WindowResult:
        """Advance the window to a (possibly moved) viewport."""
        portal = self.portal
        grid = portal.geoblocks()
        if self.sensor_type not in portal._trees:
            raise KeyError(
                f"no sensors of type {self.sensor_type!r} registered"
            )
        tree = portal._trees[self.sensor_type]
        now = portal.clock.now()
        cover = self._cover(region)

        merged = QueryAnswer()
        reused = 0
        refreshed = 0
        sketches: list[AggregateSketch] = []
        fresh_snaps: dict[tuple[int, int], CellSnapshot] = {}
        for cell in cover:
            snap = self._snapshots.get(cell)
            if snap is not None and snap.valid_at(
                grid, self.sensor_type, cell, now, self.staleness_seconds
            ):
                reused += 1
                for reading in snap.readings:
                    merged.cached_readings.append(reading)
            else:
                snap, sub = self._capture(grid, tree, cell, now)
                refreshed += 1
                if sub is None:
                    merged.stats.readings_scanned += len(snap.readings)
                else:
                    merged.stats.merge(sub.stats)
                    merged.terminals.extend(sub.terminals)
                for reading in snap.readings:
                    if reading.sensor_id in snap.probed_ids:
                        merged.probed_readings.append(reading)
                    else:
                        merged.cached_readings.append(reading)
            fresh_snaps[cell] = snap
            sketches.append(snap.sketch)
        # Cells the viewport left are dropped — window memory is bounded
        # by the current cover.
        self._snapshots = fresh_snaps
        merged.stats.window_cells_reused += reused
        portal.network.stats.window_cells_reused += reused

        self._ring.append(combine(sketches))
        window_sketch = combine(self._ring)
        try:
            window_aggregate = window_sketch.result(self.aggregate)
        except ValueError:
            window_aggregate = None

        from repro.portal.grouping import group_answer

        query = SensorQuery(
            region=region,
            staleness_seconds=self.staleness_seconds,
            sensor_type=self.sensor_type,
        )
        self._steps += 1
        return WindowResult(
            query=query,
            groups=group_answer(merged, None, tree=tree),
            answers=[merged],
            processing_seconds=portal.cost_model.processing_seconds(
                merged.stats
            ),
            collection_seconds=merged.stats.collection_latency_seconds,
            sample_requested=None,
            step_index=self._steps - 1,
            cells_total=len(cover),
            cells_reused=reused,
            cells_refreshed=refreshed,
            window_aggregate=window_aggregate,
        )
