"""The pre-aggregated geoblock grid.

One grid serves one portal: every registered sensor is assigned to
exactly one (half-open) cell per its location, and each cell keeps

* a **mirror** of its sensors' latest readings, and
* a **per-cell aggregate sketch** maintained incrementally,

both kept fresh by subscribing to every per-type tree's
``reading_listeners`` — probe fills, grouped-delta batch ingestion and
streamed transport ingestion all update the grid the moment the slot
caches apply them.  A cell whose whole population holds a fresh
mirrored reading is servable **probe-free**; anything less falls back
to the exact COLR-Tree path for that cell.

The grid is rebuilt lazily when the portal's index generation moves
(sensors registered, index rebuilt): populations are re-derived from
the registry and the mirrors restart cold, exactly like the slot
caches of freshly rebuilt trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregates import AggregateSketch
from repro.geoblocks.config import GeoBlockConfig
from repro.geoblocks.planner import cell_of_point
from repro.sensors.sensor import Reading


@dataclass
class CellState:
    """One cell's population, reading mirror and running aggregate."""

    population: list[int] = field(default_factory=list)
    readings: dict[int, Reading] = field(default_factory=dict)
    sketch: AggregateSketch = field(default_factory=AggregateSketch)
    # Bumped on every mirror write; sliding windows revalidate their
    # cached per-cell snapshots against this.
    version: int = 0


@dataclass
class GridStats:
    """Cumulative grid accounting."""

    cells_served: int = 0
    cell_fallbacks: int = 0
    readings_mirrored: int = 0
    listener_batches: int = 0
    rebuilds: int = 0


class GeoBlockGrid:
    """Per-portal geoblock grid (see module docstring)."""

    def __init__(self, portal, config: GeoBlockConfig | None = None) -> None:
        self.portal = portal
        self.config = config if config is not None else GeoBlockConfig()
        self.stats = GridStats()
        self.generation = -1
        self._cells: dict[str, dict[tuple[int, int], CellState]] = {}
        self._cell_of: dict[str, dict[int, tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """(Re)build populations and re-attach listeners when the
        portal's index generation moved; a no-op otherwise."""
        portal = self.portal
        portal._ensure_index()
        if self.generation == portal.index_generation:
            return
        c = self.config.cell_degrees
        self._cells = {}
        self._cell_of = {}
        for sensor in portal.registry:
            cell = cell_of_point(sensor.location, c)
            states = self._cells.setdefault(sensor.sensor_type, {})
            states.setdefault(cell, CellState()).population.append(
                sensor.sensor_id
            )
            self._cell_of.setdefault(sensor.sensor_type, {})[
                sensor.sensor_id
            ] = cell
        for states in self._cells.values():
            for state in states.values():
                state.population.sort()
        for sensor_type, tree in portal._trees.items():
            tree.reading_listeners.append(self._listener_for(sensor_type))
        self.generation = portal.index_generation
        self.stats.rebuilds += 1

    def _listener_for(self, sensor_type: str):
        """One tree's reading listener: mirror each applied reading into
        its owning cell and roll the cell's sketch forward (the grid's
        grouped-delta analogue — one listener call per ingested batch)."""
        cells = self._cells.get(sensor_type, {})
        cell_of = self._cell_of.get(sensor_type, {})

        def on_readings(readings: list[Reading], fetched_at: float) -> None:
            self.stats.listener_batches += 1
            for reading in readings:
                cell = cell_of.get(reading.sensor_id)
                if cell is None:
                    continue
                state = cells[cell]
                prev = state.readings.get(reading.sensor_id)
                if prev is not None and prev.timestamp > reading.timestamp:
                    continue
                state.readings[reading.sensor_id] = reading
                if prev is not None:
                    state.sketch.remove(prev.value)
                state.sketch.add(reading.value, reading.timestamp)
                state.version += 1
                self.stats.readings_mirrored += 1

        return on_readings

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cell_state(
        self, sensor_type: str, cell: tuple[int, int]
    ) -> CellState | None:
        return self._cells.get(sensor_type, {}).get(cell)

    def cell_version(self, sensor_type: str, cell: tuple[int, int]) -> int:
        """The cell's mirror version (``-1`` for unpopulated cells, so
        window snapshots of empty cells revalidate cheaply too)."""
        state = self.cell_state(sensor_type, cell)
        return state.version if state is not None else -1

    def cell_aggregate(
        self, sensor_type: str, cell: tuple[int, int]
    ) -> AggregateSketch | None:
        """The cell's maintained aggregate sketch over the latest
        mirrored reading of every sensor heard from (no freshness
        bound).  A dirty min/max (a displaced extremum) is repaired here
        from the mirror, exactly like a slot cache recomputation."""
        state = self.cell_state(sensor_type, cell)
        if state is None:
            return None
        if state.sketch.minmax_dirty:
            state.sketch = AggregateSketch.of(
                (r.value, r.timestamp) for r in state.readings.values()
            )
        return state.sketch

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_cell(
        self,
        sensor_type: str,
        cell: tuple[int, int],
        now: float,
        max_staleness: float,
    ) -> list[Reading] | None:
        """The cell's full population as fresh readings (sensor-id
        order), or ``None`` when any sensor lacks a mirrored reading
        within the freshness bound — the caller then falls back to the
        exact tree path for this cell.  An unpopulated cell serves the
        empty answer (trivially complete)."""
        state = self._cells.get(sensor_type, {}).get(cell)
        if state is None:
            self.stats.cells_served += 1
            return []
        out: list[Reading] = []
        for sensor_id in state.population:
            reading = state.readings.get(sensor_id)
            if reading is None or not reading.is_fresh_at(now, max_staleness):
                self.stats.cell_fallbacks += 1
                return None
            out.append(reading)
        self.stats.cells_served += 1
        return out
