"""Command-line entry point: ``python -m repro <command>``.

Commands regenerate the paper's figures and ablations at a chosen
scale, or run a small interactive demo.  Output is the plain-text
tables of :mod:`repro.bench.report`, suitable for redirecting into a
results file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "COLR-Tree reproduction (ICDE 2008): regenerate the paper's "
            "figures, run ablations, or demo the index."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--sensors", type=int, default=40_000, help="sensor population size"
        )
        p.add_argument("--queries", type=int, default=500, help="query stream length")
        p.add_argument("--seed", type=int, default=0, help="workload RNG seed")

    sub.add_parser("fig2", help="slot-size utility/cost sweep (Figure 2)")
    for name, desc in (
        ("fig3", "node traversal vs result size (Figure 3)"),
        ("fig4", "probes & latency vs freshness (Figure 4)"),
        ("fig5", "cache limit x sample size (Figure 5)"),
        ("fig6", "sampling accuracy & pde (Figure 6)"),
    ):
        add_scale(sub.add_parser(name, help=desc))
    fig7 = sub.add_parser("fig7", help="approximation error vs sample size (Figure 7)")
    fig7.add_argument("--trials", type=int, default=25, help="trials per sample size")
    sub.add_parser("ablations", help="design-choice ablations")
    all_cmd = sub.add_parser("all", help="every figure + ablations")
    add_scale(all_cmd)
    demo = sub.add_parser("demo", help="tiny end-to-end portal demo")
    demo.add_argument("--sensors", type=int, default=2_000)
    demo.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        help="run the durable portal demo over this data directory: the "
        "first run journals its probes, later runs warm-restart from disk "
        "(probe-free first tick)",
    )
    demo.add_argument(
        "--transport",
        action="store_true",
        help="route probes through the async dispatcher and print its counters",
    )
    demo.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run the demo through a scatter-gather federation of N portal "
        "shards (0 keeps the single-tree demo)",
    )
    demo.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run the federated demo on the process execution backend with "
        "one worker process per shard (implies --shards N when --shards "
        "is not given; 0 keeps in-process execution)",
    )
    demo.add_argument(
        "--qps",
        type=float,
        default=0.0,
        help="run the front-door demo instead: an open-loop multi-tenant "
        "stream offered at this rate against the tiered result cache "
        "and admission control (0 keeps the plain demo)",
    )
    demo.add_argument(
        "--tenants",
        type=int,
        default=20,
        help="tenant count of the front-door demo's Zipf stream "
        "(only with --qps)",
    )
    demo.add_argument(
        "--churn",
        action="store_true",
        help="run the live-rebalancing demo instead: a drifting churn "
        "workload joins/leaves sensors while the background rebalancer "
        "splits, merges and moves bounded batches between shards "
        "(use --shards to set the starting shard count)",
    )
    demo.add_argument(
        "--polygon",
        action="store_true",
        help="run the geoblocks demo instead: a polygon viewport served "
        "through the cell plan (cold, then probe-free from the warm "
        "grid) and a sliding analytic window panning across the map",
    )
    transport = sub.add_parser(
        "transport", help="async transport vs sync probing benchmark"
    )
    transport.add_argument("--sensors", type=int, default=40_000)
    transport.add_argument("--quick", action="store_true")
    shard = sub.add_parser(
        "shard", help="partition a fleet and print the shard directory"
    )
    shard.add_argument("--sensors", type=int, default=10_000)
    shard.add_argument("--shards", type=int, default=4)
    shard.add_argument("--partitioner", choices=("grid", "kmeans"), default="grid")
    shard.add_argument("--seed", type=int, default=0)
    federation = sub.add_parser(
        "federation", help="sharded scatter-gather throughput benchmark"
    )
    federation.add_argument("--sensors", type=int, default=40_000)
    federation.add_argument(
        "--partitioner", choices=("grid", "kmeans"), default="grid"
    )
    federation.add_argument(
        "--redistribution-rounds",
        type=int,
        default=1,
        help="cross-shard top-up rounds granted to the shortfall probe",
    )
    federation.add_argument(
        "--workers",
        type=int,
        default=0,
        help="benchmark the process execution backend instead "
        "(repro.bench.parallel), sweeping worker counts up to N",
    )
    federation.add_argument("--quick", action="store_true")
    frontdoor = sub.add_parser(
        "frontdoor",
        help="front-door benchmark: tiered result cache, streaming "
        "gathers, admission control",
    )
    frontdoor.add_argument("--sensors", type=int, default=40_000)
    frontdoor.add_argument("--requests", type=int, default=2_000)
    frontdoor.add_argument("--quick", action="store_true")
    frontdoor.add_argument(
        "--check", action="store_true", help="assert the acceptance gates"
    )
    geoblocks = sub.add_parser(
        "geoblocks",
        help="geoblocks benchmark: polygon cell plans, probe-free grid "
        "serving, sliding analytic windows",
    )
    geoblocks.add_argument("--sensors", type=int, default=40_000)
    geoblocks.add_argument("--queries", type=int, default=300)
    geoblocks.add_argument("--quick", action="store_true")
    geoblocks.add_argument(
        "--check", action="store_true", help="assert the acceptance gates"
    )
    rebalance = sub.add_parser(
        "rebalance",
        help="live rebalancing benchmark: probe-free migration, "
        "conservation-exact checkpoints, bounded steps under churn",
    )
    rebalance.add_argument("--sensors", type=int, default=5_000)
    rebalance.add_argument("--ticks", type=int, default=30)
    rebalance.add_argument("--shards", type=int, default=4)
    rebalance.add_argument("--seed", type=int, default=0)
    rebalance.add_argument("--quick", action="store_true")
    rebalance.add_argument(
        "--check", action="store_true", help="assert the acceptance gates"
    )
    storage = sub.add_parser(
        "storage",
        help="inspect a durable data directory, or run the storage "
        "durability benchmark",
    )
    storage.add_argument(
        "data_dir",
        type=Path,
        nargs="?",
        default=None,
        help="data directory to inspect (omit to run the benchmark)",
    )
    storage.add_argument("--sensors", type=int, default=20_000)
    storage.add_argument("--quick", action="store_true")
    storage.add_argument(
        "--check", action="store_true", help="assert the acceptance gates"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command
    if command == "fig2":
        from repro.bench.fig2 import run_fig2

        print(run_fig2().format_table())
        return 0
    if command in ("fig3", "fig4", "fig5", "fig6", "all"):
        from repro.bench.setup import EvalSetup

        setup = EvalSetup(
            n_sensors=args.sensors, n_queries=args.queries, seed=args.seed
        )
    if command == "fig3":
        from repro.bench.fig3 import run_fig3

        print(run_fig3(setup).format_table())
        return 0
    if command == "fig4":
        from repro.bench.fig4 import run_fig4

        result = run_fig4(setup)
        print(result.format_table())
        print()
        for key, value in result.summary().items():
            print(f"{key}: {value:.2f}")
        return 0
    if command == "fig5":
        from repro.bench.fig5 import run_fig5

        print(run_fig5(setup).format_table())
        return 0
    if command == "fig6":
        from repro.bench.fig6 import run_fig6

        print(run_fig6(setup).format_table())
        return 0
    if command == "fig7":
        from repro.bench.fig7 import run_fig7

        print(run_fig7(n_trials=args.trials).format_table())
        return 0
    if command == "ablations":
        from repro.bench.ablations import run_all_ablations

        print(run_all_ablations().format_table())
        return 0
    if command == "all":
        from repro.bench.ablations import run_all_ablations
        from repro.bench.fig2 import run_fig2
        from repro.bench.fig3 import run_fig3
        from repro.bench.fig4 import run_fig4
        from repro.bench.fig5 import run_fig5
        from repro.bench.fig6 import run_fig6
        from repro.bench.fig7 import run_fig7

        print(run_fig2().format_table(), end="\n\n")
        print(run_fig3(setup).format_table(), end="\n\n")
        print(run_fig4(setup).format_table(), end="\n\n")
        print(run_fig5(setup).format_table(), end="\n\n")
        print(run_fig6(setup).format_table(), end="\n\n")
        print(run_fig7().format_table(), end="\n\n")
        print(run_all_ablations().format_table())
        return 0
    if command == "demo":
        if args.churn:
            return _demo_churn(
                args.sensors, args.shards if args.shards > 0 else 4
            )
        if args.polygon:
            return _demo_polygon(args.sensors)
        if args.data_dir is not None:
            return _demo_durable(args.sensors, args.data_dir)
        if args.qps > 0:
            return _demo_frontdoor(args.sensors, args.qps, args.tenants)
        if args.shards > 0 or args.workers > 0:
            return _demo_federated(
                args.sensors,
                args.shards if args.shards > 0 else args.workers,
                transport=args.transport,
                workers=args.workers,
            )
        return _demo(args.sensors, transport=args.transport)
    if command == "transport":
        from repro.bench.transport import main as transport_main

        argv = ["--sensors", str(args.sensors)]
        if args.quick:
            argv.append("--quick")
        return transport_main(argv)
    if command == "shard":
        return _shard(args.sensors, args.shards, args.partitioner, args.seed)
    if command == "federation":
        if args.workers > 0:
            from repro.bench.parallel import main as parallel_main

            argv = ["--sensors", str(args.sensors), "--workers", str(args.workers)]
            if args.quick:
                argv.append("--quick")
            return parallel_main(argv)
        from repro.bench.federation import main as federation_main

        argv = [
            "--sensors",
            str(args.sensors),
            "--partitioner",
            args.partitioner,
            "--redistribution-rounds",
            str(args.redistribution_rounds),
        ]
        if args.quick:
            argv.append("--quick")
        return federation_main(argv)
    if command == "frontdoor":
        from repro.bench.frontdoor import main as frontdoor_main

        argv = ["--sensors", str(args.sensors), "--requests", str(args.requests)]
        if args.quick:
            argv.append("--quick")
        if args.check:
            argv.append("--check")
        return frontdoor_main(argv)
    if command == "geoblocks":
        from repro.bench.geoblocks import main as geoblocks_main

        argv = ["--sensors", str(args.sensors), "--queries", str(args.queries)]
        if args.quick:
            argv.append("--quick")
        if args.check:
            argv.append("--check")
        return geoblocks_main(argv)
    if command == "rebalance":
        from repro.bench.rebalance import main as rebalance_main

        argv = [
            "--sensors",
            str(args.sensors),
            "--ticks",
            str(args.ticks),
            "--shards",
            str(args.shards),
            "--seed",
            str(args.seed),
        ]
        if args.quick:
            argv.append("--quick")
        if args.check:
            argv.append("--check")
        return rebalance_main(argv)
    if command == "storage":
        if args.data_dir is not None:
            return _storage_inspect(args.data_dir)
        from repro.bench.storage import main as storage_main

        argv = ["--sensors", str(args.sensors)]
        if args.quick:
            argv.append("--quick")
        if args.check:
            argv.append("--check")
        return storage_main(argv)
    raise AssertionError(f"unhandled command {command!r}")  # pragma: no cover


def _demo(n_sensors: int, transport: bool = False) -> int:
    """A tiny scripted tour of the index (see examples/ for more)."""
    import numpy as np

    from repro import (
        AvailabilityModel,
        COLRTree,
        COLRTreeConfig,
        GeoPoint,
        Rect,
        SensorNetwork,
        SensorRegistry,
    )

    rng = np.random.default_rng(0)
    registry = SensorRegistry()
    for _ in range(n_sensors):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(120, 600)),
            availability=0.9,
        )
    model = AvailabilityModel()
    network = SensorNetwork(registry.all(), availability_model=model, seed=1)
    tree = COLRTree(
        registry.all(),
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        network=network,
        availability_model=model,
    )
    if transport:
        from repro.transport import ProbeDispatcher, TransportConfig

        tree.transport = ProbeDispatcher(network, TransportConfig())
    print(f"indexed {len(tree)} sensors (height {tree.height()})")
    region = Rect(20, 20, 70, 70)
    for label, t in (("cold", 0.0), ("warm", 5.0), ("expired", 10_000.0)):
        answer = tree.query(region, now=t, max_staleness=300.0, sample_size=30)
        print(
            f"{label:>8}: probed {answer.stats.sensors_probed:>4} sensors, "
            f"answer weight {answer.result_weight:>4}, "
            f"count estimate {answer.estimate('count') if answer.result_weight else 0:.0f}"
        )
    if transport:
        from repro.bench.report import format_counters, network_counters, transport_counters

        print()
        print(format_counters(network_counters(network.stats), title="network"))
        print()
        print(
            format_counters(
                transport_counters(tree.transport.stats), title="transport"
            )
        )
    return 0


def _demo_federated(
    n_sensors: int, n_shards: int, transport: bool = False, workers: int = 0
) -> int:
    """Scripted tour of the scatter-gather federation: directory, a few
    queries, and graceful degradation with a killed shard.  With
    ``workers`` > 0 the shards run as real worker processes over
    shared-memory kernels (the process execution backend)."""
    import numpy as np

    from repro.federation import FederatedPortal, FederationConfig
    from repro.geometry import GeoPoint, Rect
    from repro.portal import SensorQuery
    from repro.transport import TransportConfig

    rng = np.random.default_rng(0)
    portal = FederatedPortal(
        n_shards=n_shards,
        transport=TransportConfig() if transport else None,
        federation=FederationConfig(
            execution="process" if workers > 0 else "inprocess"
        ),
    )
    for _ in range(n_sensors):
        portal.register_sensor(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(120, 600)),
            sensor_type=("temperature", "humidity")[int(rng.integers(2))],
            availability=0.9,
        )
    portal.rebuild_index()
    backend = (
        f"{portal.n_shards} worker processes" if workers > 0 else "in-process shards"
    )
    print(
        f"federated {len(portal.registry)} sensors across {portal.n_shards} "
        f"shards ({backend})"
    )
    for entry in portal.directory.entries():
        print(
            f"  shard {entry.shard_id}: {entry.weight:>5} sensors, mbr "
            f"({entry.mbr.min_x:.1f}, {entry.mbr.min_y:.1f})-"
            f"({entry.mbr.max_x:.1f}, {entry.mbr.max_y:.1f})"
        )
    query = SensorQuery(
        region=Rect(20, 20, 70, 70), staleness_seconds=300.0, sample_size=60
    )
    result = portal.execute(query)
    print(
        f"sampled query: {len(result.shard_results)} shards answered, "
        f"weight {result.result_weight}, "
        f"count estimate {result.aggregate():.0f}"
    )
    victim = portal.n_shards // 2
    portal.kill_shard(victim)
    degraded = portal.execute(query)
    print(
        f"shard {victim} killed: partial={degraded.partial} "
        f"(failed shards {list(degraded.failed_shards)}), "
        f"weight {degraded.result_weight}, retries {degraded.shard_retries}"
    )
    portal.revive_shard(victim)
    recovered = portal.execute(query)
    print(f"shard {victim} revived: partial={recovered.partial}")
    f = portal.stats
    print(
        f"coordinator: {f.queries} queries, {f.subqueries_scattered} sub-queries, "
        f"{f.shard_retries} shard retries, {f.partial_answers} partial answers"
    )
    print(
        f"redistribution: {f.redistributions} triggered, "
        f"{f.topup_subqueries} top-up sub-queries, "
        f"{f.topup_sensors_gained} sensors recovered, "
        f"residual shortfall {f.sampled_shortfall}"
    )
    portal.close()
    return 0


def _demo_churn(n_sensors: int, n_shards: int) -> int:
    """Scripted tour of live rebalancing: a drifting churn stream joins
    and leaves sensors while the background rebalancer absorbs the skew
    in bounded steps, with a conservation query after every tick."""
    import numpy as np

    from repro.federation import FederatedPortal
    from repro.geometry import GeoPoint, Rect
    from repro.portal import SensorQuery
    from repro.rebalance import RebalanceConfig, Rebalancer
    from repro.workloads import ChurnWorkload

    rng = np.random.default_rng(0)
    portal = FederatedPortal(n_shards=n_shards, max_sensors_per_query=None)
    for _ in range(n_sensors):
        portal.register_sensor(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(300, 600)),
            availability=1.0,
        )
    portal.rebuild_index()
    rebalancer = Rebalancer(
        portal, RebalanceConfig(max_moves_per_step=max(8, n_sensors // 20))
    )
    churn = ChurnWorkload(join_rate=n_sensors / 40, leave_rate=n_sensors / 80)
    query = SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=600.0)
    print(
        f"churn demo: {len(portal.registry)} sensors across "
        f"{portal.n_shards} shards, hotspot joins at "
        f"{churn.join_rate:.0f}/tick, leaves at {churn.leave_rate:.0f}/tick"
    )
    for _ in range(8):
        tick = churn.tick([s.sensor_id for s in portal.registry])
        if tick.joins:
            rebalancer.mover.absorb_joins(tick.joins)
        if tick.leave_ids:
            rebalancer.mover.absorb_leaves(tick.leave_ids)
        reports = rebalancer.run(max_steps=2)
        result = portal.execute(query)
        ops = ", ".join(r.op for r in reports) if reports else "noop"
        print(
            f"  tick {tick.tick}: +{len(tick.joins)}/-{len(tick.leave_ids)} "
            f"sensors, fleet {len(portal.registry)}, "
            f"{len(portal.directory)} shards, imbalance "
            f"{rebalancer.imbalance():.2f}, steps [{ops}], "
            f"query weight {result.result_weight}/{len(portal.registry)}"
        )
        portal.clock.advance(30.0)
    rebalancer.verify_invariants()
    print("invariants hold: every sensor has exactly one owner")
    portal.close()
    return 0


def _demo_frontdoor(n_sensors: int, qps: float, n_tenants: int) -> int:
    """Scripted tour of the portal front door: a Zipf multi-tenant
    open-loop stream at the offered rate, served cache-first with
    admission control, then the serving report and cache counters."""
    from repro.bench.harness import StreamSummary
    from repro.bench.report import format_counters
    from repro.frontdoor import (
        AdmissionConfig,
        FrontDoor,
        FrontDoorConfig,
        OpenLoopRunner,
    )
    from repro.portal import SensorMapPortal
    from repro.workloads import LiveLocalWorkload, OpenLoopWorkload

    n_requests = max(50, int(10 * qps))
    portal = SensorMapPortal(max_sensors_per_query=None)
    portal.register_all(LiveLocalWorkload(n_sensors=n_sensors, seed=0).sensors())
    portal.rebuild_index()
    door = FrontDoor(
        portal,
        FrontDoorConfig(
            admission=AdmissionConfig(
                tenant_rate_qps=max(0.5, 2.0 * qps / n_tenants),
                tenant_burst=8.0,
                queue_depth=32,
            )
        ),
    )
    requests = OpenLoopWorkload(
        base=LiveLocalWorkload(n_sensors=n_sensors, n_queries=n_requests, seed=0),
        n_requests=n_requests,
        n_tenants=n_tenants,
        target_qps=qps,
    ).requests()
    print(
        f"front door over {n_sensors} sensors: {n_requests} requests from "
        f"{n_tenants} tenants offered at {qps:g} q/s"
    )
    report = OpenLoopRunner(door).run(requests)
    latency = report.latency()
    print(
        f"served {report.served}/{report.offered} "
        f"({report.served_qps:.1f} q/s sustained, "
        f"shed {report.shed_fraction:.1%}, "
        f"max queue depth {report.max_queue_depth})"
    )
    if isinstance(latency, StreamSummary) and latency.count:
        print(
            f"latency: p50 {latency.p50 * 1e3:.1f}ms  "
            f"p95 {latency.p95 * 1e3:.1f}ms  p99 {latency.p99 * 1e3:.1f}ms"
        )
    print()
    print(format_counters(door.cache.stats.as_dict(), title="result cache"))
    print()
    print(format_counters(door.admission.stats.as_dict(), title="admission"))
    return 0


def _demo_polygon(n_sensors: int) -> int:
    """Scripted tour of the geoblock subsystem: one city-boundary
    polygon served cold (exact sub-queries warm the grid through the
    reading listeners) then warm (interior cells probe-free from the
    mirror), and a sliding analytic window panning one cell per step."""
    from repro.geoblocks import GeoBlockConfig, PolygonResult, SlidingWindow
    from repro.geometry import Rect
    from repro.portal import SensorMapPortal, SensorQuery
    from repro.workloads import CITIES, LiveLocalWorkload, PolygonWorkload

    # A power-of-two cell edge is exactly representable, so the demo's
    # grid-snapped viewports cover exactly 5x5 cells at every step.
    cell_degrees = 0.25
    portal = SensorMapPortal(
        max_sensors_per_query=None,
        geoblocks=GeoBlockConfig(cell_degrees=cell_degrees),
    )
    portal.register_all(
        LiveLocalWorkload(n_sensors=n_sensors, expiry_seconds=1_800.0, seed=0).sensors()
    )
    portal.rebuild_index()
    print(f"geoblock grid over {n_sensors} sensors ({cell_degrees}° cells)")

    workload = PolygonWorkload(
        n_sensors=n_sensors,
        n_queries=8,
        family_weights=(1.0, 0.0, 0.0),
        revisit_probability=0.0,
        seed=0,
    )
    spec = max(
        workload.queries(), key=lambda s: s.region.bounding_box.area
    )
    query = SensorQuery(region=spec.region, staleness_seconds=900.0)
    for label in ("cold", "warm"):
        result = portal.execute_polygon(query)
        assert isinstance(result, PolygonResult)
        probes = sum(a.stats.sensors_probed for a in result.answers)
        print(
            f"{label:>6} {spec.family}: {result.interior_cells} interior + "
            f"{result.boundary_cells} boundary cells, "
            f"{result.grid_cells_served} grid-served, probed {probes} "
            f"({result.interior_probes} interior), "
            f"{len(result.groups)} display groups"
        )

    window = SlidingWindow(
        portal,
        staleness_seconds=900.0,
        sensor_type="restaurant",
        temporal_steps=3,
    )
    anchor = max(CITIES, key=lambda c: c.population)
    # Snap the viewport to integer cell indices so the cover is exactly
    # 5x5 cells at every step (no float-edge wobble).
    col0 = int(anchor.lon // cell_degrees)
    row0 = int(anchor.lat // cell_degrees)
    print(f"\nsliding window: 5x5-cell viewport panning east from {anchor.name}")
    for step in range(4):
        result = window.step(
            Rect(
                (col0 + step) * cell_degrees,
                row0 * cell_degrees,
                (col0 + step + 5) * cell_degrees,
                (row0 + 5) * cell_degrees,
            )
        )
        aggregate = (
            f"{result.window_aggregate:.2f}"
            if result.window_aggregate is not None
            else "n/a"
        )
        print(
            f"  step {step}: {result.cells_reused}/{result.cells_total} cells "
            f"reused, {result.cells_refreshed} refreshed, "
            f"3-step avg {aggregate}"
        )
        portal.clock.advance(30.0)
    return 0


def _demo_durable(n_sensors: int, data_dir: Path) -> int:
    """Scripted tour of the durable portal: the first run over an empty
    directory registers a fleet, probes it (journaling every batch) and
    checkpoints; re-running against the same directory warm-restarts
    from disk — same answers, zero probes on the first tick."""
    import numpy as np

    from repro.bench.report import format_counters, storage_counters
    from repro.geometry import GeoPoint, Rect
    from repro.portal import SensorMapPortal, SensorQuery
    from repro.sensors.registry import SensorRegistry
    from repro.storage import StorageConfig

    rng = np.random.default_rng(0)
    registry = SensorRegistry()
    fleet = [
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(300, 600)),
            sensor_type=("temperature", "humidity")[i % 2],
        )
        for i in range(n_sensors)
    ]
    portal = SensorMapPortal(
        max_sensors_per_query=None, storage=StorageConfig(data_dir=data_dir)
    )
    portal.register_all(fleet)
    portal.rebuild_index()
    recovery = portal.last_recovery
    if recovery is not None and recovery.has_state:
        print(
            f"warm restart: {len(recovery.sensors)} sensors and "
            f"{recovery.reading_count} readings recovered from {data_dir} "
            f"({recovery.wal_records} WAL records, "
            f"{recovery.checkpoint_pages} checkpoint pages; modeled "
            f"recovery {portal.recovery_seconds * 1e3:.2f} ms)"
        )
    else:
        print(f"cold start: {data_dir} was empty, journaling into it")
    query = SensorQuery(
        region=Rect(20, 20, 70, 70), staleness_seconds=300.0, sample_size=60
    )
    for tick in range(2):
        if tick:
            portal.clock.advance(30.0)
        result = portal.execute(query)
        probes = sum(a.stats.sensors_probed for a in result.answers)
        print(
            f"tick {tick}: probed {probes:>4} sensors, "
            f"weight {result.result_weight:>4}, "
            f"count estimate {result.aggregate():.0f}"
        )
    portal.checkpoint()
    print()
    print(format_counters(storage_counters(portal.storage.stats), title="storage"))
    portal.close()
    print(f"\ncheckpointed and closed; re-run to warm-restart from {data_dir}")
    return 0


def _storage_inspect(data_dir: Path) -> int:
    """Print a read-only description of a durable data directory."""
    from repro.bench.report import format_counters
    from repro.storage.engine import describe_data_dir

    info = describe_data_dir(data_dir)
    if not info["exists"]:
        print(f"{info['data_dir']}: no MANIFEST.json — not a data directory")
        return 1
    print(f"{info['data_dir']}: epoch {info['epoch']}")
    if info["checkpoint"] is not None:
        print()
        print(format_counters(info["checkpoint"], title="checkpoint"))
    else:
        print("no checkpoint (WAL-only state)")
    if info["wal"] is not None:
        print()
        print(format_counters(info["wal"], title="wal"))
    else:
        print("no WAL segment for the current epoch")
    return 0


def _shard(n_sensors: int, n_shards: int, partitioner: str, seed: int) -> int:
    """Partition a synthetic fleet and print the shard directory plus a
    scatter plan for a sample viewport."""
    import numpy as np

    from repro.federation import FederatedPortal, ShardDirectory, make_partitioner
    from repro.geometry import GeoPoint, Rect
    from repro.portal import SensorQuery

    rng = np.random.default_rng(seed)
    portal = FederatedPortal(
        partitioner=make_partitioner(partitioner, n_shards, seed=seed)
    )
    for _ in range(n_sensors):
        portal.register_sensor(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(120, 600)),
            sensor_type=("temperature", "humidity", "wind")[int(rng.integers(3))],
        )
    portal.rebuild_index()
    print(
        f"{partitioner} partitioner: {len(portal.registry)} sensors -> "
        f"{portal.n_shards} shards"
    )
    print(f"{'shard':>5} {'sensors':>8} {'mbr':>34}  types")
    for entry in portal.directory.entries():
        mbr = (
            f"({entry.mbr.min_x:6.1f}, {entry.mbr.min_y:6.1f})-"
            f"({entry.mbr.max_x:6.1f}, {entry.mbr.max_y:6.1f})"
        )
        print(
            f"{entry.shard_id:>5} {entry.weight:>8} {mbr:>34}  "
            f"{', '.join(sorted(entry.sensor_types))}"
        )
    query = SensorQuery(
        region=Rect(25, 25, 75, 75), staleness_seconds=300.0, sample_size=100
    )
    routes = portal.directory.route(query.region)
    shares = ShardDirectory.split_target(query.sample_size, routes)
    print(f"\nscatter plan for viewport (25,25)-(75,75), SAMPLESIZE {query.sample_size}:")
    for route in routes:
        print(
            f"  shard {route.shard_id}: overlap {route.overlap:.3f}, "
            f"share {shares[route.shard_id]}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
