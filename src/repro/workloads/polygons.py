"""Polygon viewport workload for the geoblock subsystem.

The rectangle workloads model map viewports; this one models the
*shape-constrained* query class the geoblock planner exists for —
regions a user draws or a GIS layer supplies.  Three families:

``city-boundary``
    An irregular star-shaped polygon around a hotspot city (a
    synthetic municipal boundary): 8–16 vertices at jittered radii
    around the center, angle-sorted so the ring is simple.

``corridor``
    A thin oriented quadrilateral buffering a highway segment between
    two nearby cities (``repro.workloads.highways`` corridors) — long,
    narrow, and axis-*misaligned*, the worst case for MBR-based
    answering and the best case for clipped boundary cells.

``convex-random``
    The convex hull of a Gaussian point cloud around a hotspot city —
    moderate-eccentricity convex regions with no axis alignment.

Hotspot cities are drawn with the same population-Zipf skew as the
Live-Local rectangle stream, and sensor placement delegates to
:class:`~repro.workloads.livelocal.LiveLocalWorkload` so polygon and
rectangle benches run over identical sensor sets.  All randomness is
seeded; the stream is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import GeoPoint, Polygon
from repro.geometry.point import miles_to_degrees_lat, miles_to_degrees_lon
from repro.sensors.sensor import Sensor
from repro.workloads.cities import CITIES
from repro.workloads.highways import default_corridors
from repro.workloads.livelocal import LiveLocalWorkload

FAMILIES = ("city-boundary", "corridor", "convex-random")


@dataclass(frozen=True, slots=True)
class PolygonQuerySpec:
    """One generated polygon query."""

    region: Polygon
    family: str
    at_time: float
    staleness_seconds: float


def _convex_hull(points: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Andrew's monotone chain; returns hull vertices in CCW order
    (collinear points dropped)."""
    pts = sorted(set(points))
    if len(pts) < 3:
        return pts

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[tuple[float, float]] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[tuple[float, float]] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


class PolygonWorkload:
    """Polygon query stream over the Live-Local sensor placement.

    ``family_weights`` orders over :data:`FAMILIES`; scale, skew,
    inter-arrival and staleness knobs mirror the rectangle workload.
    ``revisit_probability`` re-issues a recent polygon verbatim
    (temporal locality — what makes the L1 viewport cache and the
    geoblock grid's warmed cells pay off).
    """

    def __init__(
        self,
        n_sensors: int = 40_000,
        n_queries: int = 500,
        expiry_seconds=300.0,
        family_weights: tuple[float, float, float] = (0.4, 0.3, 0.3),
        zipf_s: float = 1.1,
        revisit_probability: float = 0.35,
        revisit_window: int = 20,
        mean_interarrival_seconds: float = 0.5,
        staleness_seconds: float = 300.0,
        seed: int = 0,
    ) -> None:
        if len(family_weights) != len(FAMILIES):
            raise ValueError(f"family_weights must order over {FAMILIES}")
        if min(family_weights) < 0 or sum(family_weights) <= 0:
            raise ValueError("family_weights must be non-negative, not all zero")
        if not 0.0 <= revisit_probability <= 1.0:
            raise ValueError("revisit_probability must be in [0, 1]")
        self.base = LiveLocalWorkload(
            n_sensors=n_sensors,
            n_queries=0,
            expiry_seconds=expiry_seconds,
            zipf_s=zipf_s,
            staleness_seconds=staleness_seconds,
            seed=seed,
        )
        self.n_queries = n_queries
        self.family_weights = tuple(
            w / sum(family_weights) for w in family_weights
        )
        self.zipf_s = zipf_s
        self.revisit_probability = revisit_probability
        self.revisit_window = max(1, revisit_window)
        self.mean_interarrival = mean_interarrival_seconds
        self.staleness_seconds = staleness_seconds
        self.seed = seed
        self._corridors = default_corridors()

    # ------------------------------------------------------------------
    # Sensors (shared with the rectangle workloads)
    # ------------------------------------------------------------------
    def sensors(self) -> list[Sensor]:
        return self.base.sensors()

    # ------------------------------------------------------------------
    # Polygon families
    # ------------------------------------------------------------------
    def _hotspot_city(self, rng: np.random.Generator):
        order = np.argsort(-np.array([c.population for c in CITIES]))
        ranks = np.arange(1, len(CITIES) + 1, dtype=np.float64)
        zipf = ranks ** (-self.zipf_s)
        zipf /= zipf.sum()
        return CITIES[int(order[int(rng.choice(len(CITIES), p=zipf))])]

    def _city_boundary(self, rng: np.random.Generator) -> Polygon:
        city = self._hotspot_city(rng)
        radius_miles = float(np.exp(rng.uniform(np.log(5.0), np.log(40.0))))
        n_vertices = int(rng.integers(8, 17))
        angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=n_vertices))
        r_lat = miles_to_degrees_lat(radius_miles)
        r_lon = miles_to_degrees_lon(radius_miles, at_lat=city.lat)
        vertices = []
        for angle in angles:
            jitter = float(rng.uniform(0.6, 1.0))
            vertices.append(
                GeoPoint(
                    city.lon + jitter * r_lon * float(np.cos(angle)),
                    city.lat + jitter * r_lat * float(np.sin(angle)),
                )
            )
        return Polygon(vertices)

    def _corridor(self, rng: np.random.Generator) -> Polygon:
        corridor = self._corridors[int(rng.integers(len(self._corridors)))]
        width_miles = float(rng.uniform(3.0, 12.0))
        mid_lat = (corridor.start.lat + corridor.end.lat) / 2.0
        x0, y0 = corridor.start.lon, corridor.start.lat
        x1, y1 = corridor.end.lon, corridor.end.lat
        dx, dy = x1 - x0, y1 - y0
        norm = float(np.hypot(dx, dy))
        # Perpendicular half-width offset in degrees (planar
        # approximation at the corridor's mid-latitude).
        half_lon = miles_to_degrees_lon(width_miles / 2.0, at_lat=mid_lat)
        half_lat = miles_to_degrees_lat(width_miles / 2.0)
        px = -dy / norm * half_lon
        py = dx / norm * half_lat
        return Polygon(
            [
                GeoPoint(x0 + px, y0 + py),
                GeoPoint(x1 + px, y1 + py),
                GeoPoint(x1 - px, y1 - py),
                GeoPoint(x0 - px, y0 - py),
            ]
        )

    def _convex_random(self, rng: np.random.Generator) -> Polygon:
        city = self._hotspot_city(rng)
        radius_miles = float(np.exp(rng.uniform(np.log(5.0), np.log(40.0))))
        r_lat = miles_to_degrees_lat(radius_miles)
        r_lon = miles_to_degrees_lon(radius_miles, at_lat=city.lat)
        while True:
            cloud = [
                (
                    city.lon + float(rng.normal(0.0, r_lon)),
                    city.lat + float(rng.normal(0.0, r_lat)),
                )
                for _ in range(int(rng.integers(8, 15)))
            ]
            hull = _convex_hull(cloud)
            if len(hull) >= 3:
                return Polygon([GeoPoint(x, y) for x, y in hull])

    # ------------------------------------------------------------------
    # Query stream
    # ------------------------------------------------------------------
    def queries(self) -> list[PolygonQuerySpec]:
        """The polygon query stream, ordered by arrival time."""
        rng = np.random.default_rng(self.seed + 3)
        builders = {
            "city-boundary": self._city_boundary,
            "corridor": self._corridor,
            "convex-random": self._convex_random,
        }
        recent: list[tuple[Polygon, str]] = []
        out: list[PolygonQuerySpec] = []
        now = 0.0
        for _ in range(self.n_queries):
            now += float(rng.exponential(self.mean_interarrival))
            if recent and rng.random() < self.revisit_probability:
                region, family = recent[int(rng.integers(len(recent)))]
            else:
                family = FAMILIES[
                    int(rng.choice(len(FAMILIES), p=self.family_weights))
                ]
                region = builders[family](rng)
                recent.append((region, family))
                if len(recent) > self.revisit_window:
                    recent.pop(0)
            out.append(
                PolygonQuerySpec(
                    region=region,
                    family=family,
                    at_time=now,
                    staleness_seconds=self.staleness_seconds,
                )
            )
        return out
