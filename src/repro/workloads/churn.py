"""Fleet-churn workload: joins, leaves and hotspot drift.

A deployed sensor web is never static — publishers register new
sensors, withdraw old ones, and *where* they do so drifts over time
(a storm front, an event, a new deployment campaign).  This generator
produces the membership-change stream the rebalancer absorbs:

* **Joins** arrive at ``join_rate`` per tick, placed Gaussian around a
  moving hotspot center (plus a uniform background fraction), so the
  spatial load concentrates and the population skews toward whichever
  shard the hotspot sits over — exactly the pressure that triggers
  splits and moves.
* **Leaves** remove ``leave_rate`` live sensors per tick, uniformly,
  modelling publisher withdrawal.
* **Hotspot drift**: the hotspot center performs a seeded random walk
  over the extent (reflecting at the borders), so over enough ticks the
  skew *migrates* across shard boundaries — the scenario a static
  partition can never stay balanced under.

All randomness is seeded; a tick stream is deterministic per seed, so
benches and the Monte-Carlo suites replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry import GeoPoint
from repro.rebalance.migration import JoinSpec

__all__ = ["ChurnTick", "ChurnWorkload"]


@dataclass(frozen=True)
class ChurnTick:
    """One tick of fleet churn."""

    tick: int
    joins: tuple[JoinSpec, ...]
    leave_ids: tuple[int, ...]
    hotspot: GeoPoint


class ChurnWorkload:
    """Seeded join/leave/drift stream over a square extent."""

    def __init__(
        self,
        extent: float = 100.0,
        join_rate: float = 8.0,
        leave_rate: float = 4.0,
        hotspot_sigma: float = 6.0,
        hotspot_fraction: float = 0.8,
        drift_step: float = 5.0,
        expiry_range: tuple[float, float] = (300.0, 900.0),
        availability: float = 1.0,
        sensor_type: str = "generic",
        seed: int = 0,
    ) -> None:
        if extent <= 0:
            raise ValueError("extent must be positive")
        if join_rate < 0 or leave_rate < 0:
            raise ValueError("rates must be non-negative")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        self.extent = float(extent)
        self.join_rate = float(join_rate)
        self.leave_rate = float(leave_rate)
        self.hotspot_sigma = float(hotspot_sigma)
        self.hotspot_fraction = float(hotspot_fraction)
        self.drift_step = float(drift_step)
        self.expiry_range = expiry_range
        self.availability = float(availability)
        self.sensor_type = sensor_type
        self._rng = np.random.default_rng(seed)
        self._tick = 0
        # Hotspot starts at a seeded random position, not the center,
        # so different seeds stress different shards first.
        self.hotspot = GeoPoint(
            float(self._rng.uniform(0.0, self.extent)),
            float(self._rng.uniform(0.0, self.extent)),
        )

    def _reflect(self, value: float) -> float:
        """Reflect a random-walk coordinate back into [0, extent]."""
        period = 2.0 * self.extent
        value %= period
        return period - value if value > self.extent else value

    def _draw_location(self) -> GeoPoint:
        rng = self._rng
        if rng.uniform() < self.hotspot_fraction:
            x = self.hotspot.x + rng.normal(0.0, self.hotspot_sigma)
            y = self.hotspot.y + rng.normal(0.0, self.hotspot_sigma)
            return GeoPoint(
                float(min(max(x, 0.0), self.extent)),
                float(min(max(y, 0.0), self.extent)),
            )
        return GeoPoint(
            float(rng.uniform(0.0, self.extent)),
            float(rng.uniform(0.0, self.extent)),
        )

    def tick(self, live_ids: Sequence[int]) -> ChurnTick:
        """Generate one tick: joins near the (drifting) hotspot and
        uniform leaves drawn from ``live_ids``.  Leaves never drain the
        fleet below one sensor."""
        rng = self._rng
        self._tick += 1
        self.hotspot = GeoPoint(
            self._reflect(self.hotspot.x + rng.normal(0.0, self.drift_step)),
            self._reflect(self.hotspot.y + rng.normal(0.0, self.drift_step)),
        )
        n_joins = int(rng.poisson(self.join_rate))
        joins = tuple(
            JoinSpec(
                location=self._draw_location(),
                expiry_seconds=float(rng.uniform(*self.expiry_range)),
                sensor_type=self.sensor_type,
                availability=self.availability,
            )
            for _ in range(n_joins)
        )
        n_leaves = min(
            int(rng.poisson(self.leave_rate)), max(len(live_ids) - 1, 0)
        )
        leave_ids: tuple[int, ...] = ()
        if n_leaves > 0:
            chosen = rng.choice(len(live_ids), size=n_leaves, replace=False)
            leave_ids = tuple(sorted(int(live_ids[i]) for i in chosen))
        return ChurnTick(
            tick=self._tick, joins=joins, leave_ids=leave_ids, hotspot=self.hotspot
        )
