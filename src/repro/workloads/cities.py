"""Embedded US city coordinates and populations.

The Live Local restaurant directory is dense around metropolitan areas;
we reproduce that skew by scattering synthetic sensors around the
centers below, weighted by population.  Coordinates are approximate
city centers (sufficient for a synthetic workload); populations are
mid-2000s metro-scale figures matching the paper's era.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class City:
    name: str
    lat: float
    lon: float
    population: int


CITIES: tuple[City, ...] = (
    City("New York", 40.7128, -74.0060, 8_200_000),
    City("Los Angeles", 34.0522, -118.2437, 3_800_000),
    City("Chicago", 41.8781, -87.6298, 2_850_000),
    City("Houston", 29.7604, -95.3698, 2_100_000),
    City("Phoenix", 33.4484, -112.0740, 1_500_000),
    City("Philadelphia", 39.9526, -75.1652, 1_500_000),
    City("San Antonio", 29.4241, -98.4936, 1_300_000),
    City("San Diego", 32.7157, -117.1611, 1_280_000),
    City("Dallas", 32.7767, -96.7970, 1_230_000),
    City("San Jose", 37.3382, -121.8863, 940_000),
    City("Detroit", 42.3314, -83.0458, 900_000),
    City("Indianapolis", 39.7684, -86.1581, 790_000),
    City("Jacksonville", 30.3322, -81.6557, 780_000),
    City("San Francisco", 37.7749, -122.4194, 760_000),
    City("Columbus", 39.9612, -82.9988, 730_000),
    City("Austin", 30.2672, -97.7431, 690_000),
    City("Memphis", 35.1495, -90.0490, 670_000),
    City("Fort Worth", 32.7555, -97.3308, 620_000),
    City("Baltimore", 39.2904, -76.6122, 640_000),
    City("Charlotte", 35.2271, -80.8431, 610_000),
    City("El Paso", 31.7619, -106.4850, 600_000),
    City("Boston", 42.3601, -71.0589, 590_000),
    City("Seattle", 47.6062, -122.3321, 570_000),
    City("Washington", 38.9072, -77.0369, 550_000),
    City("Milwaukee", 43.0389, -87.9065, 590_000),
    City("Denver", 39.7392, -104.9903, 560_000),
    City("Louisville", 38.2527, -85.7585, 550_000),
    City("Las Vegas", 36.1699, -115.1398, 540_000),
    City("Nashville", 36.1627, -86.7816, 550_000),
    City("Oklahoma City", 35.4676, -97.5164, 530_000),
    City("Portland", 45.5152, -122.6784, 530_000),
    City("Tucson", 32.2226, -110.9747, 510_000),
    City("Albuquerque", 35.0844, -106.6504, 480_000),
    City("Atlanta", 33.7490, -84.3880, 470_000),
    City("Fresno", 36.7378, -119.7871, 450_000),
    City("Sacramento", 38.5816, -121.4944, 450_000),
    City("Mesa", 33.4152, -111.8315, 440_000),
    City("Kansas City", 39.0997, -94.5786, 440_000),
    City("Cleveland", 41.4993, -81.6944, 460_000),
    City("Virginia Beach", 36.8529, -75.9780, 430_000),
    City("Omaha", 41.2565, -95.9345, 410_000),
    City("Miami", 25.7617, -80.1918, 380_000),
    City("Oakland", 37.8044, -122.2712, 400_000),
    City("Minneapolis", 44.9778, -93.2650, 380_000),
    City("Tulsa", 36.1540, -95.9928, 380_000),
    City("Honolulu", 21.3069, -157.8583, 370_000),
    City("Colorado Springs", 38.8339, -104.8214, 370_000),
    City("Arlington", 32.7357, -97.1081, 360_000),
    City("Wichita", 37.6872, -97.3301, 350_000),
    City("St. Louis", 38.6270, -90.1994, 350_000),
    City("Tampa", 27.9506, -82.4572, 320_000),
    City("Santa Ana", 33.7455, -117.8677, 340_000),
    City("Anaheim", 33.8366, -117.9143, 330_000),
    City("Cincinnati", 39.1031, -84.5120, 330_000),
    City("Pittsburgh", 40.4406, -79.9959, 320_000),
    City("Bakersfield", 35.3733, -119.0187, 290_000),
    City("Aurora", 39.7294, -104.8319, 290_000),
    City("Toledo", 41.6528, -83.5379, 300_000),
    City("Riverside", 33.9533, -117.3962, 280_000),
    City("Stockton", 37.9577, -121.2908, 280_000),
    City("Corpus Christi", 27.8006, -97.3964, 280_000),
    City("Newark", 40.7357, -74.1724, 280_000),
    City("Raleigh", 35.7796, -78.6382, 330_000),
    City("Buffalo", 42.8864, -78.8784, 280_000),
    City("Anchorage", 61.2181, -149.9003, 270_000),
    City("Spokane", 47.6588, -117.4260, 200_000),
    City("Tacoma", 47.2529, -122.4443, 195_000),
    City("Boise", 43.6150, -116.2023, 190_000),
    City("Salt Lake City", 40.7608, -111.8910, 180_000),
    City("New Orleans", 29.9511, -90.0715, 450_000),
)


def total_population() -> int:
    return sum(c.population for c in CITIES)
