"""Synthetic USGS water-discharge workload (Figure 7).

The paper queries the average real-time water discharge of ~200 USGS
gauges in Washington state and measures the relative error of sampled
answers.  What makes small samples accurate is the spatial correlation
of discharge — gauges on the same river system report similar values.

This module stands in with 200 synthetic gauges inside the WA bounding
box reporting from a :class:`~repro.sensors.field.SpatialField` (smooth
basin bumps + small observation noise), preserving exactly that
correlation structure.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import GeoPoint, Rect
from repro.sensors.field import SpatialField
from repro.sensors.sensor import Sensor

#: Approximate Washington-state bounding box (lon, lat).
WA_BBOX = Rect(-124.7, 45.5, -117.0, 49.0)


class UsgsWaWorkload:
    """200 correlated water-discharge gauges in Washington state."""

    def __init__(
        self,
        n_sensors: int = 200,
        expiry_seconds: float = 900.0,
        availability: float = 1.0,
        noise_sigma: float = 3.0,
        seed: int = 0,
    ) -> None:
        if n_sensors < 1:
            raise ValueError("need at least one gauge")
        self.n_sensors = n_sensors
        self.expiry_seconds = expiry_seconds
        self.availability = availability
        self.seed = seed
        # Narrow, tall bumps: river discharge varies by large factors
        # between basins, giving the cross-gauge variance that makes
        # small samples err ~10-30% (the Figure 7 regime).
        self.field = SpatialField(
            WA_BBOX,
            n_bumps=14,
            amplitude=900.0,
            base=60.0,
            noise_sigma=noise_sigma,
            width_range=(0.03, 0.10),
            seed=seed,
        )
        rng = np.random.default_rng(seed + 1)
        # Gauges cluster loosely along "river systems": a few anchor
        # lines with scatter, plus some statewide background.
        anchors = rng.uniform(
            [WA_BBOX.min_x, WA_BBOX.min_y], [WA_BBOX.max_x, WA_BBOX.max_y], (6, 2)
        )
        locations: list[GeoPoint] = []
        for i in range(n_sensors):
            if rng.random() < 0.7:
                a = anchors[int(rng.integers(len(anchors)))]
                lon = float(np.clip(a[0] + rng.normal(0, 0.6), WA_BBOX.min_x, WA_BBOX.max_x))
                lat = float(np.clip(a[1] + rng.normal(0, 0.4), WA_BBOX.min_y, WA_BBOX.max_y))
            else:
                lon = float(rng.uniform(WA_BBOX.min_x, WA_BBOX.max_x))
                lat = float(rng.uniform(WA_BBOX.min_y, WA_BBOX.max_y))
            locations.append(GeoPoint(lon, lat))
        self._locations = locations

    def sensors(self) -> list[Sensor]:
        return [
            Sensor(
                sensor_id=i,
                location=loc,
                expiry_seconds=self.expiry_seconds,
                sensor_type="water",
                availability=self.availability,
            )
            for i, loc in enumerate(self._locations)
        ]

    def value_fn(self):
        """``(sensor, now) -> discharge`` for :class:`SensorNetwork`."""
        field = self.field

        def fn(sensor: Sensor, now: float) -> float:
            return field.sample(sensor.location, now)

        return fn

    def true_regional_mean(self, at_time: float = 0.0) -> float:
        """The noise-free average discharge over all gauges — the exact
        answer the sampled queries approximate."""
        return self.field.regional_mean(self._locations, at_time)
