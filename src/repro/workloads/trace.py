"""Workload traces: freeze a generated workload to disk.

The paper's evaluation runs one fixed trace (the Windows Live Local
logs) against every configuration.  Our workloads are generated, so a
*trace file* pins a specific realization — sensors plus the timed query
stream — letting experiments be re-run bit-identically across machines
and letting users drop in their own traces (any JSON of the same shape)
in place of the generators.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.geometry import GeoPoint, Rect
from repro.sensors.sensor import Sensor
from repro.workloads.livelocal import QuerySpec

TRACE_VERSION = 1


class TraceError(ValueError):
    """Raised for malformed trace files."""


def workload_to_dict(sensors: list[Sensor], queries: list[QuerySpec]) -> dict[str, Any]:
    """Serialize one workload realization."""
    return {
        "trace_version": TRACE_VERSION,
        "sensors": [
            {
                "sensor_id": s.sensor_id,
                "x": s.location.x,
                "y": s.location.y,
                "expiry_seconds": s.expiry_seconds,
                "sensor_type": s.sensor_type,
                "availability": s.availability,
            }
            for s in sensors
        ],
        "queries": [
            {
                "min_x": q.region.min_x,
                "min_y": q.region.min_y,
                "max_x": q.region.max_x,
                "max_y": q.region.max_y,
                "at_time": q.at_time,
                "staleness_seconds": q.staleness_seconds,
                "sample_size": q.sample_size,
            }
            for q in queries
        ],
    }


def workload_from_dict(data: dict[str, Any]) -> tuple[list[Sensor], list[QuerySpec]]:
    """Deserialize; validates the version and every record."""
    if data.get("trace_version") != TRACE_VERSION:
        raise TraceError(f"unsupported trace version {data.get('trace_version')!r}")
    try:
        sensors = [
            Sensor(
                sensor_id=int(s["sensor_id"]),
                location=GeoPoint(float(s["x"]), float(s["y"])),
                expiry_seconds=float(s["expiry_seconds"]),
                sensor_type=str(s.get("sensor_type", "generic")),
                availability=float(s.get("availability", 1.0)),
            )
            for s in data["sensors"]
        ]
        queries = [
            QuerySpec(
                region=Rect(
                    float(q["min_x"]),
                    float(q["min_y"]),
                    float(q["max_x"]),
                    float(q["max_y"]),
                ),
                at_time=float(q["at_time"]),
                staleness_seconds=float(q["staleness_seconds"]),
                sample_size=int(q["sample_size"]),
            )
            for q in data["queries"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed trace: {exc}") from exc
    return sensors, queries


def save_workload(
    sensors: list[Sensor], queries: list[QuerySpec], path: str | Path
) -> None:
    Path(path).write_text(json.dumps(workload_to_dict(sensors, queries)))


def load_workload(path: str | Path) -> tuple[list[Sensor], list[QuerySpec]]:
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"trace is not valid JSON: {exc}") from exc
    return workload_from_dict(data)
