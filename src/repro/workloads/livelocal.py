"""The Windows-Live-Local-like workload generator.

The paper evaluates on two proprietary Live Local datasets: ~370,000
restaurant locations (the sensor set) and 106,000 rectangular viewport
queries (the query set).  Two properties of that workload carry the
evaluation:

* **skewed sensor density** — restaurants cluster around metros, which
  is what makes weighted sample-size partitioning and near-uniform
  k-means clusters matter; and
* **spatio-temporal query locality** — users pan/zoom around popular
  areas and re-visit regions, which is what gives caching its hit rate.

The generator reproduces both: sensors are scattered around real US
city centers with population weighting and a Gaussian urban radius;
queries pick a hotspot city Zipf-style, choose a zoom level (viewport
edge from ~2 to ~200 miles), jitter the center, and with a configurable
probability revisit one of the last few viewports instead (locality).
Query timestamps advance with exponential inter-arrivals.

Every knob (counts, skew, locality, staleness window) is a constructor
parameter so the benches can run scaled-down by default and full-scale
on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import GeoPoint, Rect
from repro.geometry.point import miles_to_degrees_lat, miles_to_degrees_lon
from repro.portal.query import SensorQuery
from repro.sensors.sensor import Sensor
from repro.workloads.cities import CITIES


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One generated portal query."""

    region: Rect
    at_time: float
    staleness_seconds: float
    sample_size: int


@dataclass(frozen=True, slots=True)
class TenantRequest:
    """One arrival of the multi-tenant open-loop stream (arrival time
    relative to the run start)."""

    tenant: int
    arrival_seconds: float
    query: SensorQuery


class LiveLocalWorkload:
    """Sensor placement + viewport query stream.

    Parameters
    ----------
    n_sensors / n_queries:
        Scale knobs (paper scale: 370 000 / 106 000).
    expiry_seconds:
        Either a scalar (all sensors alike) or a callable
        ``rng -> float`` drawing per-sensor expiry durations.
    availability:
        Scalar ground-truth availability, or ``rng -> float``.
    zipf_s:
        Skew of hotspot-city selection for queries (higher = more
        concentrated on the largest metros).
    revisit_probability:
        Probability a query re-uses one of the last ``revisit_window``
        viewports (temporal locality).
    mean_interarrival_seconds:
        Exponential inter-arrival mean of the query stream.
    staleness_seconds:
        Freshness window attached to every query.
    sample_size:
        SAMPLESIZE attached to every query.
    urban_radius_miles:
        Gaussian scatter radius around city centers.
    """

    def __init__(
        self,
        n_sensors: int = 40_000,
        n_queries: int = 2_000,
        expiry_seconds=300.0,
        availability=1.0,
        zipf_s: float = 1.1,
        revisit_probability: float = 0.35,
        revisit_window: int = 20,
        mean_interarrival_seconds: float = 0.5,
        staleness_seconds: float = 300.0,
        sample_size: int = 100,
        urban_radius_miles: float = 12.0,
        seed: int = 0,
    ) -> None:
        if n_sensors < 1 or n_queries < 0:
            raise ValueError("need at least one sensor and a non-negative query count")
        if not 0.0 <= revisit_probability <= 1.0:
            raise ValueError("revisit_probability must be in [0, 1]")
        self.n_sensors = n_sensors
        self.n_queries = n_queries
        self._expiry = expiry_seconds
        self._availability = availability
        self.zipf_s = zipf_s
        self.revisit_probability = revisit_probability
        self.revisit_window = max(1, revisit_window)
        self.mean_interarrival = mean_interarrival_seconds
        self.staleness_seconds = staleness_seconds
        self.sample_size = sample_size
        self.urban_radius_miles = urban_radius_miles
        self.seed = seed
        self._city_weights = self._population_weights()

    def _population_weights(self) -> np.ndarray:
        pops = np.array([c.population for c in CITIES], dtype=np.float64)
        return pops / pops.sum()

    # ------------------------------------------------------------------
    # Sensors
    # ------------------------------------------------------------------
    def sensors(self) -> list[Sensor]:
        """The synthetic restaurant directory."""
        rng = np.random.default_rng(self.seed)
        city_idx = rng.choice(len(CITIES), size=self.n_sensors, p=self._city_weights)
        out: list[Sensor] = []
        for sensor_id, ci in enumerate(city_idx):
            city = CITIES[int(ci)]
            dlat = miles_to_degrees_lat(self.urban_radius_miles)
            dlon = miles_to_degrees_lon(self.urban_radius_miles, at_lat=city.lat)
            lat = city.lat + float(rng.normal(0.0, dlat))
            lon = city.lon + float(rng.normal(0.0, dlon))
            expiry = (
                float(self._expiry(rng))
                if callable(self._expiry)
                else float(self._expiry)
            )
            avail = (
                float(self._availability(rng))
                if callable(self._availability)
                else float(self._availability)
            )
            out.append(
                Sensor(
                    sensor_id=sensor_id,
                    location=GeoPoint(lon, lat),
                    expiry_seconds=max(1.0, expiry),
                    sensor_type="restaurant",
                    availability=min(1.0, max(0.0, avail)),
                )
            )
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def queries(self) -> list[QuerySpec]:
        """The viewport query stream, ordered by arrival time."""
        rng = np.random.default_rng(self.seed + 1)
        # Zipf-style hotspot ranking over cities ordered by population.
        order = np.argsort(-np.array([c.population for c in CITIES]))
        ranks = np.arange(1, len(CITIES) + 1, dtype=np.float64)
        zipf = ranks ** (-self.zipf_s)
        zipf /= zipf.sum()
        recent: list[Rect] = []
        out: list[QuerySpec] = []
        now = 0.0
        for _ in range(self.n_queries):
            now += float(rng.exponential(self.mean_interarrival))
            if recent and rng.random() < self.revisit_probability:
                region = recent[int(rng.integers(len(recent)))]
            else:
                city = CITIES[int(order[int(rng.choice(len(CITIES), p=zipf))])]
                # Zoom level: log-uniform viewport edge, 2..200 miles.
                edge_miles = float(np.exp(rng.uniform(np.log(2.0), np.log(200.0))))
                half_lat = miles_to_degrees_lat(edge_miles) / 2.0
                half_lon = miles_to_degrees_lon(edge_miles, at_lat=city.lat) / 2.0
                jitter_lat = float(rng.normal(0.0, half_lat / 2.0))
                jitter_lon = float(rng.normal(0.0, half_lon / 2.0))
                center = GeoPoint(city.lon + jitter_lon, city.lat + jitter_lat)
                region = Rect.from_center(center, half_lon, half_lat)
                recent.append(region)
                if len(recent) > self.revisit_window:
                    recent.pop(0)
            out.append(
                QuerySpec(
                    region=region,
                    at_time=now,
                    staleness_seconds=self.staleness_seconds,
                    sample_size=self.sample_size,
                )
            )
        return out


class OpenLoopWorkload:
    """Multi-tenant open-loop request stream for the portal front door.

    Reuses the Live-Local hotspot/zoom/revisit viewport machinery and
    adds the two things an open-loop serving bench needs:

    * **tenants** — each arrival belongs to a tenant drawn Zipf-style
      (``tenant_zipf_s``) over ``n_tenants``, so a handful of hot
      tenants dominate the stream exactly the way per-tenant admission
      expects to be stressed;
    * **an offered rate** — Poisson arrivals at ``target_qps``,
      independent of service capacity (the open-loop property).

    ``exact=True`` (the default) drops SAMPLESIZE so the stream is
    tile-composable by the front door's L2; ``exact=False`` keeps the
    base workload's sampled queries (L1-only traffic).
    """

    def __init__(
        self,
        base: LiveLocalWorkload | None = None,
        n_requests: int = 2_000,
        n_tenants: int = 50,
        tenant_zipf_s: float = 1.2,
        target_qps: float = 50.0,
        exact: bool = True,
        sensor_type: str | None = "restaurant",
        seed: int = 0,
    ) -> None:
        if n_requests < 0:
            raise ValueError("n_requests must be non-negative")
        if n_tenants < 1:
            raise ValueError("n_tenants must be at least 1")
        if target_qps <= 0:
            raise ValueError("target_qps must be positive")
        self.base = (
            base
            if base is not None
            else LiveLocalWorkload(
                n_queries=n_requests,
                mean_interarrival_seconds=1.0 / target_qps,
                seed=seed,
            )
        )
        self.n_requests = n_requests
        self.n_tenants = n_tenants
        self.tenant_zipf_s = tenant_zipf_s
        self.target_qps = target_qps
        self.exact = exact
        self.sensor_type = sensor_type
        self.seed = seed

    def requests(self) -> list[TenantRequest]:
        """The arrival stream, ordered by arrival time."""
        rng = np.random.default_rng(self.seed + 2)
        ranks = np.arange(1, self.n_tenants + 1, dtype=np.float64)
        weights = ranks ** (-self.tenant_zipf_s)
        weights /= weights.sum()
        specs = self.base.queries()[: self.n_requests]
        out: list[TenantRequest] = []
        now = 0.0
        for spec in specs:
            now += float(rng.exponential(1.0 / self.target_qps))
            tenant = int(rng.choice(self.n_tenants, p=weights))
            query = SensorQuery(
                region=spec.region,
                staleness_seconds=spec.staleness_seconds,
                sample_size=None if self.exact else spec.sample_size,
                sensor_type=self.sensor_type,
            )
            out.append(
                TenantRequest(tenant=tenant, arrival_seconds=now, query=query)
            )
        return out
